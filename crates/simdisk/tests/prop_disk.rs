//! Property tests for the disk subsystem: conservation of charged disk
//! time and container memory-limit safety of the buffer cache, under
//! random request/insert sequences and both queue disciplines.

use proptest::prelude::*;
use rescon::{Attributes, ContainerId, ContainerTable};
use simcore::Nanos;
use simdisk::{BufferCache, DiskParams, DiskRequest, FifoIoSched, IoSched, ShareIoSched, SimDisk};

/// An abstract disk-side operation.
#[derive(Clone, Debug)]
enum Op {
    /// Submit a read of `bytes` of file `file`, charged to the sel-th
    /// container.
    Submit { sel: usize, file: u8, kib: u8 },
    /// Advance the clock to the next completion (no-op when idle).
    Complete,
    /// Destroy the sel-th non-root container mid-flight.
    Destroy { sel: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), 0u8..16, 1u8..64).prop_map(|(sel, file, kib)| Op::Submit {
            sel,
            file,
            kib
        }),
        Just(Op::Complete),
        any::<usize>().prop_map(|sel| Op::Destroy { sel }),
    ]
}

fn build_containers(t: &mut ContainerTable) -> Vec<ContainerId> {
    vec![
        t.root(),
        t.create(None, Attributes::fixed_share(0.7)).unwrap(),
        t.create(None, Attributes::fixed_share(0.3)).unwrap(),
        t.create(None, Attributes::time_shared(5)).unwrap(),
    ]
}

fn run_ops(ops: &[Op], sched: Box<dyn IoSched>) {
    let mut table = ContainerTable::new();
    let containers = build_containers(&mut table);
    let mut live = containers.clone();
    let mut disk = SimDisk::new(DiskParams::fast(), sched);
    let mut now = Nanos::ZERO;

    for op in ops {
        match *op {
            Op::Submit { sel, file, kib } => {
                let c = containers[sel % containers.len()];
                disk.submit(
                    DiskRequest {
                        file: file as u64,
                        bytes: kib as u64 * 1024,
                        charge_to: c,
                        intr_cpu: 0,
                        span: 0,
                    },
                    &table,
                    now,
                );
            }
            Op::Complete => {
                if let Some(t) = disk.next_completion_time() {
                    now = t;
                    disk.advance(now, &mut table);
                }
            }
            Op::Destroy { sel } => {
                if live.len() > 1 {
                    let idx = 1 + sel % (live.len() - 1);
                    let victim = live.remove(idx);
                    let _ = table.drop_descriptor_ref(victim);
                }
            }
        }
    }
    // Drain everything still queued or in flight.
    while let Some(t) = disk.next_completion_time() {
        now = t;
        disk.advance(now, &mut table);
    }

    // Conservation: every container here lives under the root, and a
    // destroyed child's disk history stays in its ancestors' subtree
    // counters, so root-subtree disk time (plus table-level reaped
    // history) equals the disk's busy time exactly.
    let charged = table.subtree_disk(table.root()).unwrap() + table.reaped_disk();
    prop_assert_eq!(charged, disk.total_busy());
    table.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO discipline: charged disk time conserves against busy time.
    #[test]
    fn fifo_conserves_disk_time(ops in prop::collection::vec(op_strategy(), 1..150)) {
        run_ops(&ops, Box::new(FifoIoSched::new()));
    }

    /// Share discipline: charged disk time conserves against busy time.
    #[test]
    fn share_conserves_disk_time(ops in prop::collection::vec(op_strategy(), 1..150)) {
        run_ops(&ops, Box::new(ShareIoSched::new()));
    }

    /// The buffer cache never drives a container's charged memory above its
    /// limit, and its residency accounting matches the table's counters.
    #[test]
    fn cache_respects_limits(
        inserts in prop::collection::vec((0u64..32, 1u64..16, any::<bool>()), 1..200),
        limit_kib in 4u64..64,
        capacity_kib in 8u64..128,
    ) {
        let mut table = ContainerTable::new();
        let limited = table
            .create(None, Attributes::time_shared(5).with_mem_limit(limit_kib * 1024))
            .unwrap();
        let open = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut cache = BufferCache::new(capacity_kib * 1024);

        for (file, kib, use_limited) in inserts {
            let owner = if use_limited { limited } else { open };
            // Key by owner too so the two containers do not share files.
            let key = file * 2 + use_limited as u64;
            if cache.lookup(key).is_none() {
                cache.insert(key, kib * 1024, owner, &mut table);
            }
            let u = table.usage(limited).unwrap();
            prop_assert!(
                u.mem_bytes <= limit_kib * 1024,
                "container over its limit: {} > {}",
                u.mem_bytes,
                limit_kib * 1024
            );
            prop_assert_eq!(u.mem_bytes, cache.resident_bytes(limited));
            prop_assert_eq!(table.usage(open).unwrap().mem_bytes, cache.resident_bytes(open));
            prop_assert!(cache.used() <= cache.capacity());
            prop_assert_eq!(
                cache.used(),
                cache.resident_bytes(limited) + cache.resident_bytes(open)
            );
        }
        table.check_invariants();
    }
}
