//! The disk device: a single-spindle, one-request-at-a-time server with a
//! positional cost model and exact per-container charging.
//!
//! Service time for a read is
//!
//! ```text
//! service = (seek + rotation, if the head moves to a different file)
//!         + bytes / transfer_rate
//! ```
//!
//! so back-to-back reads of the same file stream at the transfer rate
//! while interleaved reads of different files pay a positioning penalty —
//! enough structure for scheduling experiments without modelling tracks.
//!
//! The device is clockless: the kernel owns simulated time. It calls
//! [`SimDisk::submit`] when a request arrives, asks
//! [`SimDisk::next_completion_time`] for the next interesting instant, and
//! calls [`SimDisk::advance`] when that instant is reached. `advance`
//! charges each completed request's service time to its container and
//! accumulates the *same* value into the disk's busy-time counter, so
//!
//! ```text
//! Σ over containers of charged disk time  ==  total_busy
//! ```
//!
//! holds exactly (pinned by a proptest in `tests/prop_disk.rs`).

use rescon::{ContainerId, ContainerTable};
use simcore::span;
use simcore::trace::{self, TraceEventKind};
use simcore::Nanos;

use crate::iosched::{IoSched, QueuedRequest};

/// Device-assigned identifier for a submitted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// Physical cost knobs for the simulated disk.
///
/// The defaults approximate a late-1990s server disk (the hardware era of
/// the paper's testbed): 5 ms average seek, 10k RPM (3 ms average
/// rotational latency), 20 MB/s media rate.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Average seek time paid when the head moves between files.
    pub seek: Nanos,
    /// Average rotational latency paid along with a seek.
    pub rotation: Nanos,
    /// Media transfer rate in bytes per second.
    pub transfer_rate: u64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            seek: Nanos::from_micros(5_000),
            rotation: Nanos::from_micros(3_000),
            transfer_rate: 20 * 1024 * 1024,
        }
    }
}

impl DiskParams {
    /// A fast disk for unit tests: 100 µs positioning, 100 MB/s.
    pub fn fast() -> Self {
        DiskParams {
            seek: Nanos::from_micros(50),
            rotation: Nanos::from_micros(50),
            transfer_rate: 100 * 1024 * 1024,
        }
    }

    /// Service time for reading `bytes` of `file` given the previous head
    /// position.
    pub fn service(&self, file: u64, bytes: u64, last_file: Option<u64>) -> Nanos {
        let positioning = if last_file == Some(file) {
            Nanos::ZERO
        } else {
            self.seek + self.rotation
        };
        let transfer =
            Nanos::from_nanos((bytes as u128 * 1_000_000_000 / self.transfer_rate as u128) as u64);
        positioning + transfer
    }
}

/// A read request as submitted by the kernel.
#[derive(Clone, Copy, Debug)]
pub struct DiskRequest {
    /// File identifier (position proxy for the cost model).
    pub file: u64,
    /// Bytes to read.
    pub bytes: u64,
    /// Container charged for the service time.
    pub charge_to: ContainerId,
    /// CPU whose interrupt path will handle the completion (0 on a
    /// uniprocessor).
    pub intr_cpu: u32,
    /// Request span waiting on this transfer (`0` = none).
    pub span: u64,
}

/// A finished request, returned by [`SimDisk::advance`].
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The id returned by [`SimDisk::submit`].
    pub req: ReqId,
    /// File that was read.
    pub file: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Container the service time was charged to.
    pub charge_to: ContainerId,
    /// Time the request occupied the disk.
    pub service: Nanos,
    /// Simulated time at which the request finished.
    pub finish: Nanos,
    /// CPU whose interrupt path handles the completion.
    pub intr_cpu: u32,
    /// `false` when the request failed with an injected I/O error. The
    /// service time is charged either way: a failed transfer occupies
    /// the spindle exactly like a successful one.
    pub ok: bool,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    req: QueuedRequest,
    service: Nanos,
    finish: Nanos,
}

/// A deterministic single-disk device.
///
/// # Examples
///
/// ```
/// use rescon::ContainerTable;
/// use simcore::Nanos;
/// use simdisk::{DiskParams, DiskRequest, FifoIoSched, SimDisk};
///
/// let mut table = ContainerTable::new();
/// let mut disk = SimDisk::new(DiskParams::fast(), Box::new(FifoIoSched::new()));
/// disk.submit(
///     DiskRequest { file: 7, bytes: 8192, charge_to: table.root(), intr_cpu: 0, span: 0 },
///     &table,
///     Nanos::ZERO,
/// );
/// let t = disk.next_completion_time().unwrap();
/// let done = disk.advance(t, &mut table);
/// assert_eq!(done.len(), 1);
/// assert_eq!(disk.total_busy(), done[0].service);
/// assert_eq!(table.usage(table.root()).unwrap().disk_time, disk.total_busy());
/// ```
pub struct SimDisk {
    params: DiskParams,
    sched: Box<dyn IoSched>,
    inflight: Option<InFlight>,
    /// File of the most recently started request (head position).
    last_file: Option<u64>,
    total_busy: Nanos,
    completed: u64,
    next_id: u64,
}

impl SimDisk {
    /// Creates an idle disk with the given cost model and queue discipline.
    pub fn new(params: DiskParams, sched: Box<dyn IoSched>) -> Self {
        SimDisk {
            params,
            sched,
            inflight: None,
            last_file: None,
            total_busy: Nanos::ZERO,
            completed: 0,
            next_id: 0,
        }
    }

    /// Submits a read. If the disk is idle it starts service immediately;
    /// otherwise the request waits in the scheduler's queue. Returns the
    /// id that the eventual [`Completion`] will carry.
    pub fn submit(&mut self, req: DiskRequest, table: &ContainerTable, now: Nanos) -> ReqId {
        self.submit_with_fault(req, Nanos::ZERO, false, table, now)
    }

    /// Submits a read carrying an injected fault: `extra_service` is
    /// added to the physical service time (a latency spike) and `fail`
    /// marks the eventual [`Completion`] as an I/O error. The fault is
    /// decided at submit time so the device itself stays deterministic
    /// and clockless.
    pub fn submit_with_fault(
        &mut self,
        req: DiskRequest,
        extra_service: Nanos,
        fail: bool,
        table: &ContainerTable,
        now: Nanos,
    ) -> ReqId {
        let id = ReqId(self.next_id);
        self.next_id += 1;
        let queued = QueuedRequest {
            id,
            file: req.file,
            bytes: req.bytes,
            charge_to: req.charge_to,
            intr_cpu: req.intr_cpu,
            extra_service,
            fail,
            span: req.span,
        };
        self.sched.enqueue(queued, table);
        trace::emit_at(now, || TraceEventKind::DiskQueue {
            req: id.0,
            file: req.file,
            bytes: req.bytes,
            container: req.charge_to.as_u64(),
        });
        span::transition(req.span, span::Phase::DiskQueue, now);
        if self.inflight.is_none() {
            self.start_next(table, now);
        }
        id
    }

    /// Completes every request whose finish time is at or before `now`,
    /// charging service time to the owning containers, and starts the next
    /// queued request (the disk is work-conserving: it never idles while
    /// requests wait).
    pub fn advance(&mut self, now: Nanos, table: &mut ContainerTable) -> Vec<Completion> {
        let mut done = Vec::new();
        while let Some(inflight) = self.inflight {
            if inflight.finish > now {
                break;
            }
            self.inflight = None;
            // Charge the exact value accumulated into `total_busy`; a
            // request whose container was destroyed mid-flight bills the
            // root so accounting still conserves.
            let charged_to = inflight.req.charge_to;
            if table
                .charge_disk(charged_to, inflight.service, inflight.req.bytes)
                .is_err()
            {
                let root = table.root();
                table
                    .charge_disk(root, inflight.service, inflight.req.bytes)
                    .expect("root container always exists");
            }
            self.total_busy += inflight.service;
            self.completed += 1;
            trace::emit_at(inflight.finish, || TraceEventKind::DiskComplete {
                req: inflight.req.id.0,
                container: charged_to.as_u64(),
                service: inflight.service,
            });
            done.push(Completion {
                req: inflight.req.id,
                file: inflight.req.file,
                bytes: inflight.req.bytes,
                charge_to: charged_to,
                service: inflight.service,
                finish: inflight.finish,
                intr_cpu: inflight.req.intr_cpu,
                ok: !inflight.req.fail,
            });
            // Back-to-back service starts at the completion instant, not
            // at `now`, so a late `advance` call does not stretch time.
            self.start_next(table, inflight.finish);
        }
        done
    }

    fn start_next(&mut self, table: &ContainerTable, start: Nanos) {
        debug_assert!(self.inflight.is_none());
        let Some(req) = self.sched.dequeue(table) else {
            return;
        };
        let service = self.params.service(req.file, req.bytes, self.last_file) + req.extra_service;
        self.sched.charge(req.charge_to, service, table);
        trace::emit_at(start, || TraceEventKind::DiskStart {
            req: req.id.0,
            file: req.file,
            container: req.charge_to.as_u64(),
            service,
        });
        span::transition(req.span, span::Phase::DiskService, start);
        self.last_file = Some(req.file);
        self.inflight = Some(InFlight {
            req,
            service,
            finish: start + service,
        });
    }

    /// Finish time of the in-flight request, or `None` when fully idle.
    pub fn next_completion_time(&self) -> Option<Nanos> {
        self.inflight.map(|f| f.finish)
    }

    /// Cumulative time the disk has spent serving completed requests.
    /// Equals the sum of disk time charged across all containers.
    pub fn total_busy(&self) -> Nanos {
        self.total_busy
    }

    /// Number of completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests waiting in the queue (excluding the in-flight one).
    pub fn queue_len(&self) -> usize {
        self.sched.len()
    }

    /// Whether a request is currently being served.
    pub fn busy(&self) -> bool {
        self.inflight.is_some()
    }

    /// The queue discipline's name (`"fifo"` or `"share"`).
    pub fn sched_name(&self) -> &'static str {
        self.sched.name()
    }

    /// Swaps the queue discipline mid-run, draining every queued request
    /// from the old discipline into the new one in arrival order. The
    /// in-flight request is untouched: disk service is non-preemptive and
    /// its finish time is already fixed, so it completes (and charges)
    /// under the device, not the discipline. Returns the name of the
    /// discipline that was replaced.
    pub fn replace_sched(
        &mut self,
        mut sched: Box<dyn IoSched>,
        table: &ContainerTable,
    ) -> &'static str {
        let old = self.sched.name();
        for req in self.sched.drain() {
            sched.enqueue(req, table);
        }
        self.sched = sched;
        old
    }

    /// The cost model in use.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iosched::{FifoIoSched, ShareIoSched};
    use rescon::Attributes;

    fn drain(disk: &mut SimDisk, table: &mut ContainerTable) -> Vec<Completion> {
        let mut all = Vec::new();
        while let Some(t) = disk.next_completion_time() {
            all.extend(disk.advance(t, table));
        }
        all
    }

    #[test]
    fn sequential_reads_skip_positioning() {
        let p = DiskParams::fast();
        assert_eq!(
            p.service(1, 0, Some(1)),
            Nanos::ZERO,
            "same file, no bytes: free"
        );
        let first = p.service(1, 4096, None);
        let next = p.service(1, 4096, Some(1));
        assert_eq!(first - next, p.seek + p.rotation);
    }

    #[test]
    fn replace_sched_preserves_queue_and_inflight() {
        let mut table = ContainerTable::new();
        let c = table.create(None, Attributes::fixed_share(0.5)).unwrap();
        let mut disk = SimDisk::new(DiskParams::fast(), Box::new(ShareIoSched::new()));
        for i in 0..4 {
            disk.submit(
                DiskRequest {
                    file: i,
                    bytes: 4096,
                    charge_to: c,
                    intr_cpu: 0,
                    span: 0,
                },
                &table,
                Nanos::ZERO,
            );
        }
        assert!(disk.busy());
        assert_eq!(disk.queue_len(), 3);
        let finish = disk.next_completion_time().unwrap();
        let old = disk.replace_sched(Box::new(FifoIoSched::new()), &table);
        assert_eq!(old, "share");
        assert_eq!(disk.sched_name(), "fifo");
        // Queue intact, in-flight untouched.
        assert_eq!(disk.queue_len(), 3);
        assert_eq!(disk.next_completion_time(), Some(finish));
        let done = drain(&mut disk, &mut table);
        assert_eq!(done.len(), 4);
        // Everything still completes in arrival order and charges conserve.
        assert_eq!(
            done.iter().map(|d| d.req.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(table.usage(c).unwrap().disk_time, disk.total_busy());
    }

    #[test]
    fn single_request_charges_owner() {
        let mut table = ContainerTable::new();
        let c = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut disk = SimDisk::new(DiskParams::fast(), Box::new(FifoIoSched::new()));
        disk.submit(
            DiskRequest {
                file: 1,
                bytes: 65536,
                charge_to: c,
                intr_cpu: 0,
                span: 0,
            },
            &table,
            Nanos::ZERO,
        );
        let done = drain(&mut disk, &mut table);
        assert_eq!(done.len(), 1);
        let u = table.usage(c).unwrap();
        assert_eq!(u.disk_time, done[0].service);
        assert_eq!(u.disk_reads, 1);
        assert_eq!(u.disk_bytes, 65536);
        assert_eq!(disk.total_busy(), done[0].service);
    }

    #[test]
    fn work_conserving_back_to_back() {
        let mut table = ContainerTable::new();
        let mut disk = SimDisk::new(DiskParams::fast(), Box::new(FifoIoSched::new()));
        let root = table.root();
        for i in 0..3 {
            disk.submit(
                DiskRequest {
                    file: i,
                    bytes: 4096,
                    charge_to: root,
                    intr_cpu: 0,
                    span: 0,
                },
                &table,
                Nanos::ZERO,
            );
        }
        // Advance far past everything in one call: completions chain at
        // their finish instants, so busy time has no idle gaps.
        let done = disk.advance(Nanos::from_secs(10), &mut table);
        assert_eq!(done.len(), 3);
        for w in done.windows(2) {
            assert_eq!(w[0].finish + w[1].service, w[1].finish);
        }
        assert!(!disk.busy());
        assert_eq!(disk.completed(), 3);
    }

    #[test]
    fn share_discipline_splits_busy_time() {
        let mut table = ContainerTable::new();
        let big = table.create(None, Attributes::fixed_share(0.7)).unwrap();
        let small = table.create(None, Attributes::fixed_share(0.3)).unwrap();
        let mut disk = SimDisk::new(DiskParams::fast(), Box::new(ShareIoSched::new()));
        // Keep both backlogged: resubmit on completion.
        let mut now = Nanos::ZERO;
        for _ in 0..4 {
            for &(c, f) in &[(big, 1u64), (small, 1000u64)] {
                disk.submit(
                    DiskRequest {
                        file: f,
                        bytes: 32768,
                        charge_to: c,
                        intr_cpu: 0,
                        span: 0,
                    },
                    &table,
                    now,
                );
            }
        }
        for i in 0..2000u64 {
            let t = disk.next_completion_time().unwrap();
            now = t;
            for c in disk.advance(t, &mut table) {
                disk.submit(
                    DiskRequest {
                        file: c.file.wrapping_add(i),
                        bytes: 32768,
                        charge_to: c.charge_to,
                        intr_cpu: 0,
                        span: 0,
                    },
                    &table,
                    now,
                );
            }
        }
        let tb = table.usage(big).unwrap().disk_time;
        let ts = table.usage(small).unwrap().disk_time;
        let frac = tb.ratio(tb + ts);
        assert!((frac - 0.7).abs() < 0.05, "big disk-time fraction = {frac}");
    }

    #[test]
    fn injected_faults_still_charge_full_service() {
        let mut table = ContainerTable::new();
        let c = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut disk = SimDisk::new(DiskParams::fast(), Box::new(FifoIoSched::new()));
        let base = DiskParams::fast().service(1, 4096, None);
        let spike = Nanos::from_micros(700);
        disk.submit_with_fault(
            DiskRequest {
                file: 1,
                bytes: 4096,
                charge_to: c,
                intr_cpu: 0,
                span: 0,
            },
            spike,
            false,
            &table,
            Nanos::ZERO,
        );
        disk.submit_with_fault(
            DiskRequest {
                file: 1,
                bytes: 4096,
                charge_to: c,
                intr_cpu: 0,
                span: 0,
            },
            Nanos::ZERO,
            true,
            &table,
            Nanos::ZERO,
        );
        let done = drain(&mut disk, &mut table);
        assert_eq!(done.len(), 2);
        assert!(done[0].ok);
        assert_eq!(done[0].service, base + spike, "spike extends service");
        assert!(!done[1].ok, "second request fails");
        // Failed transfers occupy the spindle and bill the owner exactly
        // like successful ones, so the conservation identity holds.
        assert_eq!(
            table.usage(c).unwrap().disk_time,
            disk.total_busy(),
            "charged == busy with faults in play"
        );
    }

    #[test]
    fn destroyed_container_bills_root() {
        let mut table = ContainerTable::new();
        let c = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut disk = SimDisk::new(DiskParams::fast(), Box::new(FifoIoSched::new()));
        disk.submit(
            DiskRequest {
                file: 1,
                bytes: 4096,
                charge_to: c,
                intr_cpu: 0,
                span: 0,
            },
            &table,
            Nanos::ZERO,
        );
        table.drop_descriptor_ref(c).unwrap();
        let before = table.usage(table.root()).unwrap().disk_time;
        let done = drain(&mut disk, &mut table);
        let after = table.usage(table.root()).unwrap().disk_time;
        assert_eq!(after - before, done[0].service);
    }
}
