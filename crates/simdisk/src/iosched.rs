//! Disk request dispatch disciplines.
//!
//! The device ([`crate::SimDisk`]) pulls the next request from an
//! [`IoSched`] whenever it goes idle. The FIFO discipline reproduces the
//! unmodified kernel of the paper's baselines: the disk queue is a single
//! line, so a container that keeps many large requests outstanding imposes
//! its queueing delay on every other principal. The share-aware discipline
//! applies the same proportional-share machinery the CPU schedulers use
//! (stride scheduling over container virtual time), so disk bandwidth
//! divides according to container shares under contention.

use std::collections::{HashMap, VecDeque};

use rescon::{ContainerId, ContainerTable};
use simcore::Nanos;

use crate::disk::ReqId;

/// A request waiting for the disk, as seen by the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedRequest {
    /// Device-assigned request id.
    pub id: ReqId,
    /// File being read (head position proxy).
    pub file: u64,
    /// Bytes to transfer.
    pub bytes: u64,
    /// Container that pays for the service time.
    pub charge_to: ContainerId,
    /// CPU whose interrupt path handles the completion (0 on a
    /// uniprocessor).
    pub intr_cpu: u32,
    /// Injected latency spike added to the physical service time.
    pub extra_service: Nanos,
    /// Injected I/O error: the completion is delivered failed after the
    /// full (charged) service time.
    pub fail: bool,
    /// Request span waiting on this transfer (`0` = none).
    pub span: u64,
}

/// Dispatch order policy for pending disk requests.
pub trait IoSched {
    /// Adds a request to the queue.
    fn enqueue(&mut self, req: QueuedRequest, table: &ContainerTable);

    /// Removes and returns the next request to serve, or `None` if idle.
    fn dequeue(&mut self, table: &ContainerTable) -> Option<QueuedRequest>;

    /// Informs the scheduler of the actual service time of a dispatched
    /// request, so proportional-share disciplines can advance virtual time.
    fn charge(&mut self, charge_to: ContainerId, service: Nanos, table: &ContainerTable);

    /// Number of queued (not yet dispatched) requests.
    fn len(&self) -> usize;

    /// Removes and returns every queued request in arrival order (device
    /// request ids are assigned monotonically, so sorting by id recovers
    /// arrival order even when a discipline scatters requests across
    /// per-container queues). Used by mid-run policy swaps: the detaching
    /// discipline drains here and the replacement re-enqueues. Discipline
    /// ledgers (virtual time, passes) do not cross the swap.
    fn drain(&mut self) -> Vec<QueuedRequest>;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discipline name for reports.
    fn name(&self) -> &'static str;
}

/// Arrival-order dispatch: the unmodified-kernel baseline.
///
/// # Examples
///
/// ```
/// use rescon::ContainerTable;
/// use simcore::Nanos;
/// use simdisk::{FifoIoSched, IoSched, QueuedRequest, ReqId};
///
/// let table = ContainerTable::new();
/// let mut q = FifoIoSched::new();
/// let req = QueuedRequest {
///     id: ReqId(0), file: 1, bytes: 4096, charge_to: table.root(), intr_cpu: 0,
///     extra_service: Nanos::ZERO, fail: false, span: 0,
/// };
/// q.enqueue(req, &table);
/// assert_eq!(q.dequeue(&table), Some(req));
/// assert!(q.dequeue(&table).is_none());
/// ```
#[derive(Debug, Default)]
pub struct FifoIoSched {
    queue: VecDeque<QueuedRequest>,
}

impl FifoIoSched {
    /// Creates an empty FIFO queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IoSched for FifoIoSched {
    fn enqueue(&mut self, req: QueuedRequest, _table: &ContainerTable) {
        self.queue.push_back(req);
    }

    fn dequeue(&mut self, _table: &ContainerTable) -> Option<QueuedRequest> {
        self.queue.pop_front()
    }

    fn charge(&mut self, _charge_to: ContainerId, _service: Nanos, _table: &ContainerTable) {}

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<QueuedRequest> {
        self.queue.drain(..).collect()
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[derive(Debug)]
struct ContainerQueue {
    queue: VecDeque<QueuedRequest>,
    /// Virtual pass value; the non-empty queue with the lowest pass
    /// dispatches next.
    pass: f64,
}

/// Proportional-share dispatch over container virtual time.
///
/// Each container owns a FIFO of its requests and a pass value that
/// advances by `service / effective_share` whenever the disk serves one of
/// its requests. The non-empty queue with the smallest pass dispatches
/// next, so over any busy interval each backlogged container receives disk
/// time proportional to its effective share — the disk-bandwidth analogue
/// of the paper's fixed-share CPU guarantee.
///
/// A container whose queue drains re-joins at the current virtual time
/// when it next submits, so idle time is not banked as credit (same
/// revocation rule as the CPU stride scheduler).
#[derive(Debug, Default)]
pub struct ShareIoSched {
    queues: HashMap<ContainerId, ContainerQueue>,
    /// Global virtual time: the highest pass ever charged.
    vtime: f64,
    queued: usize,
}

impl ShareIoSched {
    /// Creates an empty share-aware queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn share(table: &ContainerTable, id: ContainerId) -> f64 {
        // A destroyed container's leftover requests dispatch at a nominal
        // small share rather than stalling the queue.
        table.effective_share(id).unwrap_or(0.01).max(1e-6)
    }
}

impl IoSched for ShareIoSched {
    fn enqueue(&mut self, req: QueuedRequest, _table: &ContainerTable) {
        let vtime = self.vtime;
        let q = self
            .queues
            .entry(req.charge_to)
            .or_insert_with(|| ContainerQueue {
                queue: VecDeque::new(),
                pass: vtime,
            });
        if q.queue.is_empty() {
            // Re-joining after idling: no banked credit.
            q.pass = q.pass.max(vtime);
        }
        q.queue.push_back(req);
        self.queued += 1;
    }

    fn dequeue(&mut self, _table: &ContainerTable) -> Option<QueuedRequest> {
        let mut best: Option<(f64, ContainerId)> = None;
        for (&id, q) in &self.queues {
            if q.queue.is_empty() {
                continue;
            }
            let better = match best {
                None => true,
                Some((bp, bid)) => q.pass < bp || (q.pass == bp && id < bid),
            };
            if better {
                best = Some((q.pass, id));
            }
        }
        let (_, id) = best?;
        let req = self.queues.get_mut(&id)?.queue.pop_front()?;
        self.queued -= 1;
        Some(req)
    }

    fn charge(&mut self, charge_to: ContainerId, service: Nanos, table: &ContainerTable) {
        let share = Self::share(table, charge_to);
        if let Some(q) = self.queues.get_mut(&charge_to) {
            q.pass += service.as_secs_f64() / share;
            if q.pass > self.vtime {
                self.vtime = q.pass;
            }
        }
    }

    fn len(&self) -> usize {
        self.queued
    }

    fn drain(&mut self) -> Vec<QueuedRequest> {
        let mut out: Vec<QueuedRequest> = self
            .queues
            .values_mut()
            .flat_map(|q| q.queue.drain(..))
            .collect();
        out.sort_by_key(|r| r.id);
        self.queued = 0;
        // Passes are deliberately dropped with the queues: the next
        // discipline starts a fresh ledger for everyone at once.
        self.queues.clear();
        out
    }

    fn name(&self) -> &'static str {
        "share"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescon::Attributes;

    fn req(id: u64, charge_to: ContainerId) -> QueuedRequest {
        QueuedRequest {
            id: ReqId(id),
            file: id,
            bytes: 4096,
            charge_to,
            intr_cpu: 0,
            extra_service: Nanos::ZERO,
            fail: false,
            span: 0,
        }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let table = ContainerTable::new();
        let mut q = FifoIoSched::new();
        for i in 0..5 {
            q.enqueue(req(i, table.root()), &table);
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(&table).unwrap().id, ReqId(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn share_sched_splits_by_effective_share() {
        let mut table = ContainerTable::new();
        let big = table.create(None, Attributes::fixed_share(0.7)).unwrap();
        let small = table.create(None, Attributes::fixed_share(0.3)).unwrap();
        let mut q = ShareIoSched::new();
        // Both containers keep deep backlogs; equal per-request service.
        let service = Nanos::from_millis(5);
        let mut served = HashMap::new();
        let mut next_id = 0u64;
        for _ in 0..4 {
            q.enqueue(req(next_id, big), &table);
            q.enqueue(req(next_id + 1, small), &table);
            next_id += 2;
        }
        for _ in 0..1000 {
            let r = q.dequeue(&table).unwrap();
            q.charge(r.charge_to, service, &table);
            *served.entry(r.charge_to).or_insert(0u64) += 1;
            q.enqueue(req(next_id, r.charge_to), &table);
            next_id += 1;
        }
        let b = served[&big] as f64;
        let s = served[&small] as f64;
        let frac = b / (b + s);
        assert!((frac - 0.7).abs() < 0.02, "big fraction = {frac}");
    }

    #[test]
    fn share_sched_rejoins_at_current_vtime() {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::fixed_share(0.5)).unwrap();
        let b = table.create(None, Attributes::fixed_share(0.5)).unwrap();
        let mut q = ShareIoSched::new();
        let service = Nanos::from_millis(5);
        // `a` runs alone for a long stretch.
        for i in 0..100 {
            q.enqueue(req(i, a), &table);
            let r = q.dequeue(&table).unwrap();
            q.charge(r.charge_to, service, &table);
        }
        // `b` arrives; it must not monopolize the disk to "catch up".
        let mut b_served = 0;
        let mut next_id = 100u64;
        q.enqueue(req(next_id, a), &table);
        q.enqueue(req(next_id + 1, b), &table);
        next_id += 2;
        for _ in 0..100 {
            let r = q.dequeue(&table).unwrap();
            q.charge(r.charge_to, service, &table);
            if r.charge_to == b {
                b_served += 1;
            }
            q.enqueue(req(next_id, r.charge_to), &table);
            next_id += 1;
        }
        assert!((40..=60).contains(&b_served), "b_served = {b_served}");
    }

    #[test]
    fn drain_recovers_arrival_order_across_disciplines() {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::fixed_share(0.7)).unwrap();
        let b = table.create(None, Attributes::fixed_share(0.3)).unwrap();
        let mut fifo = FifoIoSched::new();
        let mut share = ShareIoSched::new();
        // Interleaved arrivals from two containers.
        for i in 0..6 {
            let owner = if i % 2 == 0 { a } else { b };
            fifo.enqueue(req(i, owner), &table);
            share.enqueue(req(i, owner), &table);
        }
        let fd = fifo.drain();
        let sd = share.drain();
        assert_eq!(fd, sd);
        assert_eq!(
            fd.iter().map(|r| r.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert!(fifo.is_empty());
        assert!(share.is_empty());
        assert_eq!(share.len(), 0);
    }

    #[test]
    fn share_sched_len_counts_all_queues() {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut q = ShareIoSched::new();
        q.enqueue(req(0, a), &table);
        q.enqueue(req(1, table.root()), &table);
        assert_eq!(q.len(), 2);
        q.dequeue(&table);
        assert_eq!(q.len(), 1);
    }
}
