//! A deterministic disk subsystem charged to resource containers.
//!
//! The paper's resource containers meter CPU, memory, and network
//! consumption; §7 projects the abstraction onto "other resources, such as
//! disk bandwidth". This crate supplies that extension for the simulation:
//!
//! - [`SimDisk`] — a discrete-event disk device. Each read costs a seek
//!   plus rotational latency when the head moves between files, and a
//!   transfer time proportional to the bytes read. The disk serves one
//!   request at a time and charges the full service time to the owning
//!   container at completion ([`rescon::ContainerTable::charge_disk`]), so
//!   that the sum of per-container disk time equals the disk's busy time
//!   exactly.
//! - [`IoSched`] — the dispatch discipline for queued requests.
//!   [`FifoIoSched`] models an unmodified kernel: requests leave in arrival
//!   order, so one container's deep queue delays everyone. [`ShareIoSched`]
//!   dispatches by per-container virtual time weighted by
//!   [`rescon::ContainerTable::effective_share`], giving each container its
//!   guaranteed fraction of disk bandwidth under contention.
//! - [`BufferCache`] — a whole-file buffer cache whose resident bytes are
//!   charged to the owning container's memory counter via
//!   [`rescon::ContainerTable::charge_mem`]. A container at its memory
//!   limit evicts its own least-recently-used files rather than a
//!   neighbour's; global pressure evicts the globally least-recent file.

pub mod cache;
pub mod disk;
pub mod iosched;

pub use cache::{BufferCache, CacheOutcome};
pub use disk::{Completion, DiskParams, DiskRequest, ReqId, SimDisk};
pub use iosched::{FifoIoSched, IoSched, QueuedRequest, ShareIoSched};
