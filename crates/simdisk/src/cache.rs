//! A buffer cache whose resident bytes are charged to resource containers.
//!
//! The paper's memory accounting (§4.1) charges kernel memory — socket
//! buffers, PCBs — to the container on whose behalf it is held. The buffer
//! cache is the natural next consumer: a tenant that streams large files
//! should fill *its own* memory allowance, not evict a neighbour's working
//! set. This cache:
//!
//! - charges each resident file's bytes to its owning container via
//!   [`rescon::ContainerTable::charge_mem`] on insert, and releases them on
//!   eviction;
//! - enforces the container's (and every ancestor's) `mem_limit`: a
//!   container at its limit evicts its **own** least-recently-used files
//!   first, and if it still cannot fit the new file the insert is refused
//!   (the read completes uncached) rather than stealing from others;
//! - evicts the globally least-recently-used file under global capacity
//!   pressure, whoever owns it — capacity is a shared physical resource,
//!   limits are per-container policy.

use std::collections::HashMap;

use rescon::{ContainerId, ContainerTable, MemClass};
use simcore::trace::{self, TraceEventKind};

/// What happened to an insert attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The file is now resident and charged to its owner.
    Cached,
    /// The owner's memory limit (or an ancestor's) left no room even after
    /// evicting all of the owner's own files; the file stays uncached.
    RefusedByLimit,
    /// The file is larger than the whole cache.
    TooLarge,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    bytes: u64,
    owner: ContainerId,
    /// Monotonic recency stamp; smallest = least recently used.
    last_use: u64,
}

/// A whole-file LRU cache with per-container memory accounting.
///
/// # Examples
///
/// ```
/// use rescon::{Attributes, ContainerTable};
/// use simdisk::{BufferCache, CacheOutcome};
///
/// let mut table = ContainerTable::new();
/// let c = table
///     .create(None, Attributes::time_shared(5).with_mem_limit(8192))
///     .unwrap();
/// let mut cache = BufferCache::new(1 << 20);
/// assert_eq!(cache.insert(1, 4096, c, &mut table), CacheOutcome::Cached);
/// assert!(cache.lookup(1).is_some());
/// // A second file would exceed the 8 KiB limit; the first (the owner's
/// // own LRU victim) is evicted to make room.
/// assert_eq!(cache.insert(2, 8192, c, &mut table), CacheOutcome::Cached);
/// assert!(cache.lookup(1).is_none());
/// assert_eq!(table.usage(c).unwrap().mem_bytes, 8192);
/// ```
pub struct BufferCache {
    capacity: u64,
    used: u64,
    entries: HashMap<u64, Entry>,
    /// Per-owner resident byte totals (keyed by `ContainerId::as_u64`),
    /// maintained on insert/evict so `resident_bytes` is O(1) — it runs
    /// once per container per metrics sample.
    resident: HashMap<u64, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    refusals: u64,
}

impl BufferCache {
    /// Creates an empty cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        BufferCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            resident: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            refusals: 0,
        }
    }

    /// Looks `file` up, refreshing its recency. Returns its size if
    /// resident.
    pub fn lookup(&mut self, file: u64) -> Option<u64> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&file) {
            Some(e) => {
                e.last_use = clock;
                self.hits += 1;
                let owner = e.owner;
                trace::emit(|| TraceEventKind::CacheHit {
                    file,
                    container: owner.as_u64(),
                });
                Some(e.bytes)
            }
            None => {
                self.misses += 1;
                trace::emit(|| TraceEventKind::CacheMiss { file });
                None
            }
        }
    }

    /// Makes `file` resident, charged to `owner`. Evicts under global
    /// pressure (globally LRU file) and under the owner's memory limit
    /// (owner's own LRU file); refuses rather than exceed a limit.
    pub fn insert(
        &mut self,
        file: u64,
        bytes: u64,
        owner: ContainerId,
        table: &mut ContainerTable,
    ) -> CacheOutcome {
        if bytes > self.capacity {
            self.refusals += 1;
            return CacheOutcome::TooLarge;
        }
        if let Some(old) = self.entries.get(&file).copied() {
            // Re-insert (e.g. the file changed owner or size): drop the
            // old residency first so accounting stays exact.
            self.evict_file(file, old, table);
        }
        // Global capacity pressure: evict whoever is least recent.
        while self.used + bytes > self.capacity {
            let Some(victim) = self.lru_victim(None) else {
                break;
            };
            let e = self.entries[&victim];
            self.evict_file(victim, e, table);
        }
        // Per-container limit: evict only the owner's own files, and give
        // up (uncached read) when none are left to evict.
        loop {
            match table.charge_mem_class(owner, MemClass::CachePage, bytes) {
                Ok(()) => break,
                Err(_) => {
                    let Some(victim) = self.lru_victim(Some(owner)) else {
                        self.refusals += 1;
                        return CacheOutcome::RefusedByLimit;
                    };
                    let e = self.entries[&victim];
                    self.evict_file(victim, e, table);
                }
            }
        }
        self.clock += 1;
        self.entries.insert(
            file,
            Entry {
                bytes,
                owner,
                last_use: self.clock,
            },
        );
        self.used += bytes;
        *self.resident.entry(owner.as_u64()).or_insert(0) += bytes;
        CacheOutcome::Cached
    }

    /// Drops `file` if resident, releasing its owner's memory charge.
    pub fn invalidate(&mut self, file: u64, table: &mut ContainerTable) -> bool {
        match self.entries.get(&file).copied() {
            Some(e) => {
                self.evict_file(file, e, table);
                true
            }
            None => false,
        }
    }

    /// Drops every file owned by `owner` (e.g. when a tenant is removed).
    pub fn evict_owner(&mut self, owner: ContainerId, table: &mut ContainerTable) {
        let files: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.owner == owner)
            .map(|(&f, _)| f)
            .collect();
        for f in files {
            let e = self.entries[&f];
            self.evict_file(f, e, table);
        }
    }

    fn evict_file(&mut self, file: u64, e: Entry, table: &mut ContainerTable) {
        self.entries.remove(&file);
        self.used -= e.bytes;
        if let Some(r) = self.resident.get_mut(&e.owner.as_u64()) {
            *r = r.saturating_sub(e.bytes);
            if *r == 0 {
                self.resident.remove(&e.owner.as_u64());
            }
        }
        self.evictions += 1;
        trace::emit(|| TraceEventKind::CacheEvict {
            file,
            bytes: e.bytes,
            container: e.owner.as_u64(),
        });
        // The owner may have been destroyed since insertion; its memory
        // accounting died with it.
        let _ = table.release_mem_class(e.owner, MemClass::CachePage, e.bytes);
    }

    /// Steals the least-recently-used resident file whose owner satisfies
    /// `member` (typically "is in the violating subtree"), releasing its
    /// memory charge. Returns `(file, bytes, owner_key)` of the stolen
    /// entry, or `None` when nothing eligible remains. The caller (the
    /// reclaim driver) is responsible for tracing the steal.
    pub fn reclaim_one(
        &mut self,
        table: &mut ContainerTable,
        member: impl Fn(ContainerId) -> bool,
    ) -> Option<(u64, u64, u64)> {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| member(e.owner))
            .min_by_key(|(&f, e)| (e.last_use, f))
            .map(|(&f, _)| f)?;
        let e = self.entries[&victim];
        self.evict_file(victim, e, table);
        Some((victim, e.bytes, e.owner.as_u64()))
    }

    /// Least-recently-used resident file, optionally restricted to one
    /// owner. Ties break on the lower file id for determinism.
    fn lru_victim(&self, owner: Option<ContainerId>) -> Option<u64> {
        self.entries
            .iter()
            .filter(|(_, e)| owner.is_none_or(|o| e.owner == o))
            .min_by_key(|(&f, e)| (e.last_use, f))
            .map(|(&f, _)| f)
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, evictions, refusals)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.evictions, self.refusals)
    }

    /// Bytes resident on behalf of `owner` (O(1): maintained on
    /// insert/evict rather than scanned).
    pub fn resident_bytes(&self, owner: ContainerId) -> u64 {
        self.resident.get(&owner.as_u64()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescon::Attributes;

    #[test]
    fn global_lru_eviction_under_capacity_pressure() {
        let mut table = ContainerTable::new();
        let root = table.root();
        let mut cache = BufferCache::new(10_000);
        assert_eq!(
            cache.insert(1, 4_000, root, &mut table),
            CacheOutcome::Cached
        );
        assert_eq!(
            cache.insert(2, 4_000, root, &mut table),
            CacheOutcome::Cached
        );
        cache.lookup(1); // make file 2 the LRU
        assert_eq!(
            cache.insert(3, 4_000, root, &mut table),
            CacheOutcome::Cached
        );
        assert!(cache.lookup(2).is_none(), "LRU file evicted");
        assert!(cache.lookup(1).is_some());
        assert_eq!(cache.used(), 8_000);
        assert_eq!(table.usage(root).unwrap().mem_bytes, 8_000);
    }

    #[test]
    fn limit_evicts_own_files_not_neighbours() {
        let mut table = ContainerTable::new();
        let a = table
            .create(None, Attributes::time_shared(5).with_mem_limit(8_192))
            .unwrap();
        let b = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut cache = BufferCache::new(1 << 20);
        assert_eq!(cache.insert(10, 4_096, a, &mut table), CacheOutcome::Cached);
        assert_eq!(cache.insert(20, 4_096, b, &mut table), CacheOutcome::Cached);
        assert_eq!(cache.insert(11, 4_096, a, &mut table), CacheOutcome::Cached);
        // `a` is at its limit; inserting another of its files evicts a's
        // LRU (file 10), never b's.
        assert_eq!(cache.insert(12, 4_096, a, &mut table), CacheOutcome::Cached);
        assert!(cache.lookup(10).is_none());
        assert!(cache.lookup(20).is_some(), "neighbour untouched");
        assert_eq!(table.usage(a).unwrap().mem_bytes, 8_192);
    }

    #[test]
    fn refuses_file_bigger_than_limit() {
        let mut table = ContainerTable::new();
        let a = table
            .create(None, Attributes::time_shared(5).with_mem_limit(4_096))
            .unwrap();
        let mut cache = BufferCache::new(1 << 20);
        assert_eq!(
            cache.insert(1, 8_192, a, &mut table),
            CacheOutcome::RefusedByLimit
        );
        assert_eq!(table.usage(a).unwrap().mem_bytes, 0);
        assert_eq!(cache.used(), 0);
    }

    #[test]
    fn file_bigger_than_cache_is_too_large() {
        let mut table = ContainerTable::new();
        let root = table.root();
        let mut cache = BufferCache::new(1_000);
        assert_eq!(
            cache.insert(1, 2_000, root, &mut table),
            CacheOutcome::TooLarge
        );
    }

    #[test]
    fn invalidate_releases_charge() {
        let mut table = ContainerTable::new();
        let root = table.root();
        let mut cache = BufferCache::new(1 << 20);
        cache.insert(1, 4_096, root, &mut table);
        assert!(cache.invalidate(1, &mut table));
        assert!(!cache.invalidate(1, &mut table));
        assert_eq!(table.usage(root).unwrap().mem_bytes, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn evict_owner_clears_only_that_owner() {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::time_shared(5)).unwrap();
        let b = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut cache = BufferCache::new(1 << 20);
        cache.insert(1, 100, a, &mut table);
        cache.insert(2, 200, a, &mut table);
        cache.insert(3, 300, b, &mut table);
        cache.evict_owner(a, &mut table);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(b), 300);
        assert_eq!(table.usage(a).unwrap().mem_bytes, 0);
    }

    #[test]
    fn resident_counter_tracks_insert_reinsert_and_evict() {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::time_shared(5)).unwrap();
        let b = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut cache = BufferCache::new(1 << 20);
        cache.insert(1, 100, a, &mut table);
        cache.insert(2, 200, a, &mut table);
        assert_eq!(cache.resident_bytes(a), 300);
        // Re-insert with a new size and a new owner.
        cache.insert(1, 150, b, &mut table);
        assert_eq!(cache.resident_bytes(a), 200);
        assert_eq!(cache.resident_bytes(b), 150);
        cache.invalidate(2, &mut table);
        assert_eq!(cache.resident_bytes(a), 0);
        // Counter matches charged memory classes exactly.
        assert_eq!(
            table.usage(b).unwrap().mem_by_class[MemClass::CachePage.index()],
            150
        );
    }

    #[test]
    fn reclaim_one_steals_lru_within_membership() {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::time_shared(5)).unwrap();
        let b = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut cache = BufferCache::new(1 << 20);
        cache.insert(1, 100, a, &mut table);
        cache.insert(2, 200, b, &mut table);
        cache.insert(3, 300, a, &mut table);
        cache.lookup(1); // file 3 is now a's LRU
        let stolen = cache.reclaim_one(&mut table, |o| o == a);
        assert_eq!(stolen, Some((3, 300, a.as_u64())));
        assert!(cache.lookup(2).is_some(), "non-member untouched");
        assert_eq!(cache.resident_bytes(a), 100);
        assert_eq!(table.usage(a).unwrap().mem_bytes, 100);
        // Nothing eligible: predicate matches no owner.
        assert_eq!(cache.reclaim_one(&mut table, |_| false), None);
    }
}
