//! Seedable randomness for reproducible simulations.
//!
//! All stochastic behaviour in the workspace (request think times, packet
//! interarrivals, lottery draws) flows through [`SimRng`], a thin wrapper
//! over `rand::rngs::StdRng`. A simulation seeded with the same `u64`
//! replays identically; this is asserted by property tests in the
//! integration suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::Nanos;

/// A deterministic random-number source for the simulation.
///
/// # Examples
///
/// ```
/// use simcore::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Splits off an independent generator, deterministically derived from
    /// this one. Useful for giving each client its own stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.random::<u64>())
    }

    /// Returns a uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.random_range(lo..hi)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples an exponentially distributed duration with the given mean.
    ///
    /// Used for open-loop (Poisson) arrival processes such as the SYN
    /// flooder. A zero mean yields a zero duration.
    pub fn exponential(&mut self, mean: Nanos) -> Nanos {
        if mean.is_zero() {
            return Nanos::ZERO;
        }
        // Inverse-CDF sampling; `1 - u` avoids ln(0).
        let u = 1.0 - self.uniform_f64();
        let x = -u.ln();
        mean.mul_f64(x)
    }

    /// Samples a duration uniformly in `[lo, hi]`.
    pub fn uniform_duration(&mut self, lo: Nanos, hi: Nanos) -> Nanos {
        if hi <= lo {
            return lo;
        }
        Nanos::from_nanos(self.uniform_u64(lo.as_nanos(), hi.as_nanos() + 1))
    }

    /// Picks a uniformly random index below `len`. Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.uniform_u64(0, len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.uniform_u64(0, 100), fb.uniform_u64(0, 100));
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = SimRng::seed_from(123);
        let mean = Nanos::from_micros(100);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.exponential(mean).as_nanos()).sum();
        let avg = total as f64 / n as f64;
        let expected = mean.as_nanos() as f64;
        assert!(
            (avg - expected).abs() / expected < 0.05,
            "avg {avg} vs expected {expected}"
        );
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut r = SimRng::seed_from(1);
        assert_eq!(r.exponential(Nanos::ZERO), Nanos::ZERO);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn uniform_duration_degenerate_range() {
        let mut r = SimRng::seed_from(5);
        let t = Nanos::from_micros(10);
        assert_eq!(r.uniform_duration(t, t), t);
        assert_eq!(r.uniform_duration(t, Nanos::ZERO), t);
    }
}
