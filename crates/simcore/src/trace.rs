//! Typed, zero-cost-when-disabled kernel tracing.
//!
//! Every subsystem in the workspace (`simos`, `simnet`, `simdisk`,
//! `sched`, `rescon`) records structured [`TraceEvent`]s into a bounded
//! thread-local ring at its decision points: context switches, thread
//! state changes, syscall entry/exit, packet demultiplexing and drops,
//! LRP kthread dispatch, disk queue/start/complete, cache hits and
//! evictions, container lifecycle and charges, and scheduler picks.
//!
//! Tracing is **off by default** and, when off, every [`emit`] costs one
//! thread-local branch; the event-construction closure is never
//! evaluated. Recording is side-effect-free with respect to the
//! simulation: enabling tracing must never change a run's virtual-time
//! results (property-tested at workspace level).
//!
//! The session is thread-local because a simulation is single-threaded
//! by construction; the Rust test harness gives each test its own
//! thread, so concurrent tests never share a ring.
//!
//! Higher-level session management (metrics sampling, exporters) lives in
//! the `rctrace` crate; this module is only the event taxonomy and the
//! ring.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use crate::time::Nanos;

/// Sentinel for "no owning container" in a trace event. Real container
/// ids are `Idx::as_u64()` values, whose generation-in-the-high-bits
/// encoding never produces `u64::MAX`.
pub const NO_CONTAINER: u64 = u64::MAX;

/// What kind of consumption a [`TraceEventKind::Charge`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChargeKind {
    /// User-mode CPU time (nanoseconds).
    Cpu,
    /// Kernel-mode CPU time (nanoseconds).
    KernelCpu,
    /// Disk service time (nanoseconds).
    Disk,
    /// Received bytes.
    RxBytes,
    /// Transmitted bytes.
    TxBytes,
    /// Link wire time (nanoseconds) on a finite-bandwidth transmit link.
    TxTime,
    /// Kernel memory charged (bytes).
    Mem,
}

impl ChargeKind {
    /// Stable lower-case label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            ChargeKind::Cpu => "cpu",
            ChargeKind::KernelCpu => "kernel_cpu",
            ChargeKind::Disk => "disk",
            ChargeKind::RxBytes => "rx_bytes",
            ChargeKind::TxBytes => "tx_bytes",
            ChargeKind::TxTime => "tx_time",
            ChargeKind::Mem => "mem",
        }
    }
}

/// A structured kernel trace event.
///
/// Fields use primitive ids: task ids are the scheduler's raw `u32`,
/// containers are `Idx::as_u64()` values (or [`NO_CONTAINER`]), so the
/// substrate stays ignorant of the higher crates' types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A CPU switched from one thread to another.
    CtxSwitch {
        /// Previously running task (`u32::MAX` when coming from idle).
        from: u32,
        /// Task now running.
        to: u32,
        /// Container the new task charges by default.
        container: u64,
        /// The CPU on which the switch happened (always 0 on a
        /// uniprocessor configuration).
        cpu: u32,
    },
    /// The load balancer migrated a thread between CPUs.
    Migrate {
        /// The migrated task.
        task: u32,
        /// CPU the task left.
        from_cpu: u32,
        /// CPU the task now runs on.
        to_cpu: u32,
        /// Container whose imbalance motivated the migration.
        container: u64,
    },
    /// A thread became runnable or blocked.
    ThreadState {
        /// The task whose state changed.
        task: u32,
        /// `true` = runnable, `false` = blocked/parked.
        runnable: bool,
    },
    /// A syscall was entered.
    SyscallEnter {
        /// Static syscall name.
        name: &'static str,
        /// Calling task.
        task: u32,
        /// Calling process.
        pid: u32,
        /// The calling thread's resource binding.
        container: u64,
    },
    /// A syscall returned.
    SyscallExit {
        /// Static syscall name.
        name: &'static str,
        /// Calling task.
        task: u32,
    },
    /// Early demultiplexing classified a received packet.
    PacketDemux {
        /// Destination port of the packet.
        port: u16,
        /// Whether a socket matched.
        matched: bool,
        /// Owning container of the matched socket.
        container: u64,
    },
    /// A packet was dropped before protocol processing.
    PacketDrop {
        /// Static reason ("no-owner", "queue-full", "syn-evict",
        /// "accept-overflow").
        reason: &'static str,
        /// Container charged for the packet, when known.
        container: u64,
    },
    /// The LRP kernel thread dequeued a packet for protocol processing.
    LrpDispatch {
        /// The kernel network thread.
        task: u32,
        /// Principal whose queue was served.
        container: u64,
    },
    /// A disk request entered the I/O scheduler queue.
    DiskQueue {
        /// Request id.
        req: u64,
        /// File identifier.
        file: u64,
        /// Transfer size in bytes.
        bytes: u64,
        /// Container charged for the service time.
        container: u64,
    },
    /// The disk started servicing a request.
    DiskStart {
        /// Request id.
        req: u64,
        /// File identifier.
        file: u64,
        /// Container charged.
        container: u64,
        /// Seek + rotation + transfer service time.
        service: Nanos,
    },
    /// A disk request completed.
    DiskComplete {
        /// Request id.
        req: u64,
        /// Container charged.
        container: u64,
        /// Service time charged.
        service: Nanos,
    },
    /// An outbound packet entered the transmit link scheduler queue.
    LinkQueue {
        /// Destination port of the queued packet.
        port: u16,
        /// Wire bytes (headers + payload) of the packet.
        bytes: u64,
        /// Container whose queue it joined.
        container: u64,
    },
    /// The transmit link started putting a packet on the wire.
    LinkStart {
        /// Destination port of the packet.
        port: u16,
        /// Wire bytes (headers + payload) of the packet.
        bytes: u64,
        /// Container charged for the wire time.
        container: u64,
        /// Time the packet occupies the link.
        wire: Nanos,
    },
    /// An outbound packet was dropped by the transmit link scheduler
    /// (rate cap or queue bound).
    LinkDrop {
        /// Destination port of the dropped packet.
        port: u16,
        /// Container charged for the drop.
        container: u64,
    },
    /// The buffer cache served a lookup from memory.
    CacheHit {
        /// File identifier.
        file: u64,
        /// Owner of the resident bytes.
        container: u64,
    },
    /// The buffer cache missed.
    CacheMiss {
        /// File identifier.
        file: u64,
    },
    /// The buffer cache evicted a resident file.
    CacheEvict {
        /// File identifier.
        file: u64,
        /// Bytes released.
        bytes: u64,
        /// Owner whose memory charge was released.
        container: u64,
    },
    /// A resource container was created.
    ContainerCreate {
        /// The new container.
        container: u64,
        /// Its parent ([`NO_CONTAINER`] for the root or parentless).
        parent: u64,
    },
    /// A resource container was destroyed.
    ContainerDestroy {
        /// The destroyed container.
        container: u64,
    },
    /// Consumption was charged to a container.
    Charge {
        /// The charged container.
        container: u64,
        /// What resource.
        kind: ChargeKind,
        /// Nanoseconds or bytes, per [`ChargeKind`].
        amount: u64,
    },
    /// The CPU scheduler picked a task.
    SchedPick {
        /// The picked task.
        task: u32,
        /// Granted slice length.
        slice: Nanos,
    },
    /// A subtree with a memory limit crossed its pressure threshold
    /// (usage above the configured fraction of the limit) after a
    /// successful charge.
    MemPressure {
        /// The limited container under pressure.
        container: u64,
        /// Its subtree memory usage in bytes.
        used: u64,
        /// Its configured memory limit in bytes.
        limit: u64,
    },
    /// The reclaim driver stole a reclaimable (cache) page set to make
    /// room under a violated memory limit.
    Reclaim {
        /// The limited container whose subtree was over budget.
        container: u64,
        /// The owner the bytes were stolen from (within that subtree).
        victim: u64,
        /// File identifier of the stolen cache entry.
        file: u64,
        /// Bytes reclaimed.
        bytes: u64,
    },
    /// Reclaim could not satisfy a hard allocation; the OOM killer
    /// targeted the offending principal (largest charge in the violating
    /// subtree).
    OomKill {
        /// The limited container whose subtree was over budget.
        container: u64,
        /// The principal that was killed.
        victim: u64,
        /// The victim's charged bytes at kill time.
        bytes: u64,
    },
    /// A memory charge was refused by a limit on the ancestor chain
    /// (after any reclaim and OOM attempts).
    MemRefused {
        /// The container the charge was for.
        container: u64,
        /// The ancestor whose limit refused it.
        refusing: u64,
        /// The refusing ancestor's configured limit in bytes.
        limit: u64,
        /// The refusing ancestor's subtree usage in bytes.
        used: u64,
        /// Bytes the caller wanted to charge.
        wanted: u64,
    },
    /// Fault injection silently dropped an inbound packet before the
    /// stack saw it.
    FaultPacketDrop {
        /// Destination port of the lost packet.
        port: u16,
        /// Container the packet would have charged, when known
        /// ([`NO_CONTAINER`] when it was lost before classification).
        container: u64,
    },
    /// Fault injection corrupted an inbound packet's payload.
    FaultPacketCorrupt {
        /// Destination port of the corrupted packet.
        port: u16,
        /// Container the packet charges, when known.
        container: u64,
    },
    /// Fault injection delayed an inbound packet in flight.
    FaultPacketDelay {
        /// Destination port of the delayed packet.
        port: u16,
        /// Extra in-flight delay.
        delay: Nanos,
        /// Container the packet charges, when known.
        container: u64,
    },
    /// Fault injection failed a disk request with an I/O error.
    FaultDiskError {
        /// File identifier of the failed request.
        file: u64,
        /// Container charged for the wasted service time.
        container: u64,
    },
    /// Fault injection added a latency spike to a disk request.
    FaultDiskSpike {
        /// File identifier of the spiked request.
        file: u64,
        /// Extra service time added.
        extra: Nanos,
        /// Container charged.
        container: u64,
    },
    /// Fault injection made a client abandon its request mid-stream.
    FaultClientAbandon {
        /// Index of the misbehaving client.
        client: u32,
    },
    /// Fault injection made a client send a malformed request.
    FaultClientMalformed {
        /// Index of the misbehaving client.
        client: u32,
    },
    /// A request completed over a declared latency SLO threshold (the
    /// online monitor fires one instant per violating sample).
    SloViolation {
        /// The tenant container the SLO is declared on.
        container: u64,
        /// The minted request id of the violating request.
        request: u64,
        /// The request's end-to-end latency.
        latency: Nanos,
        /// The declared threshold it exceeded.
        threshold: Nanos,
    },
    /// Fault injection slowed a client's request transmission.
    FaultClientSlow {
        /// Index of the misbehaving client.
        client: u32,
        /// Extra transmission delay.
        delay: Nanos,
    },
    /// A scheduling policy was hot-swapped on one resource plane, with
    /// all in-flight state drained through a policy-neutral snapshot.
    PolicySwap {
        /// The resource plane: `"cpu"`, `"disk"`, or `"link"`.
        plane: &'static str,
        /// Name of the detached policy.
        from: &'static str,
        /// Name of the attached policy.
        to: &'static str,
    },
}

/// One recorded event: virtual time plus the structured payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event was recorded.
    pub at: Nanos,
    /// The structured payload.
    pub kind: TraceEventKind,
}

/// The drained contents of a trace session.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    /// Retained events, oldest first (the most recent `capacity`).
    pub events: Vec<TraceEvent>,
    /// Total events emitted while enabled (including evicted ones).
    pub emitted: u64,
    /// Events evicted because the ring was full.
    pub dropped: u64,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static NOW: Cell<Nanos> = const { Cell::new(Nanos::ZERO) };
    static RING: RefCell<Option<Ring>> = const { RefCell::new(None) };
}

/// Returns `true` if tracing is enabled on this thread.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Starts a trace session retaining at most `capacity` events. Any
/// previous session's events are discarded.
pub fn start(capacity: usize) {
    RING.with(|r| {
        *r.borrow_mut() = Some(Ring {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            emitted: 0,
            dropped: 0,
        });
    });
    NOW.with(|n| n.set(Nanos::ZERO));
    ENABLED.with(|e| e.set(true));
}

/// Stops the session and returns everything recorded. Idempotent: a
/// second call returns an empty buffer.
pub fn stop() -> TraceBuffer {
    ENABLED.with(|e| e.set(false));
    RING.with(|r| match r.borrow_mut().take() {
        Some(ring) => TraceBuffer {
            events: ring.events.into(),
            emitted: ring.emitted,
            dropped: ring.dropped,
        },
        None => TraceBuffer::default(),
    })
}

/// A trace session detached from the thread-local slot by [`pause`], so a
/// different session can run in the meantime (cluster drivers hold one
/// per node and swap them around each kernel step).
pub struct PausedTrace {
    enabled: bool,
    now: Nanos,
    ring: Option<Ring>,
}

/// Detaches the current session — enabled flag, clock, and ring — leaving
/// tracing disabled until [`resume`] or [`start`] is called.
pub fn pause() -> PausedTrace {
    PausedTrace {
        enabled: ENABLED.with(|e| e.replace(false)),
        now: NOW.with(|n| n.get()),
        ring: RING.with(|r| r.borrow_mut().take()),
    }
}

/// Reinstates a session captured by [`pause`], restoring its clock and
/// enabled flag exactly as they were.
pub fn resume(paused: PausedTrace) {
    RING.with(|r| *r.borrow_mut() = paused.ring);
    NOW.with(|n| n.set(paused.now));
    ENABLED.with(|e| e.set(paused.enabled));
}

/// Advances the session clock; subsequent [`emit`]s are stamped with
/// `at`. The kernel calls this wherever it advances its own clock.
#[inline]
pub fn set_now(at: Nanos) {
    if enabled() {
        NOW.with(|n| n.set(at));
    }
}

/// Records an event at the current session clock. `f` is only evaluated
/// when tracing is enabled.
#[inline]
pub fn emit(f: impl FnOnce() -> TraceEventKind) {
    if !enabled() {
        return;
    }
    record(NOW.with(|n| n.get()), f());
}

/// Records an event at an explicit virtual time (for call sites that
/// know `now` but run outside the kernel's clock updates).
#[inline]
pub fn emit_at(at: Nanos, f: impl FnOnce() -> TraceEventKind) {
    if !enabled() {
        return;
    }
    record(at, f());
}

fn record(at: Nanos, kind: TraceEventKind) {
    RING.with(|r| {
        if let Some(ring) = r.borrow_mut().as_mut() {
            ring.emitted += 1;
            if ring.events.len() == ring.capacity {
                ring.events.pop_front();
                ring.dropped += 1;
            }
            ring.events.push_back(TraceEvent { at, kind });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emits_nothing_and_never_evaluates() {
        let _ = stop();
        emit(|| panic!("must not evaluate"));
        emit_at(Nanos::ZERO, || panic!("must not evaluate"));
        assert!(!enabled());
        assert!(stop().events.is_empty());
    }

    #[test]
    fn events_are_stamped_with_session_clock() {
        start(16);
        set_now(Nanos::from_micros(5));
        emit(|| TraceEventKind::CacheMiss { file: 7 });
        emit_at(Nanos::from_micros(9), || TraceEventKind::CacheMiss {
            file: 8,
        });
        let buf = stop();
        assert_eq!(buf.events.len(), 2);
        assert_eq!(buf.events[0].at, Nanos::from_micros(5));
        assert_eq!(buf.events[1].at, Nanos::from_micros(9));
        assert_eq!(buf.emitted, 2);
        assert_eq!(buf.dropped, 0);
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        start(3);
        for i in 0..5 {
            emit_at(Nanos::from_nanos(i), || TraceEventKind::CacheMiss {
                file: i,
            });
        }
        let buf = stop();
        assert_eq!(buf.events.len(), 3);
        assert_eq!(buf.emitted, 5);
        assert_eq!(buf.dropped, 2);
        let files: Vec<u64> = buf
            .events
            .iter()
            .map(|e| match e.kind {
                TraceEventKind::CacheMiss { file } => file,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(files, [2, 3, 4]);
    }

    #[test]
    fn stop_is_idempotent_and_restartable() {
        start(4);
        emit(|| TraceEventKind::CacheMiss { file: 1 });
        assert_eq!(stop().events.len(), 1);
        assert_eq!(stop().events.len(), 0);
        start(4);
        assert!(enabled());
        assert!(stop().events.is_empty());
    }

    #[test]
    fn charge_kind_labels_are_stable() {
        for (k, l) in [
            (ChargeKind::Cpu, "cpu"),
            (ChargeKind::KernelCpu, "kernel_cpu"),
            (ChargeKind::Disk, "disk"),
            (ChargeKind::RxBytes, "rx_bytes"),
            (ChargeKind::TxBytes, "tx_bytes"),
            (ChargeKind::TxTime, "tx_time"),
            (ChargeKind::Mem, "mem"),
        ] {
            assert_eq!(k.label(), l);
        }
    }
}
