//! A cheap, bounded trace ring for debugging simulation interleavings.
//!
//! Tracing is off by default and, when off, costs one branch per call.
//! When on, the most recent `capacity` entries are retained; this is enough
//! to post-mortem a scheduling anomaly without unbounded memory growth in
//! multi-minute simulated runs.

use std::collections::VecDeque;

use crate::time::Nanos;

/// One trace entry: a timestamp and a preformatted message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time at which the event was recorded.
    pub at: Nanos,
    /// Human-readable description.
    pub msg: String,
}

/// A bounded ring buffer of trace entries.
///
/// # Examples
///
/// ```
/// use simcore::{Nanos, TraceRing};
///
/// let mut t = TraceRing::new(2);
/// t.set_enabled(true);
/// t.record(Nanos::ZERO, || "a".to_string());
/// t.record(Nanos::from_micros(1), || "b".to_string());
/// t.record(Nanos::from_micros(2), || "c".to_string());
/// let msgs: Vec<&str> = t.entries().iter().map(|e| e.msg.as_str()).collect();
/// assert_eq!(msgs, ["b", "c"]);
/// ```
#[derive(Debug)]
pub struct TraceRing {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
}

impl TraceRing {
    /// Creates a disabled ring that retains at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            enabled: false,
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Returns `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a message; `f` is only evaluated when tracing is enabled.
    pub fn record(&mut self, at: Nanos, f: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { at, msg: f() });
    }

    /// Returns the retained entries, oldest first.
    pub fn entries(&self) -> &VecDeque<TraceEntry> {
        &self.entries
    }

    /// Drops all retained entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceRing::new(8);
        t.record(Nanos::ZERO, || panic!("must not evaluate"));
        assert!(t.entries().is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceRing::new(3);
        t.set_enabled(true);
        for i in 0..5 {
            t.record(Nanos::from_nanos(i), || format!("e{i}"));
        }
        let msgs: Vec<&str> = t.entries().iter().map(|e| e.msg.as_str()).collect();
        assert_eq!(msgs, ["e2", "e3", "e4"]);
    }

    #[test]
    fn clear_empties() {
        let mut t = TraceRing::new(3);
        t.set_enabled(true);
        t.record(Nanos::ZERO, || "x".into());
        t.clear();
        assert!(t.entries().is_empty());
    }

    #[test]
    fn capacity_zero_clamped() {
        let mut t = TraceRing::new(0);
        t.set_enabled(true);
        t.record(Nanos::ZERO, || "x".into());
        assert_eq!(t.entries().len(), 1);
    }
}
