//! Statistics collectors used by the experiment harnesses.
//!
//! Three collectors cover everything the evaluation needs:
//!
//! - [`Summary`]: running count/mean/min/max plus exact quantiles (it keeps
//!   the samples; experiment sample counts are modest).
//! - [`Histogram`]: log-bucketed latency histogram for cheap, allocation-free
//!   accumulation on hot paths.
//! - [`TimeWeighted`]: time-weighted average of a piecewise-constant signal
//!   (e.g. queue depth, CPU share).

use crate::time::Nanos;

/// A running summary that retains samples for exact quantile queries.
///
/// # Examples
///
/// ```
/// use simcore::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.quantile(0.5), 2.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Records a duration sample in milliseconds.
    pub fn record_nanos_as_millis(&mut self, v: Nanos) {
        self.record(v.as_millis_f64());
    }

    /// Returns the number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns the arithmetic mean, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Returns the minimum sample, or 0.0 with no samples.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Returns the maximum sample, or 0.0 with no samples.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Returns the `q`-quantile (0.0..=1.0) using the nearest-rank method,
    /// or 0.0 with no samples. Read-only: selection runs on a scratch
    /// copy, so reporting code does not need a `mut` summary.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        let mut scratch = self.samples.clone();
        let (_, v, _) =
            scratch.select_nth_unstable_by(rank - 1, |a, b| a.partial_cmp(b).expect("NaN sample"));
        *v
    }

    /// Returns the population standard deviation, or 0.0 with < 2 samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }
}

/// A log-bucketed histogram of durations.
///
/// Buckets are powers of two in nanoseconds: bucket `i` covers
/// `[2^i, 2^(i+1))` ns, with bucket 0 covering `[0, 2)` ns.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    total: Nanos,
    max: Nanos,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            total: Nanos::ZERO,
            max: Nanos::ZERO,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration.
    pub fn record(&mut self, v: Nanos) {
        let idx = 63u32.saturating_sub(v.as_nanos().leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the mean duration, or zero with no samples.
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            self.total / self.count
        }
    }

    /// Returns the maximum recorded duration.
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Returns an upper bound on the `q`-quantile (the top edge of the
    /// bucket containing the `q`-th ranked sample).
    pub fn quantile_upper_bound(&self, q: f64) -> Nanos {
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let top = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return Nanos::from_nanos(top);
            }
        }
        self.max
    }
}

/// A time-weighted average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the collector
/// integrates `value × dt` between updates.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_time: Nanos,
    last_value: f64,
    integral: f64,
    start: Nanos,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        TimeWeighted {
            last_time: Nanos::ZERO,
            last_value: 0.0,
            integral: 0.0,
            start: Nanos::ZERO,
            started: false,
        }
    }
}

impl TimeWeighted {
    /// Creates a collector with an initial value of zero.
    pub fn new() -> Self {
        TimeWeighted::default()
    }

    /// Updates the signal to `value` at time `now`.
    pub fn set(&mut self, now: Nanos, value: f64) {
        if !self.started {
            self.start = now;
            self.started = true;
        } else {
            let dt = now.saturating_sub(self.last_time);
            self.integral += self.last_value * dt.as_secs_f64();
        }
        self.last_time = now;
        self.last_value = value;
    }

    /// Returns the time-weighted average over `[first set, now]`.
    pub fn average(&self, now: Nanos) -> f64 {
        if !self.started {
            return 0.0;
        }
        let dt = now.saturating_sub(self.last_time);
        let integral = self.integral + self.last_value * dt.as_secs_f64();
        let span = now.saturating_sub(self.start).as_secs_f64();
        if span <= 0.0 {
            self.last_value
        } else {
            integral / span
        }
    }
}

/// A monotonically increasing event counter with a rate helper.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter {
    n: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.n += 1;
    }

    /// Adds `k`.
    pub fn add(&mut self, k: u64) {
        self.n += k;
    }

    /// Returns the count.
    pub fn get(self) -> u64 {
        self.n
    }

    /// Returns the count divided by the elapsed time, in events/second.
    pub fn rate_per_sec(self, elapsed: Nanos) -> f64 {
        let s = elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.n as f64 / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert_eq!(s.quantile(0.25), 1.0);
    }

    #[test]
    fn summary_tail_quantiles_nearest_rank() {
        // 1000 distinct samples: nearest-rank p50/p99/p999 land on
        // predictable order statistics, and p999 > p99 once the tail
        // has enough resolution.
        let mut s = Summary::new();
        for v in (1..=1000u64).rev() {
            s.record(v as f64);
        }
        assert_eq!(s.quantile(0.5), 500.0);
        assert_eq!(s.quantile(0.99), 990.0);
        assert_eq!(s.quantile(0.999), 999.0);
        assert!(s.quantile(0.999) > s.quantile(0.99));
        // With a single sample every quantile collapses to it.
        let mut one = Summary::new();
        one.record(42.0);
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(one.quantile(q), 42.0);
        }
    }

    #[test]
    fn summary_stddev() {
        let mut s = Summary::new();
        s.record(2.0);
        assert_eq!(s.stddev(), 0.0);
        s.record(4.0);
        assert!((s.stddev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_mean_and_max() {
        let mut h = Histogram::new();
        h.record(Nanos::from_micros(10));
        h.record(Nanos::from_micros(30));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Nanos::from_micros(20));
        assert_eq!(h.max(), Nanos::from_micros(30));
    }

    #[test]
    fn histogram_quantile_bound_contains_samples() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(Nanos::from_micros(i));
        }
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p99 >= Nanos::from_micros(99));
        let p50 = h.quantile_upper_bound(0.5);
        assert!(p50 >= Nanos::from_micros(50));
        assert!(p50 <= Nanos::from_micros(128));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.quantile_upper_bound(0.5), Nanos::ZERO);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(Nanos::from_secs(0), 1.0);
        tw.set(Nanos::from_secs(1), 3.0);
        // 1.0 for 1s, then 3.0 for 1s => average 2.0 at t=2s.
        assert!((tw.average(Nanos::from_secs(2)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_before_start() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.average(Nanos::from_secs(1)), 0.0);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(500);
        c.incr();
        assert_eq!(c.get(), 501);
        assert!((c.rate_per_sec(Nanos::from_millis(500)) - 1002.0).abs() < 1e-9);
        assert_eq!(c.rate_per_sec(Nanos::ZERO), 0.0);
    }
}
