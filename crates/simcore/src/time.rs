//! Virtual time for the simulation: integer nanoseconds since simulation
//! start.
//!
//! All durations and instants in the workspace are [`Nanos`]. Using a single
//! integer type keeps arithmetic exact and the simulation deterministic;
//! floating-point time is never used on the simulation's hot paths.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A virtual instant or duration, in integer nanoseconds.
///
/// `Nanos` is used both as a point in virtual time (nanoseconds since the
/// start of the simulation) and as a duration. Arithmetic saturates on
/// subtraction (time never goes negative) and panics on addition overflow in
/// debug builds, which would indicate a runaway simulation.
///
/// # Examples
///
/// ```
/// use simcore::Nanos;
///
/// let t = Nanos::from_micros(105);
/// assert_eq!(t.as_nanos(), 105_000);
/// assert_eq!(t + Nanos::from_micros(5), Nanos::from_micros(110));
/// assert_eq!(Nanos::ZERO.saturating_sub(t), Nanos::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero instant / empty duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant; used as "never".
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a duration of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        Nanos(n)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of microseconds,
    /// rounding to the nearest nanosecond.
    ///
    /// Negative inputs are clamped to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((us * 1_000.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the value in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Subtracts, clamping at zero instead of underflowing.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Adds, clamping at [`Nanos::MAX`] instead of overflowing.
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Returns the smaller of two values.
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Returns the larger of two values.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative fraction, rounding to the
    /// nearest nanosecond.
    ///
    /// Negative fractions are clamped to zero.
    pub fn mul_f64(self, f: f64) -> Nanos {
        if f <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((self.0 as f64 * f).round() as u64)
    }

    /// Returns `self / rhs` as a fraction, or `0.0` if `rhs` is zero.
    pub fn ratio(self, rhs: Nanos) -> f64 {
        if rhs.0 == 0 {
            0.0
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.checked_add(rhs.0).expect("Nanos addition overflow"))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("Nanos subtraction underflow"),
        )
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(
            self.0
                .checked_mul(rhs)
                .expect("Nanos multiplication overflow"),
        )
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1_000));
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = Nanos::from_micros(338);
        let b = Nanos::from_micros(105);
        assert_eq!((a + b) - b, a);
        assert_eq!(a * 2, Nanos::from_micros(676));
        assert_eq!(a / 2, Nanos::from_micros(169));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Nanos::from_micros(1).saturating_sub(Nanos::from_secs(1)),
            Nanos::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Nanos::ZERO - Nanos::from_nanos(1);
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        assert_eq!(Nanos::from_nanos(100).mul_f64(0.5), Nanos::from_nanos(50));
        assert_eq!(Nanos::from_nanos(100).mul_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_nanos(3).mul_f64(0.5), Nanos::from_nanos(2));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(Nanos::from_secs(1).ratio(Nanos::ZERO), 0.0);
        assert!((Nanos::from_millis(300).ratio(Nanos::from_secs(1)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn from_micros_f64_rounds() {
        assert_eq!(Nanos::from_micros_f64(1.0005), Nanos::from_nanos(1001));
        assert_eq!(Nanos::from_micros_f64(-3.0), Nanos::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Nanos::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = [Nanos::from_micros(1), Nanos::from_micros(2)]
            .into_iter()
            .sum();
        assert_eq!(total, Nanos::from_micros(3));
    }

    #[test]
    fn min_max() {
        let a = Nanos::from_micros(5);
        let b = Nanos::from_micros(7);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
