//! Request-scoped causal spans (`rcspan`): per-request phase ledgers.
//!
//! The paper's central object is the *activity* — a unit of work that
//! crosses protection domains while staying bound to one resource
//! container. This module gives each such activity a [`RequestId`],
//! minted at packet classification, that rides alongside the container
//! binding through LRP dispatch, thread scheduling, syscalls, disk
//! queue/service, memory-reclaim stalls, and the transmit link. Each
//! span accumulates a **phase ledger**: an exhaustive partition of the
//! request's end-to-end latency into the nine [`Phase`]s.
//!
//! Conservation is by construction: a span is always in exactly one
//! phase, [`transition`] closes the current phase segment at the same
//! instant it opens the next, and clock skew between per-CPU clocks is
//! clamped so segments never run backwards. Therefore for every ledger
//! `end - start == phases.iter().sum()` holds exactly in integer
//! nanoseconds (property-tested at workspace level).
//!
//! Like [`crate::trace`], span recording is **off by default** and
//! zero-cost when disabled: every hook costs one thread-local branch and
//! recording is purely observational — enabling spans must never change
//! a run's virtual-time results. The session is thread-local because a
//! simulation is single-threaded by construction.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::time::Nanos;

/// Identifies one request activity. `0` means "no span"; real ids are
/// minted sequentially starting from 1.
pub type RequestId = u64;

/// Number of phases in the taxonomy (length of a ledger's array).
pub const NUM_PHASES: usize = 9;

/// The phase taxonomy: where a request's time is spent. Every
/// nanosecond of a request's end-to-end latency lands in exactly one
/// of these buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// SYN received, waiting in the listen socket's SYN queue (plus the
    /// handshake round-trip until the peer's ACK arrives).
    SynWait,
    /// Connection established, waiting in the accept queue for the
    /// application to call `accept`.
    AcceptWait,
    /// Work on behalf of the request is queued on a thread that is not
    /// currently running (runnable-wait plus queued-behind-other-work).
    CpuQueue,
    /// A CPU is executing work charged to the request.
    CpuRun,
    /// Waiting in the disk I/O scheduler queue.
    DiskQueue,
    /// The disk is servicing the request's transfer.
    DiskService,
    /// The executing thread is stalled paying for memory reclaim on the
    /// request's behalf.
    ReclaimStall,
    /// Response bytes queued in the transmit link scheduler.
    TxQueue,
    /// Response bytes occupying the wire.
    Wire,
}

impl Phase {
    /// All phases, in ledger-array order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::SynWait,
        Phase::AcceptWait,
        Phase::CpuQueue,
        Phase::CpuRun,
        Phase::DiskQueue,
        Phase::DiskService,
        Phase::ReclaimStall,
        Phase::TxQueue,
        Phase::Wire,
    ];

    /// Index into a ledger's `phases` array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable kebab-case label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            Phase::SynWait => "syn-wait",
            Phase::AcceptWait => "accept-wait",
            Phase::CpuQueue => "cpu-queue",
            Phase::CpuRun => "cpu-run",
            Phase::DiskQueue => "disk-queue",
            Phase::DiskService => "disk-service",
            Phase::ReclaimStall => "reclaim-stall",
            Phase::TxQueue => "tx-queue",
            Phase::Wire => "wire",
        }
    }
}

/// A span handle carried inside kernel work items. Besides the id it
/// records whether the work is a reclaim stall, so the CPU hooks know
/// to attribute the execution time to [`Phase::ReclaimStall`] rather
/// than [`Phase::CpuRun`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRef {
    /// The request the work belongs to (`0` = none).
    pub id: RequestId,
    /// `true` when the work models a memory-reclaim stall.
    pub stall: bool,
}

impl SpanRef {
    /// The "no span" handle.
    pub const NONE: SpanRef = SpanRef {
        id: 0,
        stall: false,
    };

    /// A plain (non-stall) handle for `id`.
    #[inline]
    pub fn of(id: RequestId) -> SpanRef {
        SpanRef { id, stall: false }
    }
}

/// How a span ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The full response reached the wire.
    Completed,
    /// Dropped before a connection existed (SYN eviction/expiry,
    /// admission refusal, queue overflow).
    Dropped,
    /// The connection was torn down mid-request (reset, OOM kill,
    /// client abandon).
    Aborted,
    /// Still open when the session stopped; force-closed at its last
    /// transition instant.
    Unfinished,
}

impl Outcome {
    /// Stable lower-case label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Dropped => "dropped",
            Outcome::Aborted => "aborted",
            Outcome::Unfinished => "unfinished",
        }
    }
}

/// The finished record of one request.
#[derive(Clone, Debug)]
pub struct SpanLedger {
    /// The minted request id.
    pub request: RequestId,
    /// Owning container at finish time.
    pub container: u64,
    /// Mint instant (SYN classification, or first byte for keep-alive
    /// follow-on requests).
    pub start: Nanos,
    /// Finish instant (last response byte off the wire, or the
    /// drop/abort instant).
    pub end: Nanos,
    /// Time spent in each phase, indexed by [`Phase::index`]. Sums to
    /// `end - start` exactly.
    pub phases: [Nanos; NUM_PHASES],
    /// The transition log: `(instant, phase entered)`, oldest first.
    /// The first entry is at `start`; segment `i` runs from `log[i].0`
    /// to `log[i + 1].0` (or to `end` for the last).
    pub log: Vec<(Nanos, Phase)>,
    /// How the request ended.
    pub outcome: Outcome,
}

impl SpanLedger {
    /// Sum of all phase durations (equals `end - start`).
    pub fn total(&self) -> Nanos {
        self.phases.iter().fold(Nanos::ZERO, |acc, p| acc + *p)
    }
}

/// The drained contents of a span session.
#[derive(Clone, Debug, Default)]
pub struct SpanBuffer {
    /// Finished ledgers, oldest first (the most recent `capacity`).
    pub ledgers: Vec<SpanLedger>,
    /// Spans minted while enabled.
    pub minted: u64,
    /// Spans finished (including force-closed unfinished ones).
    pub finished: u64,
    /// Finished ledgers evicted because the retention cap was reached.
    pub dropped: u64,
}

struct OpenSpan {
    container: u64,
    start: Nanos,
    phase: Phase,
    phase_since: Nanos,
    phases: [Nanos; NUM_PHASES],
    log: Vec<(Nanos, Phase)>,
}

struct Session {
    next_id: RequestId,
    // BTreeMap for deterministic force-close order in `stop`.
    open: BTreeMap<RequestId, OpenSpan>,
    ledgers: Vec<SpanLedger>,
    capacity: usize,
    minted: u64,
    finished: u64,
    dropped: u64,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SESSION: RefCell<Option<Session>> = const { RefCell::new(None) };
}

/// Returns `true` if span recording is enabled on this thread.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Starts a span session retaining at most `capacity` finished ledgers.
/// Any previous session's state is discarded.
pub fn start(capacity: usize) {
    SESSION.with(|s| {
        *s.borrow_mut() = Some(Session {
            next_id: 1,
            open: BTreeMap::new(),
            ledgers: Vec::new(),
            capacity: capacity.max(1),
            minted: 0,
            finished: 0,
            dropped: 0,
        });
    });
    ENABLED.with(|e| e.set(true));
}

/// Stops the session and returns everything recorded. Spans still open
/// are force-closed at their last transition instant with
/// [`Outcome::Unfinished`]. Idempotent: a second call returns an empty
/// buffer.
pub fn stop() -> SpanBuffer {
    ENABLED.with(|e| e.set(false));
    SESSION.with(|s| match s.borrow_mut().take() {
        Some(mut sess) => {
            let open = std::mem::take(&mut sess.open);
            for (id, span) in open {
                let at = span.phase_since;
                sess.close(id, span, at, Outcome::Unfinished);
            }
            SpanBuffer {
                ledgers: sess.ledgers,
                minted: sess.minted,
                finished: sess.finished,
                dropped: sess.dropped,
            }
        }
        None => SpanBuffer::default(),
    })
}

/// A span session detached from the thread-local slot by [`pause`], so a
/// different session can run in the meantime.
pub struct PausedSpans {
    enabled: bool,
    session: Option<Session>,
}

/// Detaches the current session, leaving span recording disabled until
/// [`resume`] or [`start`] is called. Open spans stay open.
pub fn pause() -> PausedSpans {
    PausedSpans {
        enabled: ENABLED.with(|e| e.replace(false)),
        session: SESSION.with(|s| s.borrow_mut().take()),
    }
}

/// Reinstates a session captured by [`pause`], restoring its enabled flag
/// exactly as it was.
pub fn resume(paused: PausedSpans) {
    SESSION.with(|s| *s.borrow_mut() = paused.session);
    ENABLED.with(|e| e.set(paused.enabled));
}

impl Session {
    fn close(&mut self, id: RequestId, mut span: OpenSpan, at: Nanos, outcome: Outcome) {
        let end = at.max(span.phase_since);
        span.phases[span.phase.index()] += end - span.phase_since;
        self.finished += 1;
        if self.ledgers.len() == self.capacity {
            self.ledgers.remove(0);
            self.dropped += 1;
        }
        self.ledgers.push(SpanLedger {
            request: id,
            container: span.container,
            start: span.start,
            end,
            phases: span.phases,
            log: span.log,
            outcome,
        });
    }
}

/// Mints a new span starting in `phase` at `at`, owned by `container`.
/// Returns `0` when disabled.
pub fn mint(at: Nanos, container: u64, phase: Phase) -> RequestId {
    if !enabled() {
        return 0;
    }
    SESSION.with(|s| {
        let mut b = s.borrow_mut();
        let Some(sess) = b.as_mut() else { return 0 };
        let id = sess.next_id;
        sess.next_id += 1;
        sess.minted += 1;
        sess.open.insert(
            id,
            OpenSpan {
                container,
                start: at,
                phase,
                phase_since: at,
                phases: [Nanos::ZERO; NUM_PHASES],
                log: vec![(at, phase)],
            },
        );
        id
    })
}

/// Returns `true` if `id` names a currently-open span.
#[inline]
pub fn is_open(id: RequestId) -> bool {
    if id == 0 || !enabled() {
        return false;
    }
    SESSION.with(|s| {
        s.borrow()
            .as_ref()
            .is_some_and(|sess| sess.open.contains_key(&id))
    })
}

/// Reassigns the span's owning container (e.g. when a connection moves
/// from the listener's principal to a per-connection container).
pub fn set_container(id: RequestId, container: u64) {
    if id == 0 || !enabled() {
        return;
    }
    SESSION.with(|s| {
        if let Some(span) = s
            .borrow_mut()
            .as_mut()
            .and_then(|sess| sess.open.get_mut(&id))
        {
            span.container = container;
        }
    });
}

/// Moves the span into `phase` at `at`, closing the current phase
/// segment. `at` is clamped to the segment start so per-CPU clock skew
/// can never produce a negative segment; re-entering the current phase
/// is a no-op. Unknown/closed ids are ignored.
pub fn transition(id: RequestId, phase: Phase, at: Nanos) {
    if id == 0 || !enabled() {
        return;
    }
    SESSION.with(|s| {
        if let Some(span) = s
            .borrow_mut()
            .as_mut()
            .and_then(|sess| sess.open.get_mut(&id))
        {
            apply_transition(span, phase, at);
        }
    });
}

fn apply_transition(span: &mut OpenSpan, phase: Phase, at: Nanos) {
    if span.phase == phase {
        return;
    }
    let at = at.max(span.phase_since);
    span.phases[span.phase.index()] += at - span.phase_since;
    span.phase = phase;
    span.phase_since = at;
    span.log.push((at, phase));
}

/// CPU-side transition: applies only while the span is in a CPU-bound
/// phase ([`Phase::CpuQueue`], [`Phase::CpuRun`], or
/// [`Phase::ReclaimStall`]). Stray queued work (e.g. syscall-cost
/// accounting items completing after a disk submit) therefore cannot
/// yank a request out of its disk/tx/wire phases.
pub fn cpu_transition(id: RequestId, phase: Phase, at: Nanos) {
    if id == 0 || !enabled() {
        return;
    }
    SESSION.with(|s| {
        if let Some(span) = s
            .borrow_mut()
            .as_mut()
            .and_then(|sess| sess.open.get_mut(&id))
        {
            if matches!(
                span.phase,
                Phase::CpuQueue | Phase::CpuRun | Phase::ReclaimStall
            ) {
                apply_transition(span, phase, at);
            }
        }
    });
}

/// Finishes the span at `at` with `outcome`, closing its final phase
/// segment. Unknown/closed ids are ignored (finish is idempotent).
pub fn finish(id: RequestId, at: Nanos, outcome: Outcome) {
    if id == 0 || !enabled() {
        return;
    }
    SESSION.with(|s| {
        let mut b = s.borrow_mut();
        let Some(sess) = b.as_mut() else { return };
        if let Some(span) = sess.open.remove(&id) {
            sess.close(id, span, at, outcome);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let _ = stop();
        assert_eq!(mint(Nanos::ZERO, 1, Phase::SynWait), 0);
        transition(1, Phase::CpuRun, Nanos::from_micros(1));
        finish(1, Nanos::from_micros(2), Outcome::Completed);
        assert!(!is_open(1));
        let buf = stop();
        assert!(buf.ledgers.is_empty());
        assert_eq!(buf.minted, 0);
    }

    #[test]
    fn phases_partition_end_to_end_latency() {
        start(16);
        let id = mint(Nanos::from_micros(10), 7, Phase::SynWait);
        assert!(is_open(id));
        transition(id, Phase::AcceptWait, Nanos::from_micros(15));
        transition(id, Phase::CpuQueue, Nanos::from_micros(18));
        transition(id, Phase::CpuRun, Nanos::from_micros(20));
        transition(id, Phase::Wire, Nanos::from_micros(29));
        finish(id, Nanos::from_micros(32), Outcome::Completed);
        let buf = stop();
        assert_eq!(buf.ledgers.len(), 1);
        let l = &buf.ledgers[0];
        assert_eq!(l.outcome, Outcome::Completed);
        assert_eq!(l.end - l.start, Nanos::from_micros(22));
        assert_eq!(l.total(), l.end - l.start);
        assert_eq!(l.phases[Phase::SynWait.index()], Nanos::from_micros(5));
        assert_eq!(l.phases[Phase::AcceptWait.index()], Nanos::from_micros(3));
        assert_eq!(l.phases[Phase::CpuQueue.index()], Nanos::from_micros(2));
        assert_eq!(l.phases[Phase::CpuRun.index()], Nanos::from_micros(9));
        assert_eq!(l.phases[Phase::Wire.index()], Nanos::from_micros(3));
        assert_eq!(l.log.len(), 5);
    }

    #[test]
    fn skewed_clocks_are_clamped_and_conserved() {
        start(16);
        let id = mint(Nanos::from_micros(10), 1, Phase::CpuQueue);
        // A transition stamped *earlier* than the current segment start
        // (cross-CPU skew) is clamped: zero-width segment, no panic.
        transition(id, Phase::CpuRun, Nanos::from_micros(8));
        transition(id, Phase::CpuQueue, Nanos::from_micros(12));
        finish(id, Nanos::from_micros(9), Outcome::Completed);
        let buf = stop();
        let l = &buf.ledgers[0];
        assert_eq!(l.total(), l.end - l.start);
        assert_eq!(l.end, Nanos::from_micros(12));
    }

    #[test]
    fn cpu_transition_cannot_leave_io_phases() {
        start(16);
        let id = mint(Nanos::from_micros(1), 1, Phase::CpuRun);
        transition(id, Phase::DiskQueue, Nanos::from_micros(2));
        // A stray queued work item completing must not yank the span out
        // of the disk phase...
        cpu_transition(id, Phase::CpuQueue, Nanos::from_micros(3));
        let buf_peek = SESSION.with(|s| s.borrow().as_ref().unwrap().open[&id].phase);
        assert_eq!(buf_peek, Phase::DiskQueue);
        // ...but a forced transition (the disk upcall) can.
        transition(id, Phase::CpuQueue, Nanos::from_micros(4));
        cpu_transition(id, Phase::CpuRun, Nanos::from_micros(5));
        finish(id, Nanos::from_micros(6), Outcome::Completed);
        let buf = stop();
        let l = &buf.ledgers[0];
        assert_eq!(l.total(), l.end - l.start);
        assert_eq!(l.phases[Phase::DiskQueue.index()], Nanos::from_micros(2));
        assert_eq!(l.phases[Phase::CpuRun.index()], Nanos::from_micros(2));
    }

    #[test]
    fn stop_force_closes_open_spans_as_unfinished() {
        start(16);
        let a = mint(Nanos::from_micros(1), 1, Phase::SynWait);
        let b = mint(Nanos::from_micros(2), 2, Phase::CpuQueue);
        transition(b, Phase::CpuRun, Nanos::from_micros(5));
        let buf = stop();
        assert_eq!(buf.minted, 2);
        assert_eq!(buf.finished, 2);
        assert_eq!(buf.ledgers.len(), 2);
        for l in &buf.ledgers {
            assert_eq!(l.outcome, Outcome::Unfinished);
            assert_eq!(l.total(), l.end - l.start);
        }
        assert_eq!(buf.ledgers[0].request, a);
        assert_eq!(buf.ledgers[1].request, b);
    }

    #[test]
    fn retention_cap_evicts_and_counts() {
        start(2);
        for i in 0..4u64 {
            let id = mint(Nanos::from_micros(i), 1, Phase::CpuRun);
            finish(id, Nanos::from_micros(i + 1), Outcome::Completed);
        }
        let buf = stop();
        assert_eq!(buf.ledgers.len(), 2);
        assert_eq!(buf.minted, 4);
        assert_eq!(buf.finished, 4);
        assert_eq!(buf.dropped, 2);
        assert_eq!(buf.ledgers[0].request, 3);
        assert_eq!(buf.ledgers[1].request, 4);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            [
                "syn-wait",
                "accept-wait",
                "cpu-queue",
                "cpu-run",
                "disk-queue",
                "disk-service",
                "reclaim-stall",
                "tx-queue",
                "wire"
            ]
        );
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
