//! Typed index arenas with generation-checked ids.
//!
//! Kernel objects (containers, threads, sockets, connections) are stored in
//! [`Arena`]s and referred to by small copyable ids. Generations detect
//! use-after-free: destroying a slot and reusing it bumps the generation, so
//! stale ids are rejected instead of silently aliasing a new object. This is
//! the safe-Rust moral equivalent of the kernel's "descriptor points at a
//! recycled object" bug class.

use std::fmt;
use std::marker::PhantomData;

/// A generation-checked index into an [`Arena`].
///
/// `Idx<T>` is parameterized by the element type so that, for example, a
/// container id cannot be used where a thread id is expected.
pub struct Idx<T> {
    slot: u32,
    generation: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Idx<T> {
    /// Creates an id from raw parts; used only by [`Arena`] and tests.
    pub(crate) fn from_parts(slot: u32, generation: u32) -> Self {
        Idx {
            slot,
            generation,
            _marker: PhantomData,
        }
    }

    /// Returns the raw slot number (stable for the life of the object).
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// Returns the generation of this id.
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Returns a compact `u64` encoding, useful as a map key or trace tag.
    pub fn as_u64(self) -> u64 {
        ((self.generation as u64) << 32) | self.slot as u64
    }
}

impl<T> Clone for Idx<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Idx<T> {}
impl<T> PartialEq for Idx<T> {
    fn eq(&self, other: &Self) -> bool {
        self.slot == other.slot && self.generation == other.generation
    }
}
impl<T> Eq for Idx<T> {}
impl<T> std::hash::Hash for Idx<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.slot.hash(state);
        self.generation.hash(state);
    }
}
impl<T> PartialOrd for Idx<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Idx<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.slot, self.generation).cmp(&(other.slot, other.generation))
    }
}
impl<T> fmt::Debug for Idx<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}g{}", self.slot, self.generation)
    }
}

enum Slot<T> {
    Vacant {
        next_free: Option<u32>,
        generation: u32,
    },
    Occupied {
        generation: u32,
        value: T,
    },
}

/// A generational arena: O(1) insert, remove, and lookup with stable ids.
///
/// # Examples
///
/// ```
/// use simcore::Arena;
///
/// let mut arena: Arena<&str> = Arena::new();
/// let a = arena.insert("alpha");
/// let b = arena.insert("beta");
/// assert_eq!(arena[a], "alpha");
/// assert_eq!(arena.remove(b), Some("beta"));
/// assert!(arena.get(b).is_none());
/// ```
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// Returns the number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the arena holds no live elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value and returns its id.
    pub fn insert(&mut self, value: T) -> Idx<T> {
        self.len += 1;
        match self.free_head {
            Some(slot) => {
                let (next_free, generation) = match &self.slots[slot as usize] {
                    Slot::Vacant {
                        next_free,
                        generation,
                    } => (*next_free, *generation),
                    Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
                };
                self.free_head = next_free;
                self.slots[slot as usize] = Slot::Occupied { generation, value };
                Idx::from_parts(slot, generation)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena slot overflow");
                self.slots.push(Slot::Occupied {
                    generation: 0,
                    value,
                });
                Idx::from_parts(slot, 0)
            }
        }
    }

    /// Removes the element with id `idx`, returning it if it was live.
    pub fn remove(&mut self, idx: Idx<T>) -> Option<T> {
        let slot = self.slots.get_mut(idx.slot as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == idx.generation => {
                let generation = *generation;
                let old = std::mem::replace(
                    slot,
                    Slot::Vacant {
                        next_free: self.free_head,
                        generation: generation.wrapping_add(1),
                    },
                );
                self.free_head = Some(idx.slot);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Returns a reference to the element with id `idx`, if live.
    pub fn get(&self, idx: Idx<T>) -> Option<&T> {
        match self.slots.get(idx.slot as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == idx.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Returns a mutable reference to the element with id `idx`, if live.
    pub fn get_mut(&mut self, idx: Idx<T>) -> Option<&mut T> {
        match self.slots.get_mut(idx.slot as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == idx.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Returns `true` if `idx` refers to a live element.
    pub fn contains(&self, idx: Idx<T>) -> bool {
        self.get(idx).is_some()
    }

    /// Iterates over `(id, &element)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx<T>, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, s)| match s {
                Slot::Occupied { generation, value } => {
                    Some((Idx::from_parts(slot as u32, *generation), value))
                }
                Slot::Vacant { .. } => None,
            })
    }

    /// Iterates over `(id, &mut element)` pairs in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Idx<T>, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(slot, s)| match s {
                Slot::Occupied { generation, value } => {
                    Some((Idx::from_parts(slot as u32, *generation), value))
                }
                Slot::Vacant { .. } => None,
            })
    }

    /// Returns the ids of all live elements, in slot order.
    pub fn ids(&self) -> Vec<Idx<T>> {
        self.iter().map(|(id, _)| id).collect()
    }
}

impl<T> std::ops::Index<Idx<T>> for Arena<T> {
    type Output = T;
    fn index(&self, idx: Idx<T>) -> &T {
        self.get(idx).expect("stale or invalid arena id")
    }
}

impl<T> std::ops::IndexMut<Idx<T>> for Arena<T> {
    fn index_mut(&mut self, idx: Idx<T>) -> &mut T {
        self.get_mut(idx).expect("stale or invalid arena id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Arena::new();
        let x = a.insert(10);
        let y = a.insert(20);
        assert_eq!(a.len(), 2);
        assert_eq!(a[x], 10);
        assert_eq!(a.remove(y), Some(20));
        assert_eq!(a.len(), 1);
        assert!(a.get(y).is_none());
    }

    #[test]
    fn stale_id_rejected_after_reuse() {
        let mut a = Arena::new();
        let x = a.insert("old");
        assert_eq!(a.remove(x), Some("old"));
        let y = a.insert("new");
        // The slot is reused but the generation differs.
        assert_eq!(y.slot(), x.slot());
        assert_ne!(y.generation(), x.generation());
        assert!(a.get(x).is_none());
        assert_eq!(a[y], "new");
        assert_eq!(a.remove(x), None);
    }

    #[test]
    fn double_remove_is_none() {
        let mut a = Arena::new();
        let x = a.insert(1);
        assert_eq!(a.remove(x), Some(1));
        assert_eq!(a.remove(x), None);
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn iter_skips_vacant() {
        let mut a = Arena::new();
        let ids: Vec<_> = (0..5).map(|i| a.insert(i)).collect();
        a.remove(ids[1]);
        a.remove(ids[3]);
        let vals: Vec<i32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![0, 2, 4]);
        assert_eq!(a.ids().len(), 3);
    }

    #[test]
    fn free_list_reuses_lifo() {
        let mut a = Arena::new();
        let ids: Vec<_> = (0..3).map(|i| a.insert(i)).collect();
        a.remove(ids[0]);
        a.remove(ids[2]);
        let n1 = a.insert(10);
        let n2 = a.insert(11);
        assert_eq!(n1.slot(), 2);
        assert_eq!(n2.slot(), 0);
    }

    #[test]
    fn iter_mut_mutates() {
        let mut a = Arena::new();
        a.insert(1);
        a.insert(2);
        for (_, v) in a.iter_mut() {
            *v *= 10;
        }
        let vals: Vec<i32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![10, 20]);
    }

    #[test]
    fn idx_u64_encoding_unique() {
        let mut a = Arena::new();
        let x = a.insert(());
        a.remove(x);
        let y = a.insert(());
        assert_ne!(x.as_u64(), y.as_u64());
    }
}
