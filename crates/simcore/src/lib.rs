//! Deterministic discrete-event simulation substrate.
//!
//! `simcore` provides the building blocks shared by every other crate in the
//! resource-containers workspace:
//!
//! - [`time`]: a virtual clock measured in integer nanoseconds ([`Nanos`])
//!   with duration arithmetic that cannot silently overflow or go negative.
//! - [`event`]: a deterministic event queue ([`EventQueue`]) with stable
//!   FIFO ordering for events scheduled at the same instant.
//! - [`arena`]: typed index arenas ([`Arena`]) with generation-checked ids,
//!   used for containers, threads, sockets, and connections.
//! - [`rng`]: a seedable random-number wrapper ([`SimRng`]) so that an
//!   entire simulation is reproducible from a single `u64` seed.
//! - [`stats`]: histograms, running summaries, and time-weighted averages
//!   used by the experiment harnesses.
//! - [`trace`]: typed, zero-cost-when-disabled kernel tracing — a bounded
//!   ring of structured [`TraceEvent`]s every subsystem records its
//!   decision points into.
//! - [`span`]: request-scoped causal spans (`rcspan`) — per-request
//!   phase ledgers whose nine phases partition end-to-end latency
//!   exactly; zero-cost when disabled like [`trace`].
//! - [`fault`]: seeded, virtual-time fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]) — deterministic packet loss, disk errors, and
//!   client misbehaviour drawn from independent per-category streams.
//!
//! Nothing in this crate knows about resource containers; it is a pure
//! simulation toolkit.

pub mod arena;
pub mod event;
pub mod fault;
pub mod rng;
pub mod slab;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;

pub use arena::{Arena, Idx};
pub use event::{EventQueue, RefQueue};
pub use fault::{ClientFault, DiskFault, FaultCounts, FaultInjector, FaultPlan, NetFault};
pub use rng::SimRng;
pub use span::{Outcome, Phase, RequestId, SpanBuffer, SpanLedger, SpanRef};
pub use stats::{Counter, Histogram, Summary, TimeWeighted};
pub use time::Nanos;
pub use trace::{ChargeKind, TraceBuffer, TraceEvent, TraceEventKind, NO_CONTAINER};
