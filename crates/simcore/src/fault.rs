//! `simfault`: seeded, virtual-time fault injection.
//!
//! A [`FaultPlan`] is pure data: per-category injection probabilities
//! (packet loss/corruption/delay, disk errors/latency spikes, client
//! misbehaviour) plus optional burst [`FaultWindow`]s that scale every
//! probability inside a virtual-time interval. The plan travels on the
//! kernel configuration; each consumer builds a [`FaultInjector`] from
//! it and draws decisions at its own injection points.
//!
//! Determinism contract: the injector derives one independent
//! [`SimRng`] stream per category from `plan.seed`, and every draw
//! consumes a fixed number of variates from its own stream, so the
//! sequence of injected faults is a pure function of `(seed, plan,
//! injection-point call order)`. Two runs with the same seed and plan
//! are byte-identical; changing the seed perturbs only the injections,
//! never the rest of the simulation's randomness (which lives in other
//! streams).
//!
//! The injector never touches global state and emits no trace events
//! itself — the *call sites* (kernel receive path, disk submit path,
//! workload clients) emit `TraceEventKind::Fault*` so rctrace shows
//! exactly what was perturbed, attributed where the fault landed.

use crate::rng::SimRng;
use crate::time::Nanos;

/// A virtual-time interval during which all fault probabilities are
/// multiplied by `factor` — the building block for burst floods and
/// brown-outs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// Start of the window (inclusive).
    pub start: Nanos,
    /// End of the window (exclusive).
    pub end: Nanos,
    /// Probability multiplier while the window is active.
    pub factor: f64,
}

/// A deterministic fault schedule: seeded probabilities per category
/// plus burst windows. All probabilities default to zero (no faults);
/// an all-default plan is behaviourally inert.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every injector stream is derived.
    pub seed: u64,
    /// Per-packet probability of silent loss before the stack sees it.
    pub pkt_drop: f64,
    /// Per-packet probability of payload corruption.
    pub pkt_corrupt: f64,
    /// Per-packet probability of an in-flight delay (which also reorders
    /// the packet past later arrivals).
    pub pkt_delay: f64,
    /// Upper bound of the uniform per-packet delay.
    pub pkt_delay_max: Nanos,
    /// Per-request probability that a disk request fails with an I/O
    /// error (service time is still consumed and charged).
    pub disk_error: f64,
    /// Per-request probability of a latency spike.
    pub disk_spike: f64,
    /// Upper bound of the uniform disk latency spike.
    pub disk_spike_max: Nanos,
    /// Per-request probability that a client goes silent mid-request.
    pub client_abandon: f64,
    /// Per-request probability that a client sends a malformed request.
    pub client_malformed: f64,
    /// Per-request probability that a client transmits slowly.
    pub client_slow: f64,
    /// Upper bound of the uniform slow-client transmission delay.
    pub client_slow_max: Nanos,
    /// Burst windows multiplying every probability while active.
    pub windows: Vec<FaultWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA_0175,
            pkt_drop: 0.0,
            pkt_corrupt: 0.0,
            pkt_delay: 0.0,
            pkt_delay_max: Nanos::ZERO,
            disk_error: 0.0,
            disk_spike: 0.0,
            disk_spike_max: Nanos::ZERO,
            client_abandon: 0.0,
            client_malformed: 0.0,
            client_slow: 0.0,
            client_slow_max: Nanos::ZERO,
            windows: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan with every probability zero and the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the network fault probabilities.
    pub fn with_packet_faults(
        mut self,
        drop: f64,
        corrupt: f64,
        delay: f64,
        delay_max: Nanos,
    ) -> Self {
        self.pkt_drop = drop;
        self.pkt_corrupt = corrupt;
        self.pkt_delay = delay;
        self.pkt_delay_max = delay_max;
        self
    }

    /// Sets the disk fault probabilities.
    pub fn with_disk_faults(mut self, error: f64, spike: f64, spike_max: Nanos) -> Self {
        self.disk_error = error;
        self.disk_spike = spike;
        self.disk_spike_max = spike_max;
        self
    }

    /// Sets the client fault probabilities.
    pub fn with_client_faults(
        mut self,
        abandon: f64,
        malformed: f64,
        slow: f64,
        slow_max: Nanos,
    ) -> Self {
        self.client_abandon = abandon;
        self.client_malformed = malformed;
        self.client_slow = slow;
        self.client_slow_max = slow_max;
        self
    }

    /// Adds a burst window.
    pub fn with_window(mut self, start: Nanos, end: Nanos, factor: f64) -> Self {
        self.windows.push(FaultWindow { start, end, factor });
        self
    }

    /// The probability multiplier in effect at `now` (product of all
    /// active windows; 1.0 outside every window).
    pub fn factor_at(&self, now: Nanos) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.start <= now && now < w.end)
            .map(|w| w.factor)
            .product()
    }

    fn net_enabled(&self) -> bool {
        self.pkt_drop > 0.0 || self.pkt_corrupt > 0.0 || self.pkt_delay > 0.0
    }

    fn disk_enabled(&self) -> bool {
        self.disk_error > 0.0 || self.disk_spike > 0.0
    }

    fn client_enabled(&self) -> bool {
        self.client_abandon > 0.0 || self.client_malformed > 0.0 || self.client_slow > 0.0
    }
}

/// A network fault decision for one inbound packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Lose the packet silently.
    Drop,
    /// Corrupt the payload (the packet still arrives).
    Corrupt,
    /// Deliver the packet after the extra delay.
    Delay(Nanos),
}

/// A disk fault decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// The request fails with an I/O error after consuming (and
    /// charging) its full service time.
    Error,
    /// The request succeeds after the extra service time.
    Spike(Nanos),
}

/// A client fault decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientFault {
    /// The client goes silent (its request, if any, is never sent).
    Abandon,
    /// The client sends a syntactically invalid request.
    Malformed,
    /// The client's request transmission is delayed.
    Slow(Nanos),
}

/// Counts of faults actually injected, per category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Packets silently lost.
    pub pkt_dropped: u64,
    /// Packets corrupted.
    pub pkt_corrupted: u64,
    /// Packets delayed.
    pub pkt_delayed: u64,
    /// Disk requests failed.
    pub disk_errors: u64,
    /// Disk requests spiked.
    pub disk_spikes: u64,
    /// Client abandons.
    pub client_abandons: u64,
    /// Malformed client requests.
    pub client_malformed: u64,
    /// Slowed client requests.
    pub client_slowed: u64,
}

impl FaultCounts {
    /// Total injections across every category.
    pub fn total(&self) -> u64 {
        self.pkt_dropped
            + self.pkt_corrupted
            + self.pkt_delayed
            + self.disk_errors
            + self.disk_spikes
            + self.client_abandons
            + self.client_malformed
            + self.client_slowed
    }
}

/// Draws fault decisions from a [`FaultPlan`] using one independent
/// seeded stream per category, so adding draws in one category never
/// perturbs another.
pub struct FaultInjector {
    plan: FaultPlan,
    net_rng: SimRng,
    disk_rng: SimRng,
    client_rng: SimRng,
    counts: FaultCounts,
}

impl FaultInjector {
    /// Builds an injector for `plan`. Streams are derived from
    /// `plan.seed` with fixed per-category tweaks.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            plan: plan.clone(),
            net_rng: SimRng::seed_from(plan.seed ^ 0x6E65_7421),
            disk_rng: SimRng::seed_from(plan.seed ^ 0x6469_736B),
            client_rng: SimRng::seed_from(plan.seed ^ 0x636C_6E74),
            counts: FaultCounts::default(),
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts of faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Draws the network fault decision for a packet arriving at `now`.
    /// Consumes no randomness when every network probability is zero.
    pub fn net_fault(&mut self, now: Nanos) -> Option<NetFault> {
        if !self.plan.net_enabled() {
            return None;
        }
        let f = self.plan.factor_at(now);
        let x = self.net_rng.uniform_f64();
        let p_drop = (self.plan.pkt_drop * f).min(1.0);
        let p_corrupt = (self.plan.pkt_corrupt * f).min(1.0);
        let p_delay = (self.plan.pkt_delay * f).min(1.0);
        if x < p_drop {
            self.counts.pkt_dropped += 1;
            Some(NetFault::Drop)
        } else if x < p_drop + p_corrupt {
            self.counts.pkt_corrupted += 1;
            Some(NetFault::Corrupt)
        } else if x < p_drop + p_corrupt + p_delay {
            self.counts.pkt_delayed += 1;
            let d = self
                .net_rng
                .uniform_duration(Nanos::from_nanos(1), self.plan.pkt_delay_max);
            Some(NetFault::Delay(d))
        } else {
            None
        }
    }

    /// Draws the disk fault decision for a request submitted at `now`.
    pub fn disk_fault(&mut self, now: Nanos) -> Option<DiskFault> {
        if !self.plan.disk_enabled() {
            return None;
        }
        let f = self.plan.factor_at(now);
        let x = self.disk_rng.uniform_f64();
        let p_error = (self.plan.disk_error * f).min(1.0);
        let p_spike = (self.plan.disk_spike * f).min(1.0);
        if x < p_error {
            self.counts.disk_errors += 1;
            Some(DiskFault::Error)
        } else if x < p_error + p_spike {
            self.counts.disk_spikes += 1;
            let d = self
                .disk_rng
                .uniform_duration(Nanos::from_nanos(1), self.plan.disk_spike_max);
            Some(DiskFault::Spike(d))
        } else {
            None
        }
    }

    /// Draws the client fault decision for a request issued at `now`.
    pub fn client_fault(&mut self, now: Nanos) -> Option<ClientFault> {
        if !self.plan.client_enabled() {
            return None;
        }
        let f = self.plan.factor_at(now);
        let x = self.client_rng.uniform_f64();
        let p_abandon = (self.plan.client_abandon * f).min(1.0);
        let p_malformed = (self.plan.client_malformed * f).min(1.0);
        let p_slow = (self.plan.client_slow * f).min(1.0);
        if x < p_abandon {
            self.counts.client_abandons += 1;
            Some(ClientFault::Abandon)
        } else if x < p_abandon + p_malformed {
            self.counts.client_malformed += 1;
            Some(ClientFault::Malformed)
        } else if x < p_abandon + p_malformed + p_slow {
            self.counts.client_slowed += 1;
            let d = self
                .client_rng
                .uniform_duration(Nanos::from_nanos(1), self.plan.client_slow_max);
            Some(ClientFault::Slow(d))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with_packet_faults(0.1, 0.1, 0.1, Nanos::from_micros(100))
            .with_disk_faults(0.1, 0.1, Nanos::from_millis(1))
            .with_client_faults(0.1, 0.1, 0.1, Nanos::from_micros(500))
    }

    #[test]
    fn default_plan_injects_nothing_and_draws_nothing() {
        let mut inj = FaultInjector::new(&FaultPlan::default());
        for i in 0..1000 {
            let now = Nanos::from_micros(i);
            assert_eq!(inj.net_fault(now), None);
            assert_eq!(inj.disk_fault(now), None);
            assert_eq!(inj.client_fault(now), None);
        }
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = noisy_plan(42);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for i in 0..2000 {
            let now = Nanos::from_micros(i);
            assert_eq!(a.net_fault(now), b.net_fault(now));
            assert_eq!(a.disk_fault(now), b.disk_fault(now));
            assert_eq!(a.client_fault(now), b.client_fault(now));
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "10% probs must fire in 6000 draws");
    }

    #[test]
    fn different_seed_different_injection_sequence() {
        let mut a = FaultInjector::new(&noisy_plan(1));
        let mut b = FaultInjector::new(&noisy_plan(2));
        let mut differs = false;
        for i in 0..2000 {
            let now = Nanos::from_micros(i);
            if a.net_fault(now) != b.net_fault(now) {
                differs = true;
            }
        }
        assert!(differs, "distinct seeds must produce distinct sequences");
    }

    #[test]
    fn categories_use_independent_streams() {
        let plan = noisy_plan(7);
        // Interleaving disk draws must not change the net sequence.
        let mut pure = FaultInjector::new(&plan);
        let mut mixed = FaultInjector::new(&plan);
        for i in 0..500 {
            let now = Nanos::from_micros(i);
            let want = pure.net_fault(now);
            let _ = mixed.disk_fault(now);
            assert_eq!(mixed.net_fault(now), want);
        }
    }

    #[test]
    fn windows_scale_probabilities() {
        // Zero base probability, but a window multiplying by anything
        // still yields zero; a window on a nonzero base boosts it.
        let plan = FaultPlan::new(3)
            .with_packet_faults(0.01, 0.0, 0.0, Nanos::ZERO)
            .with_window(Nanos::from_millis(10), Nanos::from_millis(20), 100.0);
        assert_eq!(plan.factor_at(Nanos::from_millis(5)), 1.0);
        assert_eq!(plan.factor_at(Nanos::from_millis(15)), 100.0);
        assert_eq!(plan.factor_at(Nanos::from_millis(20)), 1.0);

        let mut inj = FaultInjector::new(&plan);
        let mut in_window = 0u64;
        let mut outside = 0u64;
        for i in 0..1000 {
            if inj.net_fault(Nanos::from_millis(15)).is_some() {
                in_window += 1;
            }
            let _ = i;
        }
        let mut inj2 = FaultInjector::new(&plan);
        for _ in 0..1000 {
            if inj2.net_fault(Nanos::from_millis(5)).is_some() {
                outside += 1;
            }
        }
        assert!(
            in_window > outside + 100,
            "window must amplify: {in_window} vs {outside}"
        );
    }

    #[test]
    fn delay_draws_bounded_by_max() {
        let plan = FaultPlan::new(9).with_packet_faults(0.0, 0.0, 1.0, Nanos::from_micros(50));
        let mut inj = FaultInjector::new(&plan);
        for i in 0..200 {
            match inj.net_fault(Nanos::from_micros(i)) {
                Some(NetFault::Delay(d)) => {
                    assert!(d >= Nanos::from_nanos(1) && d <= Nanos::from_micros(50));
                }
                other => panic!("p=1.0 must always delay, got {other:?}"),
            }
        }
    }
}
