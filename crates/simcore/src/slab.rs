//! Dense slab storage for simulation hot state.
//!
//! Per-thread, per-process, and per-connection bookkeeping used to live
//! in `BTreeMap`/`HashMap` nodes — a pointer chase and a hash (or a tree
//! walk) on every event. Task and process ids are handed out
//! monotonically from 1 and never reused, so an [`IdSlab`] stores their
//! state in a plain `Vec` indexed directly by id: O(1) access with no
//! hashing, and iteration in ascending id order — the same order
//! `BTreeMap` iteration produced, which the deterministic goldens depend
//! on. The id types themselves live in higher crates (`sched`, `simos`),
//! which implement [`SlabKey`] for them.
//!
//! Socket ids *are* reused (the net stack's arena recycles slots with a
//! bumped generation), so SockId-keyed side tables use a [`SockTable`]:
//! a `Vec` indexed by arena slot holding `(generation, value)` pairs.
//! Lookups miss on a stale generation exactly like a `HashMap` keyed by
//! the full id would, and inserts `debug_assert` that they never land on
//! a slot still holding a *different* generation's value — that would
//! mean a connection was torn down without releasing its charges, the
//! slab analogue of a use-after-free.

use std::marker::PhantomData;

use crate::arena::Idx;

/// A key that is a dense, never-reused small integer.
pub trait SlabKey: Copy {
    /// The backing index.
    fn index(self) -> usize;
    /// Rebuilds the key from its index (used by iteration).
    fn from_index(i: usize) -> Self;
}

/// Dense map from a monotone id to a value, backed by a `Vec`.
///
/// Iteration order is ascending id — identical to the `BTreeMap` order
/// this replaces, so event schedules are unchanged byte for byte.
pub struct IdSlab<K: SlabKey, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: SlabKey, V> Default for IdSlab<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: SlabKey, V> IdSlab<K, V> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        IdSlab {
            slots: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `key` has a live entry.
    #[inline]
    pub fn contains_key(&self, key: K) -> bool {
        self.slots.get(key.index()).is_some_and(|s| s.is_some())
    }

    /// Shared access to `key`'s entry.
    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        self.slots.get(key.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access to `key`'s entry.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.slots.get_mut(key.index()).and_then(|s| s.as_mut())
    }

    /// Inserts a value, returning the previous one if present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = key.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns `key`'s entry.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let old = self.slots.get_mut(key.index()).and_then(|s| s.take());
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Returns `key`'s entry, inserting `default` first if absent.
    pub fn or_insert(&mut self, key: K, default: V) -> &mut V {
        let i = key.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some(default);
            self.len += 1;
        }
        slot.as_mut().expect("just filled")
    }

    /// Iterates live entries in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (K::from_index(i), v)))
    }

    /// Mutably iterates live entries in ascending id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (K::from_index(i), v)))
    }

    /// Iterates live ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| K::from_index(i)))
    }

    /// Iterates live values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }
}

/// Side table keyed by a generational arena id ([`Idx`]).
///
/// Indexed by the id's arena slot; each occupied slot remembers the
/// generation it was written under. A lookup with a recycled id (same
/// slot, newer generation) misses — exactly the behavior of a `HashMap`
/// keyed by the full `(slot, generation)` id — and a lookup or insert
/// observing an *older* stored generation trips a `debug_assert`,
/// because it means state outlived its connection.
pub struct SockTable<T, V> {
    slots: Vec<Option<(Idx<T>, V)>>,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T, V> Default for SockTable<T, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, V> SockTable<T, V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        SockTable {
            slots: Vec::new(),
            len: 0,
            _marker: PhantomData,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared access under `id`, missing on a generation mismatch.
    #[inline]
    pub fn get(&self, id: Idx<T>) -> Option<&V> {
        match self.slots.get(id.slot() as usize) {
            Some(Some((key, v))) if *key == id => Some(v),
            Some(Some((key, _))) => {
                debug_assert!(
                    key.generation() > id.generation(),
                    "sock table read with a live slot from a dead generation: \
                     stored gen {}, asked gen {}",
                    key.generation(),
                    id.generation()
                );
                None
            }
            _ => None,
        }
    }

    /// Mutable access under `id`, missing on a generation mismatch.
    #[inline]
    pub fn get_mut(&mut self, id: Idx<T>) -> Option<&mut V> {
        match self.slots.get_mut(id.slot() as usize) {
            Some(Some((key, v))) if *key == id => Some(v),
            _ => None,
        }
    }

    /// Inserts a value under `id`, returning the previous value written
    /// under the *same* generation if any.
    pub fn insert(&mut self, id: Idx<T>, value: V) -> Option<V> {
        let i = id.slot() as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if let Some((key, _)) = &self.slots[i] {
            debug_assert!(
                *key == id,
                "sock table insert over another generation's entry: \
                 stored gen {}, inserting gen {} — a connection \
                 was recycled without releasing this state",
                key.generation(),
                id.generation()
            );
        }
        let old = self.slots[i].replace((id, value));
        match old {
            Some((key, v)) if key == id => Some(v),
            Some(_) => None,
            None => {
                self.len += 1;
                None
            }
        }
    }

    /// Removes and returns the entry under `id`, if its generation is
    /// still the one stored.
    pub fn remove(&mut self, id: Idx<T>) -> Option<V> {
        match self.slots.get_mut(id.slot() as usize) {
            Some(slot @ Some(_)) => {
                if slot.as_ref().map(|(key, _)| *key) == Some(id) {
                    self.len -= 1;
                    slot.take().map(|(_, v)| v)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Iterates live entries in ascending slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx<T>, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(key, v)| (*key, v)))
    }

    /// Iterates live keys in ascending slot order.
    pub fn keys(&self) -> impl Iterator<Item = Idx<T>> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(key, _)| *key))
    }

    /// Returns `true` if `id` currently maps to a value.
    pub fn contains_key(&self, id: Idx<T>) -> bool {
        self.get(id).is_some()
    }

    /// Removes and returns state left in `id`'s slot by an *older*
    /// generation, along with the id that wrote it.
    ///
    /// This is the sanctioned teardown for state orphaned by a
    /// connection that died without the owner noticing (e.g. a
    /// fault-injected reset while the socket was parked in a wait set):
    /// when the arena recycles the slot, the owner reclaims the
    /// leftovers *before* inserting the new generation's state, keeping
    /// the insert-time use-after-free assert meaningful.
    pub fn remove_stale(&mut self, id: Idx<T>) -> Option<(Idx<T>, V)> {
        match self.slots.get_mut(id.slot() as usize) {
            Some(slot @ Some(_)) => {
                let stored = slot.as_ref().map(|(key, _)| *key).expect("checked Some");
                if stored != id {
                    debug_assert!(
                        stored.generation() < id.generation(),
                        "sock slot holds a future generation: stored gen {}, \
                         reclaiming under gen {}",
                        stored.generation(),
                        id.generation()
                    );
                    self.len -= 1;
                    slot.take()
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Returns the entry under `id`, inserting `default` first if absent.
    pub fn or_insert(&mut self, id: Idx<T>, default: V) -> &mut V {
        if self.get(id).is_none() {
            self.insert(id, default);
        }
        self.get_mut(id).expect("just filled")
    }
}
