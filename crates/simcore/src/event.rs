//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(time, payload)` pairs ordered by
//! time. Events scheduled for the same instant are delivered in the order
//! they were scheduled (stable FIFO), which is what makes whole-simulation
//! determinism possible: a `BinaryHeap` alone has unspecified tie ordering.
//!
//! # Implementation
//!
//! The production queue is a **hierarchical timer wheel**: six levels of 64
//! slots at 1 ns tick granularity, spanning 2^36 ns (~69 s) ahead of the
//! cursor. `schedule` is O(1): the level is the highest bit in which the
//! event time differs from the cursor (divided by 6), the slot is the
//! corresponding 6-bit field of the time. `pop` scans six occupancy
//! bitmaps bottom-up for the first non-empty slot (the lowest occupied
//! level always holds the earliest deadline), visits it, and — when the
//! bucket minimum is strictly earlier than every other occupied slot's
//! deadline — jumps the cursor straight to that minimum, delivering in a
//! single visit what a textbook wheel would cascade level by level. Slot
//! buckets are intrusive singly-linked chains through one node arena with
//! a freelist, so steady-state scheduling allocates nothing and touches
//! one hot cache region. Entries due exactly at the cursor drain into a
//! seq-sorted ready run, so a burst of same-instant events pops without
//! re-scanning the wheel. Events beyond the wheel horizon or at/behind
//! the cursor live in a sorted overflow map (`BTreeMap` keyed by
//! `(time, seq)`), compared against the wheel on every pop, so far-future
//! timers and "overdue" schedules (a time at or before the last popped
//! event) still come out in exact `(time, seq)` order. The old
//! `BinaryHeap` implementation survives as [`RefQueue`], the reference
//! model the differential proptest drives in lockstep
//! (`crates/simcore/tests/prop_queue_equiv.rs`).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use crate::time::Nanos;

/// Number of wheel levels.
const LEVELS: usize = 6;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;

/// A scheduled entry: ordered by time, then by insertion sequence.
struct Entry<E> {
    at: Nanos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Freelist/next-pointer sentinel for arena nodes.
const NIL: u32 = u32::MAX;

/// A wheel-resident entry (raw nanoseconds to keep slot math branchless),
/// chained intrusively through the node arena. `payload` is `None` only
/// while the node sits on the freelist.
struct Node<E> {
    at: u64,
    seq: u64,
    next: u32,
    payload: Option<E>,
}

/// A deterministic event queue keyed by virtual time.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_micros(10), "b");
/// q.schedule(Nanos::from_micros(5), "a");
/// q.schedule(Nanos::from_micros(10), "c");
///
/// assert_eq!(q.pop(), Some((Nanos::from_micros(5), "a")));
/// assert_eq!(q.pop(), Some((Nanos::from_micros(10), "b")));
/// assert_eq!(q.pop(), Some((Nanos::from_micros(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Head node index per slot, level-major (`NIL` when empty). Buckets
    /// are intrusive chains through `nodes`, so the whole wheel shares
    /// one allocation and the freelist keeps reused nodes cache-hot.
    heads: [u32; LEVELS * SLOTS],
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// The node arena; freed nodes chain through `free`.
    nodes: Vec<Node<E>>,
    /// Freelist head into `nodes`.
    free: u32,
    /// Seq-sorted run of node indices due exactly at `elapsed`, drained
    /// front to back. Filled only when empty, so it is always globally
    /// sorted.
    ready: VecDeque<u32>,
    /// Far-future (beyond the wheel horizon) and overdue (at or before
    /// `elapsed`) entries, in exact pop order.
    overflow: BTreeMap<(u64, u64), E>,
    /// The wheel cursor: the timestamp of the slot most recently visited.
    /// Every wheel-resident entry is strictly later than this; every ready
    /// entry is exactly at it.
    elapsed: u64,
    next_seq: u64,
    len: usize,
    /// Time of the earliest pending entry, maintained eagerly so
    /// `peek_time` is O(1) on `&self`.
    min_time: Option<Nanos>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heads: [NIL; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            nodes: Vec::new(),
            free: NIL,
            ready: VecDeque::new(),
            overflow: BTreeMap::new(),
            elapsed: 0,
            next_seq: 0,
            len: 0,
            min_time: None,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    #[inline]
    pub fn schedule(&mut self, at: Nanos, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let t = at.as_nanos();
        match self.min_time {
            Some(m) if m <= at => {}
            _ => self.min_time = Some(at),
        }
        if t <= self.elapsed {
            // Overdue relative to the cursor: sorted overflow keeps it in
            // exact (time, seq) order ahead of everything later.
            self.overflow.insert((t, seq), payload);
            return;
        }
        let level = level_for(self.elapsed, t);
        if level >= LEVELS {
            self.overflow.insert((t, seq), payload);
            return;
        }
        let slot = slot_of(t, level);
        let idx = self.alloc(t, seq, payload);
        self.link(level, slot, idx);
    }

    /// Takes a node from the freelist or grows the arena.
    #[inline]
    fn alloc(&mut self, at: u64, seq: u64, payload: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.nodes[idx as usize];
            self.free = n.next;
            n.at = at;
            n.seq = seq;
            n.next = NIL;
            n.payload = Some(payload);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                at,
                seq,
                next: NIL,
                payload: Some(payload),
            });
            idx
        }
    }

    /// Returns a node's payload and puts the node on the freelist.
    #[inline]
    fn free_node(&mut self, idx: u32) -> E {
        let n = &mut self.nodes[idx as usize];
        let payload = n.payload.take().expect("freed node still referenced");
        n.next = self.free;
        self.free = idx;
        payload
    }

    /// Chains a node onto a slot bucket and marks the slot occupied.
    #[inline]
    fn link(&mut self, level: usize, slot: usize, idx: u32) {
        let h = level * SLOTS + slot;
        self.nodes[idx as usize].next = self.heads[h];
        self.heads[h] = idx;
        self.occupied[level] |= 1 << slot;
    }

    /// Returns the time of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Nanos> {
        self.min_time
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let (t, seq) = self.prepare()?;
        let from_ready = match self.ready.front() {
            Some(&i) => {
                let n = &self.nodes[i as usize];
                n.at == t && n.seq == seq
            }
            None => false,
        };
        let out = if from_ready {
            let idx = self.ready.pop_front().expect("front exists");
            self.free_node(idx)
        } else {
            self.overflow
                .remove(&(t, seq))
                .expect("prepare returned an overflow key")
        };
        // A fresh minimum from overflow beyond the cursor means the wheel
        // was empty (wheel entries always precede far-future overflow), so
        // jumping the cursor forward cannot strand a wheel entry.
        if t > self.elapsed {
            self.elapsed = t;
        }
        self.len -= 1;
        self.min_time = self.prepare().map(|(t, _)| Nanos::from_nanos(t));
        Some((Nanos::from_nanos(t), out))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    #[inline]
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, E)> {
        match self.min_time {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Returns the number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events. The cursor and sequence counter are
    /// retained, so later schedules still order after earlier ones.
    pub fn clear(&mut self) {
        self.heads = [NIL; LEVELS * SLOTS];
        self.occupied = [0; LEVELS];
        self.nodes.clear();
        self.free = NIL;
        self.ready.clear();
        self.overflow.clear();
        self.len = 0;
        self.min_time = None;
    }

    /// Exposes the global minimum: after this returns `Some((t, seq))`,
    /// that entry is either at the front of `ready` or in `overflow` under
    /// exactly that key. Cascades higher-level wheel slots downward as a
    /// side effect; never removes or reorders entries.
    fn prepare(&mut self) -> Option<(u64, u64)> {
        loop {
            let ready_key = self.ready.front().map(|&i| {
                let n = &self.nodes[i as usize];
                (n.at, n.seq)
            });
            let over_key = if self.overflow.is_empty() {
                None
            } else {
                self.overflow.keys().next().copied()
            };
            // Wheel entries are strictly later than ready ones (the ready
            // run sits at the cursor; the wheel is past it), so the wheel
            // only competes when the ready run is empty.
            if ready_key.is_none() {
                if let Some((level, slot, deadline)) = self.next_wheel_slot() {
                    // Visit the wheel slot unless an overflow entry is
                    // strictly earlier than everything the slot can hold.
                    if over_key.is_none_or(|(t, _)| deadline <= t) {
                        self.visit(level, slot, deadline);
                        continue;
                    }
                }
            }
            return match (ready_key, over_key) {
                (Some(r), Some(o)) => Some(r.min(o)),
                (r, o) => r.or(o),
            };
        }
    }

    /// Finds the earliest occupied wheel slot: the first occupied level,
    /// scanning bottom-up. A level-`h` slot deadline carries the cursor's
    /// bits above field `h` and a slot index strictly greater than the
    /// cursor's field `h`, while a lower level `l < h` keeps the cursor's
    /// field `h` verbatim — so any occupied lower level beats any higher
    /// one, and the scan can stop at the first hit. (The cursor-jump in
    /// `visit` relies on this: when the minimum slot is at level `L`,
    /// every level below `L` is empty.)
    fn next_wheel_slot(&self) -> Option<(usize, usize, u64)> {
        for level in 0..LEVELS {
            let cursor = slot_of(self.elapsed, level);
            // Entries land in slots strictly after the cursor within
            // their level (the level is chosen by highest differing bit),
            // so a forward mask never skips one.
            let masked = self.occupied[level] & (!0u64 << cursor);
            if masked != 0 {
                let slot = masked.trailing_zeros() as usize;
                let deadline = slot_deadline(self.elapsed, level, slot);
                return Some((level, slot, deadline));
            }
        }
        None
    }

    /// Visits one wheel slot: advances the cursor to the slot's deadline,
    /// moves entries due exactly now into the ready run (seq-sorted) and
    /// re-files the rest into strictly lower levels.
    fn visit(&mut self, level: usize, slot: usize, deadline: u64) {
        self.occupied[level] &= !(1 << slot);
        let head = self.heads[level * SLOTS + slot];
        self.heads[level * SLOTS + slot] = NIL;
        self.elapsed = deadline;
        // Cursor jump: every entry in this bucket shares the slot's
        // field-`level` bits, so all of them precede every other wheel
        // entry as long as the bucket minimum is strictly earlier than
        // the next slot deadline `d2` (ties must *not* jump: an equal-time
        // entry in another slot has to merge into the same ready run for
        // seq order to hold). When it is, advancing the cursor straight to
        // the bucket minimum delivers in ONE visit what would otherwise
        // cascade level by level — the dominant cost on sparse wheels.
        // Sound because `next_wheel_slot` scans bottom-up: at the minimum
        // slot's level and below, nothing else is pending.
        if level > 0 {
            let mut bucket_min = u64::MAX;
            let mut i = head;
            while i != NIL {
                let n = &self.nodes[i as usize];
                bucket_min = bucket_min.min(n.at);
                i = n.next;
            }
            if bucket_min > deadline {
                // Second-minimum slot deadline. Levels below `level` are
                // empty (bottom-up scan invariant), so start there.
                let mut d2 = u64::MAX;
                for l in level..LEVELS {
                    let cursor = slot_of(self.elapsed, l);
                    let masked = self.occupied[l] & (!0u64 << cursor);
                    if masked != 0 {
                        let s = masked.trailing_zeros() as usize;
                        d2 = slot_deadline(self.elapsed, l, s);
                        break;
                    }
                }
                if bucket_min < d2 {
                    self.elapsed = bucket_min;
                }
            }
        }
        debug_assert!(self.ready.is_empty(), "ready run refilled before drained");
        let mut i = head;
        while i != NIL {
            let (at, next) = {
                let n = &self.nodes[i as usize];
                (n.at, n.next)
            };
            debug_assert!(at >= deadline, "wheel entry behind its slot");
            if at == self.elapsed {
                self.ready.push_back(i);
            } else {
                let lower = level_for(self.elapsed, at);
                debug_assert!(lower < level, "cascade must descend");
                let s = slot_of(at, lower);
                self.link(lower, s, i);
            }
            i = next;
        }
        if self.ready.len() > 1 {
            // Same-instant entries must drain in schedule order; bucket
            // chains are LIFO, so the run is rebuilt by seq.
            let nodes = &self.nodes;
            let run = self.ready.make_contiguous();
            run.sort_unstable_by_key(|&i| nodes[i as usize].seq);
        }
    }
}

/// The wheel level for an entry at `when`, relative to cursor `elapsed`:
/// the highest bit in which they differ, divided by the per-level slot
/// width. `LEVELS` or more means past the wheel horizon.
#[inline]
fn level_for(elapsed: u64, when: u64) -> usize {
    debug_assert!(when > elapsed);
    let highest = 63 - (when ^ elapsed).leading_zeros();
    (highest / SLOT_BITS) as usize
}

/// The 6-bit slot index of `when` at `level`.
#[inline]
fn slot_of(when: u64, level: usize) -> usize {
    ((when >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
}

/// The earliest timestamp a slot can hold: the cursor's high bits above
/// the level, the slot index within it, zeros below.
#[inline]
fn slot_deadline(elapsed: u64, level: usize, slot: usize) -> u64 {
    let shift = SLOT_BITS as usize * level;
    let high = match shift + SLOT_BITS as usize {
        64 => 0,
        above => elapsed & (!0u64 << above),
    };
    high | ((slot as u64) << shift)
}

/// The original `BinaryHeap`-backed queue, kept as a **reference model**
/// for differential testing against the production [`EventQueue`].
///
/// This is the seed implementation, verbatim: a max-heap of reversed
/// `(time, seq)` entries. It is deliberately simple and obviously correct
/// — `crates/simcore/tests/prop_queue_equiv.rs` drives it and the
/// production queue in lockstep on random programs and asserts identical
/// observable behavior. Not intended for use outside tests.
pub struct RefQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for RefQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> RefQueue<E> {
    /// Creates an empty reference queue.
    pub fn new() -> Self {
        RefQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Nanos, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Returns the time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(30), 3);
        q.schedule(Nanos::from_micros(10), 1);
        q.schedule(Nanos::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(10), "x");
        assert!(q.pop_due(Nanos::from_micros(9)).is_none());
        assert!(q.pop_due(Nanos::from_micros(10)).is_some());
        assert!(q.pop_due(Nanos::from_micros(10)).is_none());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Nanos::ZERO, ());
        q.schedule(Nanos::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(5), 1);
        q.schedule(Nanos::from_micros(5), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(Nanos::from_micros(5), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn overdue_schedule_pops_before_pending() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(10), "future");
        assert_eq!(q.pop().unwrap().1, "future");
        // Behind the cursor now — must still pop, and first.
        q.schedule(Nanos::from_micros(2), "overdue");
        q.schedule(Nanos::from_micros(20), "later");
        assert_eq!(q.pop(), Some((Nanos::from_micros(2), "overdue")));
        assert_eq!(q.pop(), Some((Nanos::from_micros(20), "later")));
    }

    #[test]
    fn far_future_past_wheel_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_secs(1_000), "far");
        q.schedule(Nanos::from_nanos(5), "near");
        q.schedule(Nanos::from_secs(100_000_000), "farther");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "farther");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cascade_preserves_seq_order_within_instant() {
        let mut q = EventQueue::new();
        // Two entries at the same instant land in a level-1 slot and must
        // cascade out in schedule order.
        let t = Nanos::from_nanos(64 * 3 + 7);
        q.schedule(t, 1);
        q.schedule(Nanos::from_nanos(1), 0);
        q.schedule(t, 2);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }
}
