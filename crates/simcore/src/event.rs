//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(time, payload)` pairs ordered by
//! time. Events scheduled for the same instant are delivered in the order
//! they were scheduled (stable FIFO), which is what makes whole-simulation
//! determinism possible: a `BinaryHeap` alone has unspecified tie ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// A scheduled entry: ordered by time, then by insertion sequence.
struct Entry<E> {
    at: Nanos,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue keyed by virtual time.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_micros(10), "b");
/// q.schedule(Nanos::from_micros(5), "a");
/// q.schedule(Nanos::from_micros(10), "c");
///
/// assert_eq!(q.pop(), Some((Nanos::from_micros(5), "a")));
/// assert_eq!(q.pop(), Some((Nanos::from_micros(10), "b")));
/// assert_eq!(q.pop(), Some((Nanos::from_micros(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: Nanos, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Returns the time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(30), 3);
        q.schedule(Nanos::from_micros(10), 1);
        q.schedule(Nanos::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = Nanos::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(10), "x");
        assert!(q.pop_due(Nanos::from_micros(9)).is_none());
        assert!(q.pop_due(Nanos::from_micros(10)).is_some());
        assert!(q.pop_due(Nanos::from_micros(10)).is_none());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Nanos::ZERO, ());
        q.schedule(Nanos::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_micros(5), 1);
        q.schedule(Nanos::from_micros(5), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(Nanos::from_micros(5), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
