//! Differential property tests: the production [`EventQueue`] against the
//! seed `BinaryHeap` reference model ([`RefQueue`]).
//!
//! The queue is the heart of the simulator's determinism — every kernel,
//! disk, link, and client event flows through it, and the goldens and the
//! A/B harness all assume exact `(time, seq)` pop order. These tests run
//! both implementations in lockstep on random interleaved programs of
//! `schedule` / `pop` / `pop_due` / `peek_time` / `clear` and assert that
//! every observation matches, including same-timestamp ties (FIFO by
//! insertion), overdue schedules (time earlier than events already
//! popped), and far-future times past any wheel horizon.

use proptest::prelude::*;
use simcore::{EventQueue, Nanos, RefQueue};

/// One step of a random queue program.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule a payload at `base + jitter`, where `base` indexes into a
    /// set of interesting offsets (0, tiny, slot-sized, level boundaries,
    /// far future) so ties and rollovers actually happen.
    Schedule {
        base: u8,
        jitter: u16,
    },
    /// Schedule `n` payloads at the exact same instant (tie burst).
    Burst {
        base: u8,
        n: u8,
    },
    Pop,
    /// Pop everything due at `now` = time of the last popped event plus a
    /// small delta (mirrors the kernel's frontier stepping).
    PopDue {
        delta: u16,
    },
    PeekTime,
    Len,
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(base, jitter)| Op::Schedule { base, jitter }),
        (any::<u8>(), any::<u16>()).prop_map(|(base, jitter)| Op::Schedule { base, jitter }),
        (any::<u8>(), 1u8..8).prop_map(|(base, n)| Op::Burst { base, n }),
        Just(Op::Pop),
        Just(Op::Pop),
        any::<u16>().prop_map(|delta| Op::PopDue { delta }),
        Just(Op::PeekTime),
        Just(Op::Len),
        Just(Op::Clear),
    ]
}

/// Interesting absolute-time offsets: zero, sub-slot, exact slot/level
/// boundaries of a 64-slot hierarchical wheel, and far-future horizons.
fn base_time(base: u8) -> u64 {
    const BASES: &[u64] = &[
        0,
        1,
        2,
        63,
        64,
        65,
        4_095,
        4_096,
        4_097,
        262_143,
        262_144,
        16_777_216,
        1_073_741_824,
        68_719_476_736,    // past a 6-level x 64-slot x 1ns wheel span
        4_398_046_511_104, // far future
        u64::MAX / 2,      // pathological horizon
    ];
    BASES[base as usize % BASES.len()]
}

/// Runs one program against both queues in lockstep, asserting identical
/// observations after every step.
fn run_program(ops: &[Op]) {
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut heap: RefQueue<u32> = RefQueue::new();
    let mut payload: u32 = 0;
    // Clock of the last pop, so PopDue exercises the kernel's "drain all
    // due work at the frontier" pattern rather than random instants only.
    let mut last_pop = Nanos::ZERO;

    for op in ops {
        match *op {
            Op::Schedule { base, jitter } => {
                let at = Nanos::from_nanos(base_time(base).saturating_add(jitter as u64));
                wheel.schedule(at, payload);
                heap.schedule(at, payload);
                payload += 1;
            }
            Op::Burst { base, n } => {
                let at = Nanos::from_nanos(base_time(base));
                for _ in 0..n {
                    wheel.schedule(at, payload);
                    heap.schedule(at, payload);
                    payload += 1;
                }
            }
            Op::Pop => {
                let (a, b) = (wheel.pop(), heap.pop());
                assert_eq!(a, b, "pop diverged");
                if let Some((t, _)) = a {
                    last_pop = t;
                }
            }
            Op::PopDue { delta } => {
                let now = last_pop + Nanos::from_nanos(delta as u64);
                // Drain the full due run — this is exactly the kernel's
                // inner loop, and where batched draining must not reorder.
                loop {
                    let (a, b) = (wheel.pop_due(now), heap.pop_due(now));
                    assert_eq!(a, b, "pop_due({now:?}) diverged");
                    match a {
                        Some((t, _)) => last_pop = t,
                        None => break,
                    }
                }
            }
            Op::PeekTime => {
                assert_eq!(wheel.peek_time(), heap.peek_time(), "peek_time diverged");
            }
            Op::Len => {
                assert_eq!(wheel.len(), heap.len(), "len diverged");
                assert_eq!(wheel.is_empty(), heap.is_empty());
            }
            Op::Clear => {
                wheel.clear();
                heap.clear();
                assert_eq!(wheel.len(), heap.len());
                assert_eq!(wheel.peek_time(), heap.peek_time());
            }
        }
    }

    // Drain both completely: the tail must agree event-for-event.
    loop {
        let (a, b) = (wheel.pop(), heap.pop());
        assert_eq!(a, b, "final drain diverged");
        if a.is_none() {
            break;
        }
    }
    assert!(wheel.is_empty() && heap.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_programs_behave_identically(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_program(&ops);
    }

    /// Monotone non-decreasing schedule times with heavy ties — the
    /// common case in the kernel (timers armed at now + constant).
    #[test]
    fn monotone_schedules_with_ties(
        steps in prop::collection::vec((0u16..100, 1u8..4), 1..100),
        drain_every in 1usize..8,
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: RefQueue<u32> = RefQueue::new();
        let mut t = 0u64;
        let mut payload = 0u32;
        for (i, &(advance, n)) in steps.iter().enumerate() {
            t += advance as u64;
            for _ in 0..n {
                wheel.schedule(Nanos::from_nanos(t), payload);
                heap.schedule(Nanos::from_nanos(t), payload);
                payload += 1;
            }
            if i % drain_every == 0 {
                assert_eq!(wheel.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Overdue schedules: events scheduled in the "past" relative to
    /// already-popped times must still come out first and in seq order.
    #[test]
    fn overdue_schedules_pop_first(
        future in 1_000u64..100_000,
        overdue in prop::collection::vec(0u64..1_000, 1..20),
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: RefQueue<u32> = RefQueue::new();
        wheel.schedule(Nanos::from_nanos(future), 0);
        heap.schedule(Nanos::from_nanos(future), 0);
        // Advance both queues past the future event so their internal
        // "elapsed" cursors move, then schedule times before it.
        assert_eq!(wheel.pop(), heap.pop());
        for (i, &t) in overdue.iter().enumerate() {
            let p = i as u32 + 1;
            wheel.schedule(Nanos::from_nanos(t), p);
            heap.schedule(Nanos::from_nanos(t), p);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b, "overdue drain diverged");
            if a.is_none() { break; }
        }
    }
}

/// Deterministic horizon-rollover check: schedule across every level
/// boundary of a 64-slot wheel and beyond its total span, pop in order.
#[test]
fn horizon_rollover_exact() {
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: RefQueue<u64> = RefQueue::new();
    let times: Vec<u64> = (0..16)
        .flat_map(|level| {
            let unit = 1u64 << (6 * (level % 11));
            [unit.saturating_sub(1), unit, unit.saturating_add(1)]
        })
        .collect();
    for (i, &t) in times.iter().enumerate() {
        wheel.schedule(Nanos::from_nanos(t), i as u64);
        heap.schedule(Nanos::from_nanos(t), i as u64);
    }
    // Interleave pops with re-schedules relative to the popped time.
    while let Some((t, p)) = heap.pop() {
        assert_eq!(wheel.pop(), Some((t, p)));
        if p % 3 == 0 {
            let again = t + Nanos::from_nanos(1 + p * 97);
            wheel.schedule(again, p + 1_000);
            heap.schedule(again, p + 1_000);
        }
    }
    assert!(wheel.pop().is_none());
}
