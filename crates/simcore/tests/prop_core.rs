//! Property tests for the simulation substrate.

use proptest::prelude::*;
use simcore::{Arena, EventQueue, Nanos, SimRng};

proptest! {
    /// The event queue delivers in (time, insertion) order — equivalent to
    /// a stable sort of the scheduled entries.
    #[test]
    fn event_queue_is_stable_time_order(
        times in prop::collection::vec(0u64..1_000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos::from_nanos(t), i);
        }
        let mut reference: Vec<(u64, usize)> =
            times.iter().copied().zip(0..times.len()).collect();
        reference.sort_by_key(|&(t, i)| (t, i));
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, reference);
    }

    /// Popping due events at increasing `now` values never yields an event
    /// from the future.
    #[test]
    fn pop_due_never_time_travels(
        times in prop::collection::vec(0u64..1_000, 1..100),
        step in 1u64..50,
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(Nanos::from_nanos(t), t);
        }
        let mut now = 0u64;
        while now < 1_100 {
            while let Some((at, payload)) = q.pop_due(Nanos::from_nanos(now)) {
                prop_assert!(at.as_nanos() <= now);
                prop_assert_eq!(at.as_nanos(), payload);
            }
            now += step;
        }
        prop_assert!(q.is_empty());
    }

    /// Arena ids never alias across remove/insert cycles.
    #[test]
    fn arena_generation_safety(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut arena: Arena<usize> = Arena::new();
        let mut live: Vec<(simcore::Idx<usize>, usize)> = Vec::new();
        let mut dead: Vec<simcore::Idx<usize>> = Vec::new();
        let mut counter = 0usize;
        for insert in ops {
            if insert || live.is_empty() {
                counter += 1;
                let id = arena.insert(counter);
                live.push((id, counter));
            } else {
                let (id, _) = live.remove(live.len() / 2);
                arena.remove(id);
                dead.push(id);
            }
        }
        for (id, val) in &live {
            prop_assert_eq!(arena.get(*id), Some(val));
        }
        for id in &dead {
            prop_assert!(arena.get(*id).is_none());
        }
        prop_assert_eq!(arena.len(), live.len());
    }

    /// RNG forks are independent: a fork's stream doesn't change when the
    /// parent draws more numbers, and is reproducible.
    #[test]
    fn rng_forks_reproducible(seed in any::<u64>(), extra_draws in 0usize..8) {
        let mut parent1 = SimRng::seed_from(seed);
        let mut fork1 = parent1.fork();
        let a: Vec<u64> = (0..16).map(|_| fork1.uniform_u64(0, 1 << 40)).collect();

        let mut parent2 = SimRng::seed_from(seed);
        let mut fork2 = parent2.fork();
        for _ in 0..extra_draws {
            let _ = parent2.uniform_f64(); // Must not perturb the fork.
        }
        let b: Vec<u64> = (0..16).map(|_| fork2.uniform_u64(0, 1 << 40)).collect();
        prop_assert_eq!(a, b);
    }

    /// Saturating arithmetic on `Nanos` never panics and brackets checked
    /// arithmetic.
    #[test]
    fn nanos_saturating_brackets(a in any::<u64>(), b in any::<u64>()) {
        let x = Nanos::from_nanos(a);
        let y = Nanos::from_nanos(b);
        let sat = x.saturating_sub(y);
        if a >= b {
            prop_assert_eq!(sat, x - y);
        } else {
            prop_assert_eq!(sat, Nanos::ZERO);
        }
        prop_assert!(x.saturating_add(y) >= x.max(y));
    }
}
