//! Textual policy specs for CLIs and the A/B harness.
//!
//! A CPU *schedule* spec names an initial policy and zero or more mid-run
//! swaps: `"decay"`, `"edf"`, `"decay->edf@2s"`,
//! `"ml->stride@500ms->edf@4s"`. Durations accept `ns`, `us`, `ms`, and
//! `s` suffixes (a bare number means nanoseconds). Disk and link specs
//! are single policy names.

use simcore::Nanos;
use simnet::QdiscKind;

use crate::registry::{CpuPolicyKind, DiskPolicyKind};

/// A CPU policy schedule: the boot policy plus timed mid-run swaps,
/// sorted by swap time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuSchedule {
    /// The policy the kernel boots with.
    pub initial: CpuPolicyKind,
    /// Mid-run swaps as (virtual time, policy to attach), sorted by time.
    pub swaps: Vec<(Nanos, CpuPolicyKind)>,
}

impl CpuSchedule {
    /// A short display label: policy names joined by `->`.
    pub fn label(&self) -> String {
        let mut s = self.initial.name().to_string();
        for (_, kind) in &self.swaps {
            s.push_str("->");
            s.push_str(kind.name());
        }
        s
    }
}

/// Parses a CPU policy name: `decay`, `ml` / `multilevel`, `stride`,
/// `lottery` / `lottery:SEED`, `edf`.
pub fn parse_cpu(s: &str) -> Option<CpuPolicyKind> {
    match s {
        "decay" | "decay-usage" => Some(CpuPolicyKind::DecayUsage),
        "ml" | "multilevel" | "multilevel-rc" => Some(CpuPolicyKind::MultiLevel),
        "stride" => Some(CpuPolicyKind::Stride),
        "lottery" => Some(CpuPolicyKind::Lottery(1)),
        "edf" => Some(CpuPolicyKind::Edf),
        _ => {
            let seed = s.strip_prefix("lottery:")?;
            Some(CpuPolicyKind::Lottery(seed.parse().ok()?))
        }
    }
}

/// Parses a disk policy name: `fifo` or `share`.
pub fn parse_disk(s: &str) -> Option<DiskPolicyKind> {
    match s {
        "fifo" => Some(DiskPolicyKind::Fifo),
        "share" => Some(DiskPolicyKind::Share),
        _ => None,
    }
}

/// Parses a link qdisc name: `fifo` or `wfq`.
pub fn parse_link(s: &str) -> Option<QdiscKind> {
    match s {
        "fifo" => Some(QdiscKind::Fifo),
        "wfq" => Some(QdiscKind::Wfq),
        _ => None,
    }
}

/// Parses a duration with an optional `ns`/`us`/`ms`/`s` suffix; a bare
/// number is nanoseconds. Fractions are not supported — use the next
/// finer unit.
pub fn parse_duration(s: &str) -> Option<Nanos> {
    let (digits, mul) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    let n: u64 = digits.parse().ok()?;
    Some(Nanos::from_nanos(n.checked_mul(mul)?))
}

/// Parses a full CPU schedule spec: `POLICY(->POLICY@TIME)*`. Returns
/// `None` on any malformed segment, a swap without a time, or swap times
/// that do not strictly increase.
pub fn parse_cpu_schedule(s: &str) -> Option<CpuSchedule> {
    let mut parts = s.split("->");
    let initial = parse_cpu(parts.next()?)?;
    let mut swaps = Vec::new();
    let mut last = Nanos::ZERO;
    for part in parts {
        let (policy, time) = part.split_once('@')?;
        let kind = parse_cpu(policy)?;
        let at = parse_duration(time)?;
        if at <= last {
            return None;
        }
        last = at;
        swaps.push((at, kind));
    }
    Some(CpuSchedule { initial, swaps })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_names_parse() {
        assert_eq!(parse_cpu("decay"), Some(CpuPolicyKind::DecayUsage));
        assert_eq!(parse_cpu("ml"), Some(CpuPolicyKind::MultiLevel));
        assert_eq!(parse_cpu("stride"), Some(CpuPolicyKind::Stride));
        assert_eq!(parse_cpu("lottery"), Some(CpuPolicyKind::Lottery(1)));
        assert_eq!(parse_cpu("lottery:99"), Some(CpuPolicyKind::Lottery(99)));
        assert_eq!(parse_cpu("edf"), Some(CpuPolicyKind::Edf));
        assert_eq!(parse_cpu("cfs"), None);
        assert_eq!(parse_cpu("lottery:x"), None);
    }

    #[test]
    fn disk_and_link_names_parse() {
        assert_eq!(parse_disk("share"), Some(DiskPolicyKind::Share));
        assert_eq!(parse_disk("wfq"), None);
        assert_eq!(parse_link("wfq"), Some(QdiscKind::Wfq));
        assert_eq!(parse_link("share"), None);
    }

    #[test]
    fn durations_parse_with_suffixes() {
        assert_eq!(parse_duration("2s"), Some(Nanos::from_secs(2)));
        assert_eq!(parse_duration("500ms"), Some(Nanos::from_millis(500)));
        assert_eq!(parse_duration("3us"), Some(Nanos::from_micros(3)));
        assert_eq!(parse_duration("7ns"), Some(Nanos::from_nanos(7)));
        assert_eq!(parse_duration("42"), Some(Nanos::from_nanos(42)));
        assert_eq!(parse_duration("1.5s"), None);
        assert_eq!(parse_duration(""), None);
    }

    #[test]
    fn schedules_parse_and_label() {
        let plain = parse_cpu_schedule("edf").unwrap();
        assert_eq!(plain.initial, CpuPolicyKind::Edf);
        assert!(plain.swaps.is_empty());
        assert_eq!(plain.label(), "edf");

        let sched = parse_cpu_schedule("decay->edf@2s").unwrap();
        assert_eq!(sched.initial, CpuPolicyKind::DecayUsage);
        assert_eq!(sched.swaps, vec![(Nanos::from_secs(2), CpuPolicyKind::Edf)]);
        assert_eq!(sched.label(), "decay-usage->edf");

        let multi = parse_cpu_schedule("ml->stride@500ms->edf@4s").unwrap();
        assert_eq!(multi.swaps.len(), 2);
    }

    #[test]
    fn malformed_schedules_rejected() {
        assert!(parse_cpu_schedule("decay->edf").is_none(), "missing time");
        assert!(parse_cpu_schedule("decay->edf@").is_none());
        assert!(parse_cpu_schedule("->edf@1s").is_none());
        assert!(
            parse_cpu_schedule("decay->edf@2s->stride@1s").is_none(),
            "times must increase"
        );
        assert!(parse_cpu_schedule("decay->edf@0s").is_none());
    }
}
