//! The hot-swappable policy plane.
//!
//! The simulated kernel has three scheduling seams — CPU
//! ([`sched::Scheduler`]), disk ([`simdisk::IoSched`]), and link
//! ([`simnet::LinkSched`]) — that historically were chosen at boot and
//! fixed for the life of the run. This crate refactors them into one
//! *policy plane*: a common lifecycle ([`Policy`]) under which any of the
//! three can be detached mid-run, its in-flight state exported through a
//! policy-neutral snapshot, and a freshly built replacement attached with
//! that state replayed into it. The paper frames resource containers as
//! *mechanism*, explicitly separate from scheduling *policy* (§4.4); this
//! crate is that separation made operational — policies become the
//! swappable half.
//!
//! Three rules make mid-run swaps safe:
//!
//! 1. **Snapshots carry only what the kernel said.** A CPU snapshot is
//!    (task, home CPU, binding, runnable); a disk snapshot is the queued
//!    requests; a link snapshot is the queued packets with their class
//!    chains. Nothing the detaching policy *invented* — passes, virtual
//!    times, decayed usages, token buckets — crosses the swap.
//! 2. **Fresh ledgers for everyone at once.** The attaching policy starts
//!    every principal at its own notion of "just joined". This is the
//!    repo-wide sleeper-rejoin rule (no banked credit) applied to the
//!    whole machine simultaneously, so no principal gains or loses
//!    relative standing from the swap itself.
//! 3. **Accounting lives below the policy.** Charged CPU/disk/wire time
//!    is recorded in [`rescon::ContainerTable`] and device totals, which a
//!    swap never touches — so conservation invariants hold across any
//!    swap schedule, and a run that never swaps is byte-identical to one
//!    built before this crate existed.
//!
//! [`build_cpu`], [`build_disk`], and [`build_link`] form the policy
//! registry: the single place where policy kinds become instances (the
//! kernel's old hard-coded constructor matches moved here). [`spec`]
//! parses human-written policy specs (`"edf"`, `"decay->edf@2s"`) for
//! CLIs and the A/B harness.

pub mod lifecycle;
pub mod registry;
pub mod spec;

pub use lifecycle::{swap, Plane, Policy};
pub use registry::{build_cpu, build_disk, build_link, CpuPolicyKind, DiskPolicyKind};
pub use spec::{
    parse_cpu, parse_cpu_schedule, parse_disk, parse_duration, parse_link, CpuSchedule,
};
