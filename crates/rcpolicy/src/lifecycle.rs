//! The policy lifecycle: detach a live policy, export its policy-neutral
//! state, and replay that state into a freshly built replacement.

use rescon::ContainerTable;
use sched::{Scheduler, TaskSnapshot};
use simcore::Nanos;
use simdisk::{IoSched, QueuedRequest};
use simnet::{LinkSched, TxSnapshot};

/// The three resource planes whose scheduling policy can be swapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plane {
    /// CPU scheduling ([`sched::Scheduler`]).
    Cpu,
    /// Disk request ordering ([`simdisk::IoSched`]).
    Disk,
    /// Transmit link queueing ([`simnet::LinkSched`]).
    Link,
}

impl Plane {
    /// Stable lowercase label used in trace events and metrics dumps.
    pub fn label(self) -> &'static str {
        match self {
            Plane::Cpu => "cpu",
            Plane::Disk => "disk",
            Plane::Link => "link",
        }
    }
}

/// A swappable scheduling policy: the common lifecycle over all three
/// planes.
///
/// `Snapshot` is the plane's policy-neutral state — everything the kernel
/// handed to the policy, nothing the policy computed from it. `Ctx` is
/// whatever extra context the plane's `import` needs (only the disk
/// plane needs one: its disciplines read container shares at enqueue
/// time).
///
/// A swap is `export_state` on the detaching instance followed by
/// `import_state` on a freshly built replacement; [`swap`] packages the
/// sequence. Implementations must make export → import → export a
/// fixpoint: importing a snapshot and immediately exporting again yields
/// the same snapshot (same items, same order), which is what makes swap
/// schedules composable and replayable.
pub trait Policy {
    /// The plane's policy-neutral state.
    type Snapshot;
    /// Extra context `import_state` needs, borrowed from the kernel.
    type Ctx<'a>;

    /// Short stable policy name for trace events and reports.
    fn policy_name(&self) -> &'static str;

    /// Detaches: removes and returns all in-flight state in a
    /// deterministic order.
    fn export_state(&mut self) -> Self::Snapshot;

    /// Attaches: replays exported state into this (freshly built)
    /// policy. Policy-internal ledgers start fresh.
    fn import_state(&mut self, snap: Self::Snapshot, ctx: Self::Ctx<'_>, now: Nanos);
}

impl Policy for Box<dyn Scheduler> {
    type Snapshot = Vec<TaskSnapshot>;
    type Ctx<'a> = ();

    fn policy_name(&self) -> &'static str {
        self.name()
    }

    fn export_state(&mut self) -> Vec<TaskSnapshot> {
        self.export_tasks()
    }

    fn import_state(&mut self, snap: Vec<TaskSnapshot>, _ctx: (), now: Nanos) {
        self.import_tasks(&snap, now);
    }
}

impl Policy for Box<dyn IoSched> {
    type Snapshot = Vec<QueuedRequest>;
    type Ctx<'a> = &'a ContainerTable;

    fn policy_name(&self) -> &'static str {
        self.name()
    }

    fn export_state(&mut self) -> Vec<QueuedRequest> {
        self.drain()
    }

    fn import_state(&mut self, snap: Vec<QueuedRequest>, table: &ContainerTable, _now: Nanos) {
        for req in snap {
            self.enqueue(req, table);
        }
    }
}

impl Policy for Box<dyn LinkSched> {
    type Snapshot = Vec<TxSnapshot>;
    type Ctx<'a> = ();

    fn policy_name(&self) -> &'static str {
        self.name()
    }

    fn export_state(&mut self) -> Vec<TxSnapshot> {
        self.drain()
    }

    fn import_state(&mut self, snap: Vec<TxSnapshot>, _ctx: (), now: Nanos) {
        for s in snap {
            self.enqueue(&s.path, s.pkt, s.wire, now);
        }
    }
}

/// Swaps the policy in `slot` for `fresh`, draining the old instance's
/// state through the plane's snapshot and replaying it into the new one.
/// Returns `(detached name, attached name)` for the swap trace event.
///
/// The disk plane's device-side twin is [`simdisk::SimDisk::replace_sched`]
/// (the device owns its discipline, so the kernel swaps through it); both
/// paths implement the same export/import sequence.
pub fn swap<P: Policy>(
    slot: &mut P,
    mut fresh: P,
    ctx: P::Ctx<'_>,
    now: Nanos,
) -> (&'static str, &'static str) {
    let from = slot.policy_name();
    let to = fresh.policy_name();
    let snap = slot.export_state();
    fresh.import_state(snap, ctx, now);
    *slot = fresh;
    (from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{build_cpu, build_disk, build_link, CpuPolicyKind, DiskPolicyKind};
    use rescon::Attributes;
    use sched::{CpuId, TaskId};
    use simdisk::ReqId;
    use simnet::{Dispatch, FlowKey, IpAddr, Packet, PacketKind, QdiscKind};

    #[test]
    fn plane_labels() {
        assert_eq!(Plane::Cpu.label(), "cpu");
        assert_eq!(Plane::Disk.label(), "disk");
        assert_eq!(Plane::Link.label(), "link");
    }

    #[test]
    fn cpu_swap_preserves_tasks_bindings_and_runnability() {
        let mut table = ContainerTable::new();
        let c = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut sched = build_cpu(CpuPolicyKind::DecayUsage, 2);
        sched.add_task(TaskId(1), &[c], CpuId(0), Nanos::ZERO);
        sched.add_task(TaskId(2), &[c], CpuId(1), Nanos::ZERO);
        sched.set_runnable(TaskId(1), true, Nanos::ZERO);
        let now = Nanos::from_millis(7);
        let (from, to) = swap(&mut sched, build_cpu(CpuPolicyKind::Edf, 2), (), now);
        assert_eq!((from, to), ("decay-usage", "edf"));
        assert_eq!(sched.cpu_of(TaskId(1)), Some(CpuId(0)));
        assert_eq!(sched.cpu_of(TaskId(2)), Some(CpuId(1)));
        assert!(sched.is_runnable(TaskId(1)));
        assert!(!sched.is_runnable(TaskId(2)));
        let p = sched.pick(CpuId(0), &table, now).unwrap();
        assert_eq!(p.task, TaskId(1));
    }

    #[test]
    fn cpu_export_import_export_is_a_fixpoint() {
        let mut table = ContainerTable::new();
        let c = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut a = build_cpu(CpuPolicyKind::Stride, 2);
        for i in 0..6 {
            a.add_task(TaskId(i), &[c], CpuId(i % 2), Nanos::ZERO);
            if i % 3 == 0 {
                a.set_runnable(TaskId(i), true, Nanos::ZERO);
            }
        }
        let snap = a.export_state();
        let mut b = build_cpu(CpuPolicyKind::Lottery(42), 2);
        b.import_state(snap.clone(), (), Nanos::ZERO);
        assert_eq!(b.export_state(), snap);
    }

    #[test]
    fn disk_swap_replays_queue_in_order() {
        let table = ContainerTable::new();
        let mut disk = build_disk(DiskPolicyKind::Share);
        for i in 0..5 {
            disk.enqueue(
                QueuedRequest {
                    id: ReqId(i),
                    file: i,
                    bytes: 4096,
                    charge_to: table.root(),
                    intr_cpu: 0,
                    extra_service: Nanos::ZERO,
                    fail: false,
                    span: 0,
                },
                &table,
            );
        }
        let (from, to) = {
            let fresh = build_disk(DiskPolicyKind::Fifo);
            swap(&mut disk, fresh, &table, Nanos::ZERO)
        };
        assert_eq!((from, to), ("share", "fifo"));
        for i in 0..5 {
            assert_eq!(disk.dequeue(&table).unwrap().id, ReqId(i));
        }
    }

    #[test]
    fn link_swap_replays_packets_in_arrival_order() {
        let mut link = build_link(QdiscKind::Wfq);
        for i in 0..4u64 {
            link.enqueue(
                &[(1, 1, None), (10 + i % 2, 1, None)],
                Packet::new(
                    FlowKey::new(IpAddr::new(10, 0, 0, 1), 4000, 80),
                    PacketKind::Data { bytes: 100 },
                ),
                Nanos::from_micros(10),
                Nanos::ZERO,
            );
        }
        let (from, to) = swap(&mut link, build_link(QdiscKind::Fifo), (), Nanos::ZERO);
        assert_eq!((from, to), ("wfq", "fifo"));
        assert_eq!(link.queued_pkts(), 4);
        let mut order = Vec::new();
        while let Dispatch::Start { owner, .. } = link.dispatch(Nanos::ZERO) {
            order.push(owner);
        }
        assert_eq!(order, [10, 11, 10, 11]);
    }
}
