//! The policy registry: the single place where policy kinds become
//! running instances. The kernel's old hard-coded constructor matches
//! (one in `Kernel::new` per plane) moved here so boot-time construction
//! and mid-run swaps build policies identically.

use sched::{
    DecayUsageScheduler, EdfScheduler, LotteryScheduler, MultiLevelScheduler, PerCpu, Scheduler,
    StrideScheduler,
};
use simdisk::{FifoIoSched, IoSched, ShareIoSched};
use simnet::{LinkSched, QdiscKind};

/// Which CPU scheduling policy to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuPolicyKind {
    /// Classic decay-usage time sharing over tasks (the "unmodified"
    /// baseline and the LRP configuration).
    DecayUsage,
    /// The paper's container-aware multi-level scheduler.
    MultiLevel,
    /// Flat stride scheduling (ablation).
    Stride,
    /// Flat lottery scheduling with the given seed (stride's randomized
    /// ablation twin).
    Lottery(u64),
    /// Earliest-deadline-first over per-container latency targets
    /// ([`rescon::Attributes::with_deadline`]).
    Edf,
}

impl CpuPolicyKind {
    /// The name the built policy will report, for display before
    /// construction.
    pub fn name(self) -> &'static str {
        match self {
            CpuPolicyKind::DecayUsage => "decay-usage",
            CpuPolicyKind::MultiLevel => "multilevel-rc",
            CpuPolicyKind::Stride => "stride",
            CpuPolicyKind::Lottery(_) => "lottery",
            CpuPolicyKind::Edf => "edf",
        }
    }
}

/// Which disk request-ordering policy to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskPolicyKind {
    /// Arrival order — the unmodified kernel's single disk queue, where a
    /// container with a deep backlog delays every other principal.
    Fifo,
    /// Per-container virtual-time dispatch weighted by effective share
    /// (the disk-bandwidth analogue of the container CPU guarantee).
    Share,
}

impl DiskPolicyKind {
    /// The name the built policy will report.
    pub fn name(self) -> &'static str {
        match self {
            DiskPolicyKind::Fifo => "fifo",
            DiskPolicyKind::Share => "share",
        }
    }
}

/// Builds the SMP CPU scheduler: one core policy instance per CPU behind
/// a [`PerCpu`] router. With one CPU this is a pure pass-through, so each
/// policy observes exactly the uniprocessor call sequence.
pub fn build_cpu(kind: CpuPolicyKind, ncpus: u32) -> Box<dyn Scheduler> {
    let n = ncpus.max(1) as usize;
    match kind {
        CpuPolicyKind::DecayUsage => Box::new(PerCpu::new(
            (0..n).map(|_| DecayUsageScheduler::new()).collect(),
        )),
        CpuPolicyKind::MultiLevel => Box::new(PerCpu::new(
            (0..n).map(|_| MultiLevelScheduler::new()).collect(),
        )),
        CpuPolicyKind::Stride => Box::new(PerCpu::new(
            (0..n).map(|_| StrideScheduler::new()).collect(),
        )),
        CpuPolicyKind::Lottery(seed) => Box::new(PerCpu::new(
            // Distinct per-CPU seeds keep the cores' draws independent;
            // CPU 0 keeps the configured seed, so a single-CPU run is
            // unchanged.
            (0..n)
                .map(|i| LotteryScheduler::new(seed.wrapping_add(i as u64)))
                .collect(),
        )),
        CpuPolicyKind::Edf => Box::new(PerCpu::new((0..n).map(|_| EdfScheduler::new()).collect())),
    }
}

/// Builds a disk request-ordering policy.
pub fn build_disk(kind: DiskPolicyKind) -> Box<dyn IoSched> {
    match kind {
        DiskPolicyKind::Fifo => Box::new(FifoIoSched::new()),
        DiskPolicyKind::Share => Box::new(ShareIoSched::new()),
    }
}

/// Builds a transmit link queueing policy.
pub fn build_link(qdisc: QdiscKind) -> Box<dyn LinkSched> {
    match qdisc {
        QdiscKind::Fifo => Box::new(simnet::FifoLink::new()),
        QdiscKind::Wfq => Box::new(simnet::WfqLink::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_built_instances() {
        for kind in [
            CpuPolicyKind::DecayUsage,
            CpuPolicyKind::MultiLevel,
            CpuPolicyKind::Stride,
            CpuPolicyKind::Lottery(7),
            CpuPolicyKind::Edf,
        ] {
            assert_eq!(build_cpu(kind, 1).name(), kind.name());
        }
        for kind in [DiskPolicyKind::Fifo, DiskPolicyKind::Share] {
            assert_eq!(build_disk(kind).name(), kind.name());
        }
        assert_eq!(build_link(QdiscKind::Fifo).name(), "fifo");
        assert_eq!(build_link(QdiscKind::Wfq).name(), "wfq");
    }

    #[test]
    fn build_cpu_clamps_zero_cpus() {
        assert_eq!(build_cpu(CpuPolicyKind::Stride, 0).ncpus(), 1);
        assert_eq!(build_cpu(CpuPolicyKind::Edf, 4).ncpus(), 4);
    }
}
