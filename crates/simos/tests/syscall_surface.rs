//! Exercises the complete §4.6 container API surface from inside an
//! application, including the Table 1 primitives: create, parent, attrs,
//! usage, thread binding, scheduler-binding reset, socket binding, and
//! descriptor passing between processes.

use std::cell::RefCell;
use std::rc::Rc;

use rescon::{Attributes, ContainerFd, RcError};
use sched::TaskId;
use simcore::Nanos;
use simos::{AppEvent, AppHandler, Kernel, KernelConfig, ListenSpec, NullWorld, Pid, SysCtx};

#[derive(Default)]
struct Outcome {
    created: bool,
    reparented: bool,
    attrs_roundtrip: bool,
    usage_after_compute_us: u64,
    bound: bool,
    socket_bound: bool,
    passed_fd: Option<ContainerFd>,
    strict_violation_seen: bool,
    disabled_errors: bool,
}

type SharedOutcome = Rc<RefCell<Outcome>>;

/// Walks the whole API in its Start handler, then burns CPU bound to its
/// container and checks the usage query.
struct ApiWalker {
    out: SharedOutcome,
    peer: Rc<RefCell<Option<Pid>>>,
}

impl AppHandler for ApiWalker {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                let mut out = self.out.borrow_mut();
                // Create a fixed-share parent and a time-shared child.
                let parent = sys
                    .create_container(None, Attributes::fixed_share(0.5).named("api-parent"))
                    .expect("create parent");
                let child = sys
                    .create_container(None, Attributes::time_shared(7))
                    .expect("create child");
                out.created = true;

                // Reparent the child under the parent (§4.6).
                sys.set_container_parent(child, Some(parent))
                    .expect("reparent");
                out.reparented = true;

                // Attributes round-trip.
                sys.set_container_attrs(child, Attributes::time_shared(9))
                    .expect("set attrs");
                let attrs = sys.container_attrs(child).expect("get attrs");
                out.attrs_roundtrip = attrs.policy.priority() == Some(9);

                // Strict-mode restriction (§5.1): a time-shared container
                // cannot parent.
                let ts = sys
                    .create_container(None, Attributes::time_shared(1))
                    .expect("create ts");
                let err = sys
                    .create_container(Some(ts), Attributes::time_shared(1))
                    .unwrap_err();
                out.strict_violation_seen = err == RcError::ParentNotFixedShare;

                // Bind this thread to the child and reset the scheduler
                // binding.
                sys.bind_thread(child).expect("bind thread");
                sys.reset_scheduler_binding();
                out.bound = true;

                // Bind a socket to the child.
                let l = sys.listen(ListenSpec::port(8080));
                sys.bind_socket(l, child).expect("bind socket");
                out.socket_bound = true;

                // Pass the parent container to the peer process.
                if let Some(peer) = *self.peer.borrow() {
                    let fd = sys.pass_container(parent, peer).expect("pass");
                    out.passed_fd = Some(fd);
                }
                drop(out);

                // Burn 500 us charged to `child`, then query usage.
                sys.compute(Nanos::from_micros(500), child.0 as u64);
            }
            AppEvent::Continue { tag } => {
                let fd = ContainerFd(tag as u32);
                let usage = sys.container_usage(fd).expect("usage");
                self.out.borrow_mut().usage_after_compute_us = usage.cpu.as_micros();
                let _ = sys.bind_thread_default();
                sys.sleep_until(Nanos::MAX, 0);
            }
            _ => {}
        }
    }
}

/// A do-nothing peer that receives the passed container.
struct Peer;
impl AppHandler for Peer {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
        if let AppEvent::Start = ev {
            sys.sleep_until(Nanos::MAX, 0);
        }
    }
}

#[test]
fn full_container_api_surface_works() {
    let out: SharedOutcome = Rc::new(RefCell::new(Outcome::default()));
    let peer_slot = Rc::new(RefCell::new(None));
    let mut k = Kernel::new(KernelConfig::resource_containers());
    let peer = k.spawn_process(
        Box::new(Peer),
        "peer",
        None,
        Attributes::time_shared(10),
        None,
    );
    *peer_slot.borrow_mut() = Some(peer);
    k.spawn_process(
        Box::new(ApiWalker {
            out: out.clone(),
            peer: peer_slot,
        }),
        "walker",
        None,
        Attributes::time_shared(10),
        None,
    );
    k.run(&mut NullWorld, Nanos::from_millis(50));

    let o = out.borrow();
    assert!(o.created);
    assert!(o.reparented);
    assert!(o.attrs_roundtrip);
    assert!(o.strict_violation_seen);
    assert!(o.bound);
    assert!(o.socket_bound);
    assert!(o.passed_fd.is_some());
    // The 500 us compute was charged to the bound container (plus small
    // syscall costs that ran while bound).
    assert!(
        (450..700).contains(&o.usage_after_compute_us),
        "usage = {} us",
        o.usage_after_compute_us
    );
    k.containers.check_invariants();
}

#[test]
fn container_api_disabled_on_baseline_kernels() {
    struct Probe {
        out: SharedOutcome,
    }
    impl AppHandler for Probe {
        fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
            if let AppEvent::Start = ev {
                assert!(!sys.containers_enabled());
                let r = sys.create_container(None, Attributes::time_shared(1));
                self.out.borrow_mut().disabled_errors = r.is_err();
                sys.sleep_until(Nanos::MAX, 0);
            }
        }
    }
    let out: SharedOutcome = Rc::new(RefCell::new(Outcome::default()));
    let mut k = Kernel::new(KernelConfig::unmodified());
    k.spawn_process(
        Box::new(Probe { out: out.clone() }),
        "probe",
        None,
        Attributes::time_shared(10),
        None,
    );
    k.run(&mut NullWorld, Nanos::from_millis(5));
    assert!(out.borrow().disabled_errors);
}

/// `read_file`: the first read misses (disk service time lands on the
/// caller's container, `cached: false`), the second read of the same file
/// hits the buffer cache (`cached: true`, no extra disk time), and the
/// resident bytes are charged to the container's memory.
#[test]
fn read_file_miss_then_hit() {
    #[derive(Default)]
    struct DiskOut {
        first_cached: Option<bool>,
        second_cached: Option<bool>,
        principal: Option<rescon::ContainerId>,
    }
    struct Reader {
        out: Rc<RefCell<DiskOut>>,
    }
    impl AppHandler for Reader {
        fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
            match ev {
                AppEvent::Start => {
                    self.out.borrow_mut().principal = sys.default_container();
                    sys.read_file(7, 8192, 1, None);
                }
                AppEvent::FileRead { tag: 1, cached, .. } => {
                    self.out.borrow_mut().first_cached = Some(cached);
                    sys.read_file(7, 8192, 2, None);
                }
                AppEvent::FileRead { tag: 2, cached, .. } => {
                    self.out.borrow_mut().second_cached = Some(cached);
                    sys.sleep_until(Nanos::MAX, 0);
                }
                _ => {}
            }
        }
    }
    let out = Rc::new(RefCell::new(DiskOut::default()));
    let mut k = Kernel::new(KernelConfig::resource_containers());
    k.spawn_process(
        Box::new(Reader { out: out.clone() }),
        "reader",
        None,
        Attributes::time_shared(10),
        None,
    );
    k.run(&mut NullWorld, Nanos::from_millis(200));
    assert_eq!(out.borrow().first_cached, Some(false));
    assert_eq!(out.borrow().second_cached, Some(true));
    // The one miss is the disk's whole history, all charged to containers.
    assert!(!k.disk.total_busy().is_zero());
    assert_eq!(
        k.containers.subtree_disk(k.containers.root()).unwrap() + k.containers.reaped_disk(),
        k.disk.total_busy()
    );
    // 8 KiB resident in the buffer cache, charged as container memory.
    assert_eq!(k.disk_cache.used(), 8192);
    let principal = out.borrow().principal.expect("default container");
    assert_eq!(k.disk_cache.resident_bytes(principal), 8192);
    assert_eq!(k.containers.usage(principal).unwrap().mem_bytes, 8192);
}

/// In-model Table 1: the kernel charges the paper's measured cost for each
/// container primitive; N invocations must cost N x Table 1.
#[test]
fn in_sim_primitive_costs_match_table1() {
    struct Burner {
        charged_us: Rc<RefCell<u64>>,
    }
    const N: u64 = 1000;
    impl AppHandler for Burner {
        fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
            match ev {
                AppEvent::Start => {
                    // N x (create + destroy): 2.36 + 2.10 us each.
                    for _ in 0..N {
                        let fd = sys
                            .create_container(None, Attributes::time_shared(1))
                            .expect("create");
                        sys.close_container(fd).expect("destroy");
                    }
                    sys.compute(Nanos::ZERO, 1);
                }
                AppEvent::Continue { tag: 1 } => {
                    // All queued costs have now been consumed.
                    let c = sys.default_container().unwrap();
                    // Usage is recorded on the process's container (the
                    // thread never rebound).
                    let fd = sys.open_container(c).expect("handle");
                    let usage = sys.container_usage(fd).expect("usage");
                    *self.charged_us.borrow_mut() = usage.cpu.as_micros();
                    sys.sleep_until(Nanos::MAX, 0);
                }
                _ => {}
            }
        }
    }
    let charged = Rc::new(RefCell::new(0));
    let mut k = Kernel::new(KernelConfig::resource_containers());
    k.spawn_process(
        Box::new(Burner {
            charged_us: charged.clone(),
        }),
        "burner",
        None,
        Attributes::time_shared(10),
        None,
    );
    k.run(&mut NullWorld, Nanos::from_millis(100));
    // Expected: 1000 x (2.36 + 2.10) us = 4460 us, plus the Start upcall
    // and the final handle/usage calls (~10 us of slop).
    let got = *charged.borrow();
    assert!(
        (4460..4490).contains(&got),
        "charged {got} us, expected ~4460 us (Table 1 costs)"
    );
}
