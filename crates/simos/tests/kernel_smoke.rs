//! End-to-end kernel smoke tests: a minimal HTTP-ish server app and a
//! scripted client drive the full receive path (handshake, data, response,
//! teardown) under each network discipline.

use rescon::Attributes;
use sched::TaskId;
use simcore::Nanos;
use simnet::{FlowKey, IpAddr, Packet, PacketKind, SockId};
use simos::{AppEvent, AppHandler, Kernel, KernelConfig, ListenSpec, SysCtx, World, WorldAction};

/// A tiny event-driven server: accept, read request, burn some user CPU,
/// send a 1 KB response, close.
struct MiniServer {
    listener: Option<SockId>,
    conns: Vec<SockId>,
    served: std::rc::Rc<std::cell::Cell<u64>>,
    /// Continuations in flight; `select()` is re-armed only when zero
    /// (a blocked wait must be the last queued work of the thread).
    pending: u32,
}

const PARSE_TAG_BASE: u64 = 1000;

impl AppHandler for MiniServer {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _thread: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                let l = sys.listen(ListenSpec::port(80));
                self.listener = Some(l);
                self.rearm(sys);
            }
            AppEvent::SelectReady { ready } => {
                for s in ready {
                    if Some(s) == self.listener {
                        while let Some(conn) = sys.accept(self.listener.unwrap()) {
                            self.conns.push(conn);
                        }
                    } else {
                        let bytes = sys.read(s).map(|(b, _eof)| b).unwrap_or(0);
                        if bytes > 0 {
                            // Parse + handle: 40 us of user CPU, then respond.
                            self.pending += 1;
                            sys.compute(Nanos::from_micros(40), PARSE_TAG_BASE + s.as_u64());
                        }
                    }
                }
                self.rearm(sys);
            }
            AppEvent::Continue { tag } => {
                self.pending = self.pending.saturating_sub(1);
                if tag >= PARSE_TAG_BASE {
                    // Find the connection by its id encoding.
                    if let Some(&conn) = self
                        .conns
                        .iter()
                        .find(|c| c.as_u64() == tag - PARSE_TAG_BASE)
                    {
                        let _ = sys.send(conn, 1024);
                        let _ = sys.close(conn);
                        self.conns.retain(|&c| c != conn);
                        self.served.set(self.served.get() + 1);
                    }
                }
                self.rearm(sys);
            }
            _ => self.rearm(sys),
        }
    }
}

impl MiniServer {
    fn rearm(&self, sys: &mut SysCtx<'_>) {
        if self.pending > 0 {
            return; // Wait until all continuations have run.
        }
        let mut socks = Vec::new();
        if let Some(l) = self.listener {
            socks.push(l);
        }
        socks.extend_from_slice(&self.conns);
        sys.select_wait(socks);
    }
}

/// A scripted client: opens one connection, sends one request, records the
/// response time, and repeats.
struct LoopClient {
    addr: IpAddr,
    next_port: u16,
    started: Vec<Nanos>,
    pub completions: Vec<Nanos>,
}

impl LoopClient {
    fn new(addr: IpAddr) -> Self {
        LoopClient {
            addr,
            next_port: 1000,
            started: Vec::new(),
            completions: Vec::new(),
        }
    }

    fn flow(&self) -> FlowKey {
        FlowKey::new(self.addr, self.next_port, 80)
    }

    fn start_request(&mut self, now: Nanos, actions: &mut Vec<WorldAction>) {
        self.next_port += 1;
        self.started.push(now);
        actions.push(WorldAction::SendPacket {
            pkt: Packet::new(self.flow(), PacketKind::Syn),
            delay: Nanos::ZERO,
        });
    }
}

impl World for LoopClient {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        if pkt.flow != self.flow() {
            return; // Stale flow (FIN of a finished connection).
        }
        match pkt.kind {
            PacketKind::SynAck => {
                actions.push(WorldAction::SendPacket {
                    pkt: Packet::new(pkt.flow, PacketKind::Ack),
                    delay: Nanos::ZERO,
                });
                actions.push(WorldAction::SendPacket {
                    pkt: Packet::new(pkt.flow, PacketKind::Data { bytes: 200 }),
                    delay: Nanos::ZERO,
                });
            }
            PacketKind::Data { .. } => {
                self.completions.push(now);
                // Immediately issue the next request on a new connection.
                self.start_request(now, actions);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        self.start_request(now, actions);
    }
}

fn run_config(cfg: KernelConfig, secs: u64) -> (u64, simos::KernelStats) {
    let served = std::rc::Rc::new(std::cell::Cell::new(0));
    let mut k = Kernel::new(cfg);
    k.spawn_process(
        Box::new(MiniServer {
            listener: None,
            conns: Vec::new(),
            served: served.clone(),
            pending: 0,
        }),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut client = LoopClient::new(IpAddr::new(10, 0, 0, 1));
    k.arm_world_timer(0, Nanos::from_micros(10));
    k.run(&mut client, Nanos::from_secs(secs));
    // The server may have answered a request whose response was still on
    // the wire at cutoff.
    let diff = served.get() as i64 - client.completions.len() as i64;
    assert!(
        (0..=4).contains(&diff),
        "client {} vs server {}",
        client.completions.len(),
        served.get()
    );
    (served.get(), *k.stats())
}

#[test]
fn serves_requests_under_interrupt_discipline() {
    let (served, stats) = run_config(KernelConfig::unmodified(), 1);
    assert!(served > 100, "served = {served}");
    assert!(stats.pkts_in > 0 && stats.pkts_out > 0);
    assert!(!Nanos::is_zero(stats.interrupt_cpu));
}

#[test]
fn serves_requests_under_lrp_discipline() {
    let (served, _) = run_config(KernelConfig::lrp(), 1);
    assert!(served > 100, "served = {served}");
}

#[test]
fn serves_requests_under_container_discipline() {
    let (served, _) = run_config(KernelConfig::resource_containers(), 1);
    assert!(served > 100, "served = {served}");
}

#[test]
fn single_client_latency_roughly_one_request_cost() {
    // An unloaded server must answer in ~(request CPU + wire latency),
    // i.e. well under a millisecond.
    let served = std::rc::Rc::new(std::cell::Cell::new(0));
    let mut k = Kernel::new(KernelConfig::unmodified());
    k.spawn_process(
        Box::new(MiniServer {
            listener: None,
            conns: Vec::new(),
            served: served.clone(),
            pending: 0,
        }),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut client = LoopClient::new(IpAddr::new(10, 0, 0, 1));
    k.arm_world_timer(0, Nanos::ZERO);
    k.run(&mut client, Nanos::from_millis(100));
    assert!(client.completions.len() > 10);
    // Steady-state inter-completion gap = per-request latency.
    let gaps: Vec<u64> = client
        .completions
        .windows(2)
        .map(|w| (w[1] - w[0]).as_nanos())
        .collect();
    let avg = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
    assert!(
        avg < 1_500_000.0,
        "avg per-request latency {avg} ns too high"
    );
}

#[test]
fn deterministic_across_runs() {
    let a = run_config(KernelConfig::resource_containers(), 1);
    let b = run_config(KernelConfig::resource_containers(), 1);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1.pkts_in, b.1.pkts_in);
    assert_eq!(a.1.charged_cpu, b.1.charged_cpu);
}

#[test]
fn cpu_accounting_conserves() {
    let served = std::rc::Rc::new(std::cell::Cell::new(0));
    let mut k = Kernel::new(KernelConfig::lrp());
    k.spawn_process(
        Box::new(MiniServer {
            listener: None,
            conns: Vec::new(),
            served,
            pending: 0,
        }),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut client = LoopClient::new(IpAddr::new(10, 0, 0, 1));
    k.arm_world_timer(0, Nanos::ZERO);
    let horizon = Nanos::from_secs(1);
    k.run(&mut client, horizon);
    let s = k.stats();
    // charged + interrupt + overhead + idle == elapsed (within the final
    // partial slice).
    let total = s.total();
    let diff = total
        .saturating_sub(horizon)
        .max(horizon.saturating_sub(total));
    assert!(
        diff < Nanos::from_micros(500),
        "accounting drift {diff} (total {total})"
    );
    // And the charged CPU equals what the container table recorded.
    let root_cpu =
        k.containers.subtree_cpu(k.containers.root()).unwrap() + k.containers.reaped_cpu();
    assert_eq!(root_cpu, s.charged_cpu);
}
