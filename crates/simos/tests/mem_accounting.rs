//! `simmem` teardown tests: every path that destroys a connection or
//! process must return its charged kernel memory — socket buffers,
//! protocol control blocks, thread stacks — to zero. A leak on any of
//! these paths would let a tenant's bill drift upward forever.

use rescon::{Attributes, MemClass};
use sched::TaskId;
use simcore::Nanos;
use simnet::{FlowKey, IpAddr, Packet, PacketKind, SockId};
use simos::{
    AppEvent, AppHandler, Kernel, KernelConfig, ListenSpec, MemParams, NullWorld, SysCtx, World,
    WorldAction,
};
use std::cell::RefCell;
use std::rc::Rc;

const SOCKBUF: u64 = 16 * 1024;
const PCB: u64 = 1024;
const N_CONNS: u64 = 3;

fn mem_kernel() -> Kernel {
    let mut cfg =
        KernelConfig::resource_containers().with_mem(MemParams::new().with_pcb_bytes(PCB));
    cfg.net.sockbuf_bytes = SOCKBUF;
    Kernel::new(cfg)
}

fn conn_bytes(k: &Kernel) -> (u64, u64) {
    let acct = k.mem_acct().expect("memory-configured kernel");
    (
        acct.class_bytes(MemClass::SockBuf),
        acct.class_bytes(MemClass::ConnState),
    )
}

/// Accepting server: `close_on_accept` closes each connection right away,
/// otherwise connections stay open until something external kills them.
/// An optional timer deadline makes the whole process exit mid-flight.
struct Server {
    listener: Option<SockId>,
    accepted: Rc<RefCell<u64>>,
    close_on_accept: bool,
    exit_at: Option<Nanos>,
}

impl AppHandler for Server {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                let l = sys.listen(ListenSpec::port(80));
                self.listener = Some(l);
                if let Some(t) = self.exit_at {
                    sys.sleep_until(t, 1);
                }
                sys.select_wait(vec![l]);
            }
            AppEvent::SelectReady { .. } => {
                while let Some(conn) = sys.accept(self.listener.unwrap()) {
                    *self.accepted.borrow_mut() += 1;
                    if self.close_on_accept {
                        let _ = sys.close(conn);
                    }
                }
                sys.select_wait(vec![self.listener.unwrap()]);
            }
            AppEvent::Timer { tag: 1 } => sys.exit(),
            _ => {}
        }
    }
}

fn spawn_server(k: &mut Kernel, close_on_accept: bool, exit_at: Option<Nanos>) -> Rc<RefCell<u64>> {
    let accepted = Rc::new(RefCell::new(0u64));
    k.spawn_process(
        Box::new(Server {
            listener: None,
            accepted: accepted.clone(),
            close_on_accept,
            exit_at,
        }),
        "srv",
        None,
        Attributes::time_shared(10),
        None,
    );
    accepted
}

fn flow(i: u64) -> FlowKey {
    FlowKey::new(IpAddr::new(10, 0, 0, i as u8 + 1), 2000, 80)
}

/// Completes handshakes for timer tags below `N_CONNS`; timer tags of
/// `100 + i` send an Rst on flow `i` (unused unless armed).
struct Clients;

impl World for Clients {
    fn on_packet(&mut self, pkt: Packet, _n: Nanos, a: &mut Vec<WorldAction>) {
        if pkt.kind == PacketKind::SynAck {
            a.push(WorldAction::SendPacket {
                pkt: Packet::new(pkt.flow, PacketKind::Ack),
                delay: Nanos::ZERO,
            });
        }
    }
    fn on_timer(&mut self, tag: u64, _n: Nanos, a: &mut Vec<WorldAction>) {
        let (kind, i) = if tag >= 100 {
            (PacketKind::Rst, tag - 100)
        } else {
            (PacketKind::Syn, tag)
        };
        a.push(WorldAction::SendPacket {
            pkt: Packet::new(flow(i), kind),
            delay: Nanos::ZERO,
        });
    }
}

fn arm_handshakes(k: &mut Kernel) {
    for i in 0..N_CONNS {
        k.arm_world_timer(i, Nanos::from_micros(10 * (i + 1)));
    }
}

#[test]
fn server_close_releases_sockbuf_and_pcb() {
    let mut k = mem_kernel();
    let accepted = spawn_server(&mut k, true, None);
    arm_handshakes(&mut k);
    k.run(&mut Clients, Nanos::from_millis(50));
    assert_eq!(*accepted.borrow(), N_CONNS);
    assert_eq!(conn_bytes(&k), (0, 0), "close leaked connection memory");
    k.containers.check_invariants();
}

#[test]
fn client_rst_releases_sockbuf_and_pcb() {
    let mut k = mem_kernel();
    let accepted = spawn_server(&mut k, false, None);
    arm_handshakes(&mut k);
    for i in 0..N_CONNS {
        k.arm_world_timer(100 + i, Nanos::from_millis(10));
    }
    // Mid-run, all three connections are established and charged.
    k.run(&mut Clients, Nanos::from_millis(5));
    assert_eq!(*accepted.borrow(), N_CONNS);
    assert_eq!(conn_bytes(&k), (N_CONNS * SOCKBUF, N_CONNS * PCB));
    // The resets land at 10 ms and must return every byte.
    k.run(&mut Clients, Nanos::from_millis(50));
    assert_eq!(conn_bytes(&k), (0, 0), "reset leaked connection memory");
    k.containers.check_invariants();
}

#[test]
fn unanswered_syns_charge_nothing_and_expire_clean() {
    // Half-open connections hold no charged memory; when the SYN-queue
    // entries expire nothing may be released twice (which would underflow
    // the accountant's saturating counters to a visible wrong total).
    struct SynOnly;
    impl World for SynOnly {
        fn on_packet(&mut self, _p: Packet, _n: Nanos, _a: &mut Vec<WorldAction>) {}
        fn on_timer(&mut self, tag: u64, _n: Nanos, a: &mut Vec<WorldAction>) {
            a.push(WorldAction::SendPacket {
                pkt: Packet::new(flow(tag), PacketKind::Syn),
                delay: Nanos::ZERO,
            });
        }
    }
    let mut k = mem_kernel();
    let accepted = spawn_server(&mut k, false, None);
    arm_handshakes(&mut k);
    // Run well past the SYN-queue expiry.
    k.run(&mut SynOnly, Nanos::from_secs(8));
    assert_eq!(*accepted.borrow(), 0);
    assert_eq!(conn_bytes(&k), (0, 0));
    k.containers.check_invariants();
}

#[test]
fn process_exit_releases_connections_and_stacks() {
    let mut k = mem_kernel();
    let accepted = spawn_server(&mut k, false, Some(Nanos::from_millis(10)));
    arm_handshakes(&mut k);
    k.run(&mut Clients, Nanos::from_millis(5));
    assert_eq!(*accepted.borrow(), N_CONNS);
    assert_eq!(conn_bytes(&k), (N_CONNS * SOCKBUF, N_CONNS * PCB));
    let stacks = k.mem_acct().unwrap().class_bytes(MemClass::ThreadStack);
    assert!(stacks > 0, "live threads must hold charged stacks");
    // The server exits at 10 ms with all three connections open.
    k.run(&mut Clients, Nanos::from_millis(50));
    assert_eq!(conn_bytes(&k), (0, 0), "exit leaked connection memory");
    assert_eq!(
        k.mem_acct().unwrap().class_bytes(MemClass::ThreadStack),
        0,
        "exit leaked thread stacks"
    );
    k.containers.check_invariants();
}

#[test]
fn memory_unconfigured_kernel_reports_no_accountant() {
    let k = Kernel::new(KernelConfig::resource_containers());
    assert!(k.mem_acct().is_none());
    let _ = NullWorld; // silence unused-import lint on feature-combos
}
