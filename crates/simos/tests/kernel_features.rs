//! Focused kernel-feature tests: timers, IPC, memory limits, process
//! teardown, and scheduler-binding pruning.

use rescon::Attributes;
use sched::TaskId;
use simcore::Nanos;
use simnet::{CidrFilter, FlowKey, IpAddr, Packet, PacketKind, SockId};
use simos::{
    AppEvent, AppHandler, Kernel, KernelConfig, ListenSpec, NullWorld, Pid, SysCtx, World,
    WorldAction,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Records every event it sees, then re-parks.
struct Recorder {
    log: Rc<RefCell<Vec<String>>>,
    deadline: Nanos,
}

impl AppHandler for Recorder {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                self.log.borrow_mut().push("start".into());
                sys.sleep_until(self.deadline, 7);
            }
            AppEvent::Timer { tag } => {
                self.log
                    .borrow_mut()
                    .push(format!("timer{tag}@{}", sys.now().as_micros()));
                sys.sleep_until(Nanos::MAX, 99);
            }
            AppEvent::Ipc { from, tag } => {
                self.log.borrow_mut().push(format!("ipc {from} {tag}"));
            }
            _ => {}
        }
    }
}

#[test]
fn timers_fire_at_their_deadline() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut k = Kernel::new(KernelConfig::unmodified());
    k.spawn_process(
        Box::new(Recorder {
            log: log.clone(),
            deadline: Nanos::from_millis(5),
        }),
        "rec",
        None,
        Attributes::time_shared(10),
        None,
    );
    k.run(&mut NullWorld, Nanos::from_millis(20));
    let entries = log.borrow().clone();
    assert_eq!(entries[0], "start");
    assert!(entries[1].starts_with("timer7@50"), "{entries:?}");
}

/// A sender process that pings a peer over IPC.
struct Pinger {
    peer: Rc<RefCell<Option<Pid>>>,
}

impl AppHandler for Pinger {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
        if let AppEvent::Start = ev {
            if let Some(peer) = *self.peer.borrow() {
                sys.send_ipc(peer, 42);
            }
            sys.sleep_until(Nanos::MAX, 0);
        }
    }
}

#[test]
fn ipc_doorbell_wakes_a_parked_process() {
    let log = Rc::new(RefCell::new(Vec::new()));
    let peer = Rc::new(RefCell::new(None));
    let mut k = Kernel::new(KernelConfig::unmodified());
    let receiver = k.spawn_process(
        Box::new(Recorder {
            log: log.clone(),
            deadline: Nanos::MAX,
        }),
        "recv",
        None,
        Attributes::time_shared(10),
        None,
    );
    *peer.borrow_mut() = Some(receiver);
    k.spawn_process(
        Box::new(Pinger { peer }),
        "ping",
        None,
        Attributes::time_shared(10),
        None,
    );
    k.run(&mut NullWorld, Nanos::from_millis(5));
    let entries = log.borrow().clone();
    assert!(
        entries
            .iter()
            .any(|e| e.starts_with("ipc pid") && e.ends_with("42")),
        "{entries:?}"
    );
}

/// A minimal accepting server whose connections share one limited
/// container.
struct LimitServer {
    listener: Option<SockId>,
    accepted: Rc<RefCell<u64>>,
}

impl AppHandler for LimitServer {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                let l = sys.listen(ListenSpec::port(80));
                self.listener = Some(l);
                sys.select_wait(vec![l]);
            }
            AppEvent::SelectReady { .. } => {
                while let Some(_c) = sys.accept(self.listener.unwrap()) {
                    *self.accepted.borrow_mut() += 1;
                    // Never read or close: connections pile up.
                }
                sys.select_wait(vec![self.listener.unwrap()]);
            }
            _ => {}
        }
    }
}

#[test]
fn socket_buffer_memory_limit_refuses_excess_connections() {
    // The process's default container gets a memory limit of 4 sockbufs.
    let accepted = Rc::new(RefCell::new(0u64));
    let mut cfg = KernelConfig::resource_containers();
    cfg.net.sockbuf_bytes = 16 * 1024;
    let mut k = Kernel::new(cfg);
    k.spawn_process(
        Box::new(LimitServer {
            listener: None,
            accepted: accepted.clone(),
        }),
        "srv",
        None,
        Attributes::time_shared(10).with_mem_limit(4 * 16 * 1024),
        None,
    );

    // Ten clients try to connect; only four sockbufs fit.
    struct Syn10;
    impl World for Syn10 {
        fn on_packet(&mut self, pkt: Packet, _n: Nanos, a: &mut Vec<WorldAction>) {
            if pkt.kind == PacketKind::SynAck {
                a.push(WorldAction::SendPacket {
                    pkt: Packet::new(pkt.flow, PacketKind::Ack),
                    delay: Nanos::ZERO,
                });
            }
        }
        fn on_timer(&mut self, tag: u64, _n: Nanos, a: &mut Vec<WorldAction>) {
            a.push(WorldAction::SendPacket {
                pkt: Packet::new(
                    FlowKey::new(IpAddr::new(10, 0, 0, tag as u8 + 1), 2000, 80),
                    PacketKind::Syn,
                ),
                delay: Nanos::ZERO,
            });
        }
    }
    for i in 0..10 {
        k.arm_world_timer(i, Nanos::from_micros(10 * (i + 1)));
    }
    k.run(&mut Syn10, Nanos::from_millis(50));
    assert_eq!(*accepted.borrow(), 4, "memory limit must cap connections");
    k.containers.check_invariants();
}

#[test]
fn process_exit_releases_all_kernel_state() {
    /// Starts, listens, then exits immediately.
    struct Ephemeral;
    impl AppHandler for Ephemeral {
        fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
            if let AppEvent::Start = ev {
                let _l = sys.listen(ListenSpec::port(80));
                let fd = sys.create_container(None, Attributes::time_shared(5)).ok();
                let _ = fd;
                sys.exit();
            }
        }
    }
    let mut k = Kernel::new(KernelConfig::resource_containers());
    let pid = k.spawn_process(
        Box::new(Ephemeral),
        "tmp",
        None,
        Attributes::time_shared(10),
        None,
    );
    k.run(&mut NullWorld, Nanos::from_millis(5));
    assert!(!k.process_alive(pid));
    assert_eq!(k.process_count(), 0);
    assert_eq!(k.stack.socket_count(), 0);
    // Only the root container survives.
    assert_eq!(k.containers.len(), 1);
    k.containers.check_invariants();
}

/// Accepts connections on the scalable event API, registering every
/// socket — then immediately *deregisters* the first accepted
/// connection, leaving it open. Per-socket event counts distinguish the
/// silenced socket from its still-registered sibling.
struct DeregServer {
    listener: Option<SockId>,
    conns: Rc<RefCell<Vec<SockId>>>,
    events: Rc<RefCell<std::collections::HashMap<u64, u32>>>,
}

impl AppHandler for DeregServer {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                let l = sys.listen(ListenSpec::port(80));
                self.listener = Some(l);
                sys.event_register(l);
                sys.event_wait();
            }
            AppEvent::EventReady { events } => {
                for s in events {
                    if Some(s) == self.listener {
                        while let Some(conn) = sys.accept(self.listener.unwrap()) {
                            sys.event_register(conn);
                            if self.conns.borrow().is_empty() {
                                sys.event_deregister(conn);
                            }
                            self.conns.borrow_mut().push(conn);
                        }
                    } else {
                        *self.events.borrow_mut().entry(s.as_u64()).or_insert(0) += 1;
                        let _ = sys.read(s);
                    }
                }
                sys.event_wait();
            }
            _ => {}
        }
    }
}

/// §5.5's deregistration half: a socket removed from the event set stays
/// open and keeps receiving data, but delivers no further events — while
/// a sibling socket registered the same way keeps delivering.
#[test]
fn deregistered_socket_stays_open_but_delivers_no_events() {
    let conns = Rc::new(RefCell::new(Vec::new()));
    let events = Rc::new(RefCell::new(std::collections::HashMap::new()));
    let mut k = Kernel::new(KernelConfig::resource_containers());
    k.spawn_process(
        Box::new(DeregServer {
            listener: None,
            conns: conns.clone(),
            events: events.clone(),
        }),
        "srv",
        None,
        Attributes::time_shared(10),
        None,
    );

    /// Two clients handshake, then keep sending data on both flows.
    struct TwoTalkers;
    impl TwoTalkers {
        fn flow(i: u64) -> FlowKey {
            FlowKey::new(IpAddr::new(10, 0, 0, i as u8 + 1), 2000, 80)
        }
    }
    impl World for TwoTalkers {
        fn on_packet(&mut self, pkt: Packet, _n: Nanos, a: &mut Vec<WorldAction>) {
            if pkt.kind == PacketKind::SynAck {
                a.push(WorldAction::SendPacket {
                    pkt: Packet::new(pkt.flow, PacketKind::Ack),
                    delay: Nanos::ZERO,
                });
            }
        }
        fn on_timer(&mut self, tag: u64, _n: Nanos, a: &mut Vec<WorldAction>) {
            if tag < 2 {
                a.push(WorldAction::SendPacket {
                    pkt: Packet::new(Self::flow(tag), PacketKind::Syn),
                    delay: Nanos::ZERO,
                });
            } else {
                // Periodic data on both established flows.
                for i in 0..2 {
                    a.push(WorldAction::SendPacket {
                        pkt: Packet::new(Self::flow(i), PacketKind::Data { bytes: 64 }),
                        delay: Nanos::ZERO,
                    });
                }
            }
        }
    }
    // Client 0 connects first (its conn is the deregistered one), client
    // 1 second; then five rounds of data on both flows.
    k.arm_world_timer(0, Nanos::from_micros(10));
    k.arm_world_timer(1, Nanos::from_micros(200));
    for round in 0..5u64 {
        k.arm_world_timer(2 + round, Nanos::from_millis(1 + round));
    }
    k.run(&mut TwoTalkers, Nanos::from_millis(10));

    let conns = conns.borrow();
    assert_eq!(conns.len(), 2, "both clients must connect");
    let events = events.borrow();
    assert_eq!(
        events.get(&conns[0].as_u64()),
        None,
        "deregistered socket delivered events: {events:?}"
    );
    assert!(
        events.get(&conns[1].as_u64()).copied().unwrap_or(0) >= 1,
        "registered sibling delivered nothing: {events:?}"
    );
    // Deregistration is not close: listener + both conns are still open.
    assert_eq!(k.stack.socket_count(), 3);
    k.containers.check_invariants();
}

/// Listens on two classes — an attacker prefix and everyone else, each
/// bound to its own container — and never completes handshakes, so the
/// SYN queues only drain by expiry.
struct TwoClassSink {
    listeners: Vec<SockId>,
}

impl AppHandler for TwoClassSink {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _t: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                let classes = [
                    (
                        CidrFilter::new(IpAddr::new(192, 168, 0, 0), 16),
                        "attacker-class",
                    ),
                    (CidrFilter::any(), "good-class"),
                ];
                for (filter, name) in classes {
                    let l = sys.listen(ListenSpec::port(80).filter(filter));
                    if let Ok(fd) =
                        sys.create_container(None, Attributes::time_shared(10).named(name))
                    {
                        let _ = sys.bind_socket(l, fd);
                    }
                    self.listeners.push(l);
                }
                sys.select_wait(self.listeners.clone());
            }
            AppEvent::SelectReady { .. } => sys.select_wait(self.listeners.clone()),
            _ => {}
        }
    }
}

/// §5.7 made cheap: admission drops happen before any protocol work is
/// queued, and each one is charged to the container the packet
/// classified to — the attacker's class absorbs its own overload while
/// the well-behaved class is charged nothing.
#[test]
fn admission_drops_charge_the_classifying_container() {
    let mut k = Kernel::new(KernelConfig::resource_containers().with_admission(4, 0));
    k.spawn_process(
        Box::new(TwoClassSink {
            listeners: Vec::new(),
        }),
        "sink",
        None,
        Attributes::time_shared(10),
        None,
    );

    /// One burst: forty attacker SYNs (distinct flows, never acked) and
    /// two legitimate ones.
    struct ClassedSyns;
    impl World for ClassedSyns {
        fn on_packet(&mut self, _p: Packet, _n: Nanos, _a: &mut Vec<WorldAction>) {}
        fn on_timer(&mut self, _tag: u64, _n: Nanos, a: &mut Vec<WorldAction>) {
            for i in 0..40u16 {
                a.push(WorldAction::SendPacket {
                    pkt: Packet::new(
                        FlowKey::new(IpAddr::new(192, 168, 1, (i % 250) as u8 + 1), 3000 + i, 80),
                        PacketKind::Syn,
                    ),
                    delay: Nanos::ZERO,
                });
            }
            for i in 0..2u16 {
                a.push(WorldAction::SendPacket {
                    pkt: Packet::new(
                        FlowKey::new(IpAddr::new(10, 0, 0, i as u8 + 1), 4000 + i, 80),
                        PacketKind::Syn,
                    ),
                    delay: Nanos::ZERO,
                });
            }
        }
    }
    // Two bursts: the first fills the attacker listener's SYN queue well
    // past the budget (admission sees an empty queue until the kernel
    // thread has run); the second, a millisecond later, is refused
    // packet-for-packet at interrupt level.
    k.arm_world_timer(0, Nanos::from_micros(10));
    k.arm_world_timer(1, Nanos::from_millis(1));
    k.run(&mut ClassedSyns, Nanos::from_millis(5));

    let by_name = |name: &str| {
        k.containers
            .iter()
            .find(|(_, c)| c.attrs().name.as_deref() == Some(name))
            .map(|(id, _)| id)
            .expect("class container exists")
    };
    let attacker = by_name("attacker-class");
    let good = by_name("good-class");

    // The second burst's 40 attacker SYNs all arrive over budget; every
    // refusal lands on the attacker's ledger. The good class never
    // exceeds its budget of 4 (two SYNs per burst), so it pays nothing.
    assert_eq!(k.drop_charges_of(attacker), 40);
    assert_eq!(k.drop_charges_of(good), 0, "victim charged for the flood");
    assert_eq!(k.stats().early_drops, 40);
    assert_eq!(k.drop_charges().values().sum::<u64>(), 40);
    // The dropped packets' wire bytes were charged to the attacker too.
    let usage = k.containers.usage(attacker).unwrap();
    assert!(usage.bytes_rx > 0, "drops charged no rx bytes");
    assert_eq!(k.containers.usage(good).unwrap().bytes_rx, 0);
    k.containers.check_invariants();
}
