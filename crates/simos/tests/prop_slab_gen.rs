//! Generation-counter property tests for the kernel's slab side tables.
//!
//! The engine rewrite moved per-connection kernel and application state
//! out of `HashMap<SockId, _>` into [`SockTable`]s indexed by arena
//! slot. Socket slots ARE recycled (the net stack's arena bumps a
//! generation on free), so the table must behave exactly like a map
//! keyed by the full `(slot, generation)` id: a stale id — one whose
//! slot has since been freed or recycled — must always miss, and a live
//! id must always hit its own value and nobody else's. These tests run
//! random alloc/free/read programs against a `HashMap` model and check
//! that no recycled id can ever reach another generation's state (the
//! slab analogue of use-after-free).
//!
//! [`IdSlab`] keys (`Pid`, `TaskId`) are monotone and never reused, so
//! its differential program has no generation dimension — it just checks
//! map semantics and the ascending-id iteration order the deterministic
//! goldens rely on.

use std::collections::{BTreeMap, HashMap};

use proptest::prelude::*;
use simcore::Arena;
use simos::ids::Pid;
use simos::slab::{IdSlab, SockTable};

/// One step of a random arena + side-table program.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate an arena entry and insert `value` under its id.
    Alloc { value: u8 },
    /// Free the `pick`-th live entry (and its side-table state, the
    /// kernel's teardown discipline).
    Free { pick: u8 },
    /// Read through the `pick`-th *dead* id: must miss, never alias.
    StaleGet { pick: u8 },
    /// Read through the `pick`-th live id: must hit its own value.
    LiveGet { pick: u8 },
    /// Overwrite the `pick`-th live entry's side-table value.
    Update { pick: u8, value: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // (The vendored proptest's `prop_oneof!` takes no weights; repeat
    // arms to bias the mix toward churn.)
    prop_oneof![
        any::<u8>().prop_map(|value| Op::Alloc { value }),
        any::<u8>().prop_map(|value| Op::Alloc { value }),
        any::<u8>().prop_map(|value| Op::Alloc { value }),
        any::<u8>().prop_map(|pick| Op::Free { pick }),
        any::<u8>().prop_map(|pick| Op::Free { pick }),
        any::<u8>().prop_map(|pick| Op::StaleGet { pick }),
        any::<u8>().prop_map(|pick| Op::StaleGet { pick }),
        any::<u8>().prop_map(|pick| Op::LiveGet { pick }),
        any::<u8>().prop_map(|pick| Op::LiveGet { pick }),
        (any::<u8>(), any::<u8>()).prop_map(|(pick, value)| Op::Update { pick, value }),
    ]
}

proptest! {
    /// The side table agrees with a `HashMap` keyed by the full id at
    /// every step, across arbitrarily many slot recycles.
    #[test]
    fn socktable_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut arena: Arena<u8> = Arena::new();
        let mut table: SockTable<u8, u8> = SockTable::new();
        let mut model: HashMap<(u32, u32), u8> = HashMap::new();
        let mut live = Vec::new();
        let mut dead = Vec::new();

        for op in ops {
            match op {
                Op::Alloc { value } => {
                    let id = arena.insert(value);
                    // A recycled slot must come back with a new
                    // generation — ids are never repeated.
                    prop_assert!(!dead.contains(&id), "arena reissued id {id:?}");
                    table.insert(id, value);
                    model.insert((id.slot(), id.generation()), value);
                    live.push(id);
                }
                Op::Free { pick } => {
                    if live.is_empty() { continue; }
                    let id = live.swap_remove(pick as usize % live.len());
                    let removed = table.remove(id);
                    prop_assert_eq!(removed, model.remove(&(id.slot(), id.generation())));
                    prop_assert!(arena.remove(id).is_some());
                    // Double free through the same id must be a no-op.
                    prop_assert_eq!(table.remove(id), None);
                    prop_assert!(arena.remove(id).is_none());
                    dead.push(id);
                }
                Op::StaleGet { pick } => {
                    if dead.is_empty() { continue; }
                    let id = dead[pick as usize % dead.len()];
                    prop_assert_eq!(table.get(id), None, "stale id {:?} hit", id);
                    prop_assert!(!table.contains_key(id));
                    prop_assert!(arena.get(id).is_none());
                }
                Op::LiveGet { pick } => {
                    if live.is_empty() { continue; }
                    let id = live[pick as usize % live.len()];
                    let expect = model.get(&(id.slot(), id.generation()));
                    prop_assert_eq!(table.get(id), expect);
                }
                Op::Update { pick, value } => {
                    if live.is_empty() { continue; }
                    let id = live[pick as usize % live.len()];
                    let old = table.insert(id, value);
                    prop_assert_eq!(old, model.insert((id.slot(), id.generation()), value));
                }
            }
            // Global invariants after every step.
            prop_assert_eq!(table.len(), model.len());
            prop_assert_eq!(arena.len(), live.len());
            for &id in &live {
                prop_assert_eq!(
                    table.get(id),
                    model.get(&(id.slot(), id.generation()))
                );
            }
            for &id in &dead {
                prop_assert_eq!(table.get(id), None);
            }
        }
    }

    /// `IdSlab` keyed by `Pid` agrees with the `BTreeMap` it replaced,
    /// including the ascending-id iteration order.
    #[test]
    fn idslab_matches_btreemap(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u32..64, any::<u8>()), 1..200)
    ) {
        let mut slab: IdSlab<Pid, u8> = IdSlab::new();
        let mut model: BTreeMap<u32, u8> = BTreeMap::new();

        for (insert, raw, value) in ops {
            let pid = Pid(raw);
            if insert {
                assert_eq!(slab.insert(pid, value), model.insert(raw, value));
            } else {
                assert_eq!(slab.remove(pid), model.remove(&raw));
            }
            prop_assert_eq!(slab.len(), model.len());
            prop_assert_eq!(slab.get(pid), model.get(&raw));
            prop_assert_eq!(slab.contains_key(pid), model.contains_key(&raw));
            // Iteration order is ascending id, exactly as BTreeMap
            // iterated — the property the byte-identical goldens need.
            let got: Vec<(u32, u8)> = slab.iter().map(|(k, v)| (k.0, *v)).collect();
            let want: Vec<(u32, u8)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(got, want);
        }
    }
}
