//! The syscall surface applications program against.
//!
//! A [`SysCtx`] is handed to an [`crate::AppHandler`] for the duration of
//! one upcall. Control-plane calls (container operations, `listen`,
//! `accept`, `read`) take effect immediately and queue their CPU cost;
//! data-plane calls with timing significance (`compute`, `send`, `close`,
//! the blocking waits) are queued cost-before-effect, preserving the exact
//! order the application issued them.
//!
//! The container operations implement §4.6 of the paper one-for-one, with
//! the per-operation costs of Table 1 charged to the calling thread.

use rescon::{Attributes, ContainerFd, ContainerId, ContainerRef, RcError, ResourceUsage};
use sched::TaskId;
use simcore::span::{self, Phase};
use simcore::trace::{self, TraceEventKind, NO_CONTAINER};
use simcore::{Nanos, SpanRef};
use simnet::{CidrFilter, QdiscKind, SockId};

use crate::app::AppHandler;
use crate::ids::Pid;
use crate::kernel::{DiskSchedKind, Kernel, SchedPolicyKind};
use crate::thread::{Op, ThreadKind, WaitFor, WorkItem};

/// Errors returned by data-plane socket syscalls (`send`, `read`,
/// `close`) when the socket id does not name a live socket of the right
/// kind. One convention across the surface: silent no-ops hide
/// use-after-close bugs in applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SysError {
    /// Unknown, closed, or wrong-kind socket.
    BadSocket,
    /// A kernel memory reservation could not be satisfied: the requesting
    /// container's subtree is over its `mem_limit` (or the global budget
    /// is exhausted) and reclaim plus container-targeted OOM freed too
    /// little (§4.4). Only returned when the kernel was built with
    /// [`crate::MemParams`].
    NoMem,
}

/// Builder-style specification of a listening socket, passed to
/// [`SysCtx::listen`] (and [`Kernel::setup_listen`]).
///
/// Replaces the old positional `(port, filter, notify_syn_drops)`
/// argument list and folds in per-listener admission budgets (§5.7): a
/// listener may bound its own SYN and accept queues independently of the
/// global [`crate::KernelConfig::with_admission`] defaults.
///
/// # Examples
///
/// ```
/// use simos::ListenSpec;
/// use simnet::CidrFilter;
///
/// let spec = ListenSpec::port(80)
///     .filter(CidrFilter::any())
///     .notify_syn_drops()
///     .syn_budget(64);
/// let _ = spec;
/// ```
#[derive(Clone, Debug)]
pub struct ListenSpec {
    pub(crate) port: u16,
    pub(crate) filter: CidrFilter,
    pub(crate) notify_syn_drops: bool,
    pub(crate) syn_budget: Option<usize>,
    pub(crate) accept_budget: Option<usize>,
}

impl ListenSpec {
    /// Listens on `port`, accepting any foreign address, without SYN-drop
    /// notification, under the global admission budgets.
    pub fn port(port: u16) -> Self {
        ListenSpec {
            port,
            filter: CidrFilter::any(),
            notify_syn_drops: false,
            syn_budget: None,
            accept_budget: None,
        }
    }

    /// Restricts the listener to clients matching `filter` (§4.8).
    pub fn filter(mut self, filter: CidrFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Asks for [`crate::AppEvent::SynDropNotice`] upcalls when this
    /// listener's SYN queue overflows (§5.7).
    pub fn notify_syn_drops(mut self) -> Self {
        self.notify_syn_drops = true;
        self
    }

    /// Bounds this listener's half-open (SYN) queue: excess SYNs are
    /// dropped at interrupt level and charged to the *classifying*
    /// container (the attacker pays). Overrides the global default.
    pub fn syn_budget(mut self, n: usize) -> Self {
        self.syn_budget = Some(n);
        self
    }

    /// Bounds this listener's accept queue the same way, enforced on the
    /// final handshake ACK. Overrides the global default.
    pub fn accept_budget(mut self, n: usize) -> Self {
        self.accept_budget = Some(n);
        self
    }
}

/// The per-upcall syscall context: the calling process and thread plus a
/// mutable view of the kernel.
pub struct SysCtx<'a> {
    k: &'a mut Kernel,
    pid: Pid,
    thread: TaskId,
}

impl<'a> SysCtx<'a> {
    pub(crate) fn new(k: &'a mut Kernel, pid: Pid, thread: TaskId) -> Self {
        SysCtx { k, pid, thread }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.k.clock_now()
    }

    /// The calling process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Whether the kernel exposes the container API (§4) — `false` on the
    /// unmodified and LRP baselines.
    pub fn containers_enabled(&self) -> bool {
        self.k.cfg.containers_enabled
    }

    /// Emits a paired syscall enter/exit trace record. Simulated syscalls
    /// apply their control-plane effects instantly (the CPU cost is queued
    /// separately on the thread), so the pair brackets a zero-width
    /// interval at the call's issue time.
    fn trace_sys(&self, name: &'static str) {
        if !trace::enabled() {
            return;
        }
        let now = self.k.clock_now();
        let container = self
            .current_binding()
            .map(|c| c.as_u64())
            .unwrap_or(NO_CONTAINER);
        trace::emit_at(now, || TraceEventKind::SyscallEnter {
            name,
            task: self.thread.0,
            pid: self.pid.0,
            container,
        });
        trace::emit_at(now, || TraceEventKind::SyscallExit {
            name,
            task: self.thread.0,
        });
    }

    fn charge(&mut self, cost: Nanos) {
        if let Some(th) = self.k.thread_mut(self.thread) {
            let span = SpanRef::of(th.cur_span);
            th.push_work(WorkItem {
                cost,
                op: Op::Nop,
                charge_to: None,
                kernel_mode: true,
                span,
            });
        }
    }

    fn push(&mut self, cost: Nanos, op: Op) {
        if let Some(th) = self.k.thread_mut(self.thread) {
            let span = SpanRef::of(th.cur_span);
            th.push_work(WorkItem {
                cost,
                op,
                charge_to: None,
                kernel_mode: false,
                span,
            });
        }
    }

    // ------------------------------------------------------------------
    // Sockets
    // ------------------------------------------------------------------

    /// Creates a listening socket from a [`ListenSpec`]. The listener is
    /// initially bound to the process's default container.
    pub fn listen(&mut self, spec: ListenSpec) -> SockId {
        self.trace_sys("listen");
        let cost = self.k.cost_model().listen_syscall;
        self.charge(cost);
        let mut container = self.k.process_container(self.pid);
        // Count the initial binding so later rebinds/closes stay balanced.
        if let Some(c) = container {
            if self.k.containers.bind_socket(c).is_err() {
                container = None;
            }
        }
        let (syn_b, acc_b) = (self.k.cfg.net.syn_backlog, self.k.cfg.net.accept_backlog);
        let s = self.k.stack.listen(
            spec.port,
            spec.filter,
            container,
            syn_b,
            acc_b,
            spec.notify_syn_drops,
        );
        self.k
            .set_listener_budgets(s, spec.syn_budget, spec.accept_budget);
        self.k.register_socket(s, self.pid);
        s
    }

    /// Accepts one established connection, if available. The new socket
    /// inherits the listener's container binding.
    pub fn accept(&mut self, listener: SockId) -> Option<SockId> {
        self.trace_sys("accept");
        let cost = self.k.cost_model().accept_syscall;
        self.charge(cost);
        let conn = self.k.stack.accept(listener)?;
        self.k.register_socket(conn, self.pid);
        if span::enabled() {
            // Accept ends the request's accept-queue wait; it is now the
            // application's CPU problem. The accepting thread starts
            // acting on its behalf.
            let sp = self.k.stack.span_of(conn);
            if sp != 0 {
                span::transition(sp, Phase::CpuQueue, self.k.clock_now());
                if let Some(th) = self.k.thread_mut(self.thread) {
                    th.cur_span = sp;
                }
            }
        }
        Some(conn)
    }

    /// Reads all buffered payload bytes; returns `(bytes, eof)`.
    ///
    /// # Errors
    ///
    /// [`SysError::BadSocket`] if `sock` is not a live connection; no cost
    /// is charged.
    pub fn read(&mut self, sock: SockId) -> Result<(u64, bool), SysError> {
        self.trace_sys("read");
        match self.k.stack.socket(sock).map(|s| &s.kind) {
            Some(simnet::SocketKind::Conn(_)) => {}
            _ => return Err(SysError::BadSocket),
        }
        let cost = self.k.cost_model().read_syscall;
        self.charge(cost);
        Ok(self.k.stack.read(sock))
    }

    /// Returns the foreign address of a connection (like `getpeername`).
    pub fn peer_addr(&self, sock: SockId) -> Option<simnet::IpAddr> {
        match self.k.stack.socket(sock)? {
            simnet::Socket {
                kind: simnet::SocketKind::Conn(cs),
                ..
            } => Some(cs.flow.src),
            _ => None,
        }
    }

    /// Returns `true` if a socket has unread data, an EOF, or an
    /// acceptable connection.
    pub fn sock_ready(&self, sock: SockId) -> bool {
        self.k.stack.readable(sock) || self.k.stack.accept_queue_len(sock) > 0
    }

    /// Queues at most `bytes` for transmission, returning how many were
    /// accepted. The CPU cost (syscall + per-packet transmit work) is
    /// consumed before any packet leaves the NIC.
    ///
    /// With a finite link configured, the accepted count is clamped to
    /// the sending principal's remaining sockbuf headroom
    /// ([`SysCtx::tx_headroom`]): a partial or zero return is
    /// backpressure, and the caller should wait for writability via
    /// [`SysCtx::send_wait`] or [`SysCtx::event_register_writable`].
    /// Without a link every byte is always accepted.
    ///
    /// # Errors
    ///
    /// [`SysError::BadSocket`] if `sock` is not a live connection; no cost
    /// is charged.
    pub fn send(&mut self, sock: SockId, bytes: u64) -> Result<u64, SysError> {
        self.trace_sys("send");
        match self.k.stack.socket(sock).map(|s| &s.kind) {
            Some(simnet::SocketKind::Conn(_)) => {}
            _ => return Err(SysError::BadSocket),
        }
        let (write_cost, tx_cost) = {
            let cm = self.k.cost_model();
            (cm.write_syscall, cm.data_tx)
        };
        let accepted = bytes.min(self.k.tx_headroom(sock));
        let pkts = self.k.stack.send(sock, accepted);
        if pkts.is_empty() {
            return Ok(0);
        }
        self.k.link_reserve(sock, accepted);
        let sp = pkts.first().map(|p| p.span).unwrap_or(0);
        if sp != 0 {
            self.k.span_tx_queued(sp, pkts.len() as u32);
        }
        let cost = write_cost + tx_cost * pkts.len() as u64;
        self.push(cost, Op::Transmit { pkts });
        Ok(accepted)
    }

    /// Blocks the thread until `sock` has send headroom again, then
    /// delivers [`crate::AppEvent::Writable`]. Without a finite link the
    /// wake is immediate (everything is always writable).
    pub fn send_wait(&mut self, sock: SockId) {
        self.trace_sys("send_wait");
        let cost = self.k.cost_model().write_syscall;
        self.push(cost, Op::Block(WaitFor::Writable(sock)));
    }

    /// Whether `sock` can accept send bytes without queueing past its
    /// principal's sockbuf limit.
    pub fn sock_writable(&self, sock: SockId) -> bool {
        self.k.sock_writable(sock)
    }

    /// Send bytes `sock`'s principal may queue before backpressure;
    /// `u64::MAX` when unlimited.
    pub fn tx_headroom(&self, sock: SockId) -> u64 {
        self.k.tx_headroom(sock)
    }

    /// Whether the kernel models a finite-bandwidth transmit link.
    pub fn link_configured(&self) -> bool {
        self.k.link_configured()
    }

    /// Closes a connection after all previously queued work completes.
    ///
    /// # Errors
    ///
    /// [`SysError::BadSocket`] if `sock` is not a live socket; no cost is
    /// charged.
    pub fn close(&mut self, sock: SockId) -> Result<(), SysError> {
        self.trace_sys("close");
        if self.k.stack.socket(sock).is_none() {
            return Err(SysError::BadSocket);
        }
        let cost = {
            let cm = self.k.cost_model();
            cm.close_syscall + cm.fin_tx
        };
        self.push(cost, Op::CloseSock { sock });
        Ok(())
    }

    /// Blocks the thread in `select()` over `socks` once queued work
    /// drains. The scan cost is linear in the interest-set size (§5.5).
    pub fn select_wait(&mut self, socks: Vec<SockId>) {
        self.trace_sys("select");
        let cost = self.k.cost_model().select_scan(socks.len());
        self.push(cost, Op::Block(WaitFor::Select { socks }));
    }

    /// Registers a socket with the scalable event API (§5.5).
    pub fn event_register(&mut self, sock: SockId) {
        let cost = self.k.cost_model().event_api_base;
        self.charge(cost);
        if let Some(p) = self.k.process_mut(self.pid) {
            if !p.event_interest.contains(&sock) {
                p.event_interest.push(sock);
            }
            // A socket that is already ready must not be missed.
            if self.k.stack.readable(sock) || self.k.stack.accept_queue_len(sock) > 0 {
                if let Some(p) = self.k.process_mut(self.pid) {
                    p.queue_event(sock);
                }
            }
        }
    }

    /// Registers a socket for *writability* notification with the
    /// scalable event API: when send backpressure on the socket drains,
    /// the process receives [`crate::AppEvent::Writable`] (if a thread is
    /// parked in [`SysCtx::event_wait`], it wakes with the socket in its
    /// batch). Without a finite link sockets are always writable, so the
    /// notification fires immediately.
    pub fn event_register_writable(&mut self, sock: SockId) {
        let cost = self.k.cost_model().event_api_base;
        self.charge(cost);
        let writable = self.k.sock_writable(sock);
        if let Some(p) = self.k.process_mut(self.pid) {
            if !p.event_interest_w.contains(&sock) {
                p.event_interest_w.push(sock);
            }
            // A socket that is already writable must not be missed.
            if writable {
                p.queue_writable_event(sock);
            }
        }
    }

    /// Drops *writability* interest only (read interest is untouched):
    /// the natural bookend to [`SysCtx::event_register_writable`] once a
    /// backpressured response has drained.
    pub fn event_deregister_writable(&mut self, sock: SockId) {
        let cost = self.k.cost_model().event_api_base;
        self.charge(cost);
        if let Some(p) = self.k.process_mut(self.pid) {
            p.event_interest_w.retain(|&s| s != sock);
        }
    }

    /// Removes a socket from the scalable event API: clears read and
    /// write interest and drops any queued-but-undelivered events for it.
    /// The socket stays open; it simply delivers no further events.
    pub fn event_deregister(&mut self, sock: SockId) {
        let cost = self.k.cost_model().event_api_base;
        self.charge(cost);
        if let Some(p) = self.k.process_mut(self.pid) {
            p.event_interest.retain(|&s| s != sock);
            p.event_interest_w.retain(|&s| s != sock);
            p.event_queue.retain(|&s| s != sock);
        }
    }

    /// Blocks on the scalable event API once queued work drains.
    pub fn event_wait(&mut self) {
        self.trace_sys("event_wait");
        let cost = self.k.cost_model().event_api_base;
        self.push(cost, Op::Block(WaitFor::Event));
    }

    /// Blocks until `sock` is readable (blocking `read()` pattern of
    /// thread-per-connection servers).
    pub fn read_wait(&mut self, sock: SockId) {
        let cost = self.k.cost_model().read_syscall;
        self.push(cost, Op::Block(WaitFor::Readable(sock)));
    }

    /// Blocks until `listener` has an acceptable connection.
    pub fn accept_wait(&mut self, listener: SockId) {
        let cost = self.k.cost_model().accept_syscall;
        self.push(cost, Op::Block(WaitFor::Acceptable(listener)));
    }

    /// Sleeps until `deadline`, then receives `AppEvent::Timer { tag }`.
    pub fn sleep_until(&mut self, deadline: Nanos, tag: u64) {
        self.k.schedule_app_timer(self.thread, deadline, tag);
        self.push(Nanos::from_nanos(500), Op::Block(WaitFor::Timer { tag }));
    }

    /// Queues a pure CPU burn of `cost`, then receives
    /// `AppEvent::Continue { tag }`.
    pub fn compute(&mut self, cost: Nanos, tag: u64) {
        if let Some(th) = self.k.thread_mut(self.thread) {
            let span = SpanRef::of(th.cur_span);
            th.push_work(WorkItem {
                cost,
                op: Op::Upcall(crate::app::AppEvent::Continue { tag }),
                charge_to: None,
                kernel_mode: false,
                span,
            });
        }
    }

    /// Like [`SysCtx::compute`], but charges the CPU to `charge_to`
    /// regardless of the thread's resource binding when the work actually
    /// runs — needed when several connections' work is queued at once.
    pub fn compute_charged(&mut self, cost: Nanos, tag: u64, charge_to: Option<ContainerId>) {
        if let Some(th) = self.k.thread_mut(self.thread) {
            let span = SpanRef::of(th.cur_span);
            th.push_work(WorkItem {
                cost,
                op: Op::Upcall(crate::app::AppEvent::Continue { tag }),
                charge_to,
                kernel_mode: false,
                span,
            });
        }
    }

    /// Reads `bytes` of `file` from the filesystem. On a buffer-cache hit
    /// only the copy cost is queued on the calling thread; on a miss the
    /// request goes through the disk scheduler and completes
    /// asynchronously (the thread may block or keep serving other work —
    /// the completion is delivered out-of-band like a timer). Either way
    /// the thread receives [`crate::AppEvent::FileRead`] carrying `tag`
    /// once the data is in user space.
    ///
    /// Disk service time, buffer-cache residency, and the copy CPU are all
    /// charged to `charge_to` (defaulting to the thread's resource
    /// binding), extending the paper's accounting to disk bandwidth (§7).
    pub fn read_file(&mut self, file: u64, bytes: u64, tag: u64, charge_to: Option<ContainerId>) {
        self.trace_sys("read_file");
        let (read_cost, copy_cost) = {
            let cm = self.k.cost_model();
            (cm.read_syscall, cm.file_copy(bytes))
        };
        self.charge(read_cost);
        let principal = charge_to
            .or_else(|| self.current_binding())
            .unwrap_or_else(|| self.k.containers.root());
        if self.k.disk_cache.lookup(file).is_some() {
            if let Some(th) = self.k.thread_mut(self.thread) {
                let span = SpanRef::of(th.cur_span);
                th.push_work(WorkItem {
                    cost: copy_cost,
                    op: Op::Upcall(crate::app::AppEvent::FileRead {
                        tag,
                        bytes,
                        cached: true,
                    }),
                    charge_to: Some(principal),
                    kernel_mode: true,
                    span,
                });
            }
        } else {
            let sp = self
                .k
                .thread_ref(self.thread)
                .map(|t| t.cur_span)
                .unwrap_or(0);
            self.k
                .submit_disk_read(file, bytes, principal, self.thread, tag, sp);
        }
    }

    /// Transfers ownership of a socket to another process (descriptor
    /// passing); subsequent readiness events go to the receiver.
    pub fn pass_socket(&mut self, sock: SockId, to: Pid) {
        self.k.reassign_socket(sock, self.pid, to);
    }

    /// Sends an out-of-band message to another process (modelling a
    /// UNIX-domain-socket doorbell; used by FastCGI-style persistent
    /// workers). The receiver gets [`crate::AppEvent::Ipc`] on its first
    /// thread; costs one write syscall on the sender.
    pub fn send_ipc(&mut self, to: Pid, tag: u64) {
        self.trace_sys("send_ipc");
        let cost = self.k.cost_model().write_syscall;
        self.charge(cost);
        let from = self.pid;
        self.k.post_ipc(from, to, tag);
    }

    /// Terminates the calling thread after queued work completes; the
    /// process exits with its last thread.
    pub fn exit(&mut self) {
        self.trace_sys("exit");
        let cost = self.k.cost_model().exit;
        self.push(cost, Op::Exit);
    }

    /// Reserves `bytes` of pinned kernel memory on behalf of the calling
    /// process (modelling pageable structures an application asks the
    /// kernel to hold: e.g. large routing or translation tables). The
    /// charge lands on the process's default container under
    /// `MemClass::Other` and stays until [`SysCtx::kmem_release`], process
    /// exit, or a container-targeted OOM kill. When the kernel memory
    /// subsystem is configured and the charge cannot be satisfied even
    /// after reclaim and OOM, returns [`SysError::NoMem`].
    pub fn kmem_reserve(&mut self, bytes: u64) -> Result<(), SysError> {
        self.trace_sys("kmem_reserve");
        let cost = self.k.cost_model().rc_usage;
        self.charge(cost);
        let reclaimed_before = self.k.mem_acct().map(|m| m.reclaimed_bytes).unwrap_or(0);
        let ok = self.k.kmem_reserve(self.pid, bytes);
        // With a non-zero reclaim cost configured, page stealing that
        // this charge forced shows up as a kernel-mode stall on the
        // calling thread, attributed to the current request span as
        // reclaim time (zero pages stolen or zero cost: no extra work,
        // and every pre-existing run stays byte-identical).
        let per_kb = self
            .k
            .mem_acct()
            .map(|m| m.params.reclaim_cost_per_kb)
            .unwrap_or(Nanos::ZERO);
        if !per_kb.is_zero() {
            let reclaimed = self
                .k
                .mem_acct()
                .map(|m| m.reclaimed_bytes)
                .unwrap_or(0)
                .saturating_sub(reclaimed_before);
            if reclaimed > 0 {
                let stall = Nanos::from_nanos(per_kb.as_nanos() * reclaimed.div_ceil(1024));
                if let Some(th) = self.k.thread_mut(self.thread) {
                    let span = SpanRef {
                        id: th.cur_span,
                        stall: true,
                    };
                    th.push_work(WorkItem {
                        cost: stall,
                        op: Op::Nop,
                        charge_to: None,
                        kernel_mode: true,
                        span,
                    });
                }
            }
        }
        if ok {
            Ok(())
        } else {
            Err(SysError::NoMem)
        }
    }

    /// Returns up to `bytes` of a previous [`SysCtx::kmem_reserve`] to the
    /// kernel (silently capped at the amount actually held).
    pub fn kmem_release(&mut self, bytes: u64) {
        self.trace_sys("kmem_release");
        let cost = self.k.cost_model().rc_usage;
        self.charge(cost);
        self.k.kmem_release(self.pid, bytes);
    }

    // ------------------------------------------------------------------
    // Request spans (rcspan)
    // ------------------------------------------------------------------

    /// Declares that the calling thread is now working on behalf of the
    /// request span riding `conn`. Costless and purely observational:
    /// subsequent queued work (syscall costs, `compute`, `read_file`) is
    /// attributed to that span's phase ledger. A no-op when the span
    /// layer is off or the connection carries no open span.
    pub fn span_attach(&mut self, conn: SockId) {
        if !span::enabled() {
            return;
        }
        let sp = self.k.stack.span_of(conn);
        if let Some(th) = self.k.thread_mut(self.thread) {
            th.cur_span = sp;
        }
    }

    /// The request span riding `conn` (`0` when none or the layer is
    /// off). Applications use it to correlate their own logs with the
    /// exported trace.
    pub fn span_of(&self, conn: SockId) -> u64 {
        if !span::enabled() {
            return 0;
        }
        self.k.stack.span_of(conn)
    }

    /// Arms finish-on-transmit for the request span riding `conn`: the
    /// span finishes `Completed` when the last queued response packet
    /// clears the (possibly finite) link — so end-to-end latency is
    /// measured to the last wire byte, not to the `send` syscall.
    /// Costless, observational, and a no-op when the layer is off.
    pub fn span_finish_on_tx(&mut self, conn: SockId) {
        if !span::enabled() {
            return;
        }
        let sp = self.k.stack.span_of(conn);
        self.k.span_arm_finish(sp);
    }

    // ------------------------------------------------------------------
    // Containers (§4.6), each charged its Table 1 cost
    // ------------------------------------------------------------------

    fn require_containers(&self) -> Result<(), RcError> {
        if self.containers_enabled() {
            Ok(())
        } else {
            Err(RcError::NotFound)
        }
    }

    /// Creates a resource container and returns its descriptor.
    pub fn create_container(
        &mut self,
        parent: Option<ContainerFd>,
        attrs: Attributes,
    ) -> Result<ContainerFd, RcError> {
        self.require_containers()?;
        self.trace_sys("rc_create");
        let cost = self.k.cost_model().rc_create;
        self.charge(cost);
        let parent_id = match parent {
            Some(fd) => Some(self.resolve_fd(fd)?),
            None => None,
        };
        let now = self.k.clock_now();
        let id = self.k.containers.create_at(parent_id, attrs, now)?;
        let p = self.k.process_mut(self.pid).ok_or(RcError::NotFound)?;
        Ok(p.containers.adopt(id))
    }

    /// Resolves a container descriptor to its id (useful for cross-API
    /// plumbing such as socket binding).
    pub fn resolve_fd(&self, fd: ContainerFd) -> Result<ContainerId, RcError> {
        self.k
            .process_ref(self.pid)
            .ok_or(RcError::NotFound)?
            .containers
            .resolve(fd)
    }

    /// Opens a descriptor for an existing container id (§4.6 "obtain
    /// handle for existing container").
    pub fn open_container(&mut self, id: ContainerId) -> Result<ContainerFd, RcError> {
        self.require_containers()?;
        let cost = self.k.cost_model().rc_handle;
        self.charge(cost);
        let containers = &mut self.k.containers;
        containers.add_descriptor_ref(id)?;
        let p = self.k.process_mut(self.pid).ok_or(RcError::NotFound)?;
        Ok(p.containers.adopt(id))
    }

    /// Releases a container descriptor (§4.6 "Container release").
    pub fn close_container(&mut self, fd: ContainerFd) -> Result<bool, RcError> {
        self.require_containers()?;
        self.trace_sys("rc_release");
        let cost = self.k.cost_model().rc_destroy;
        self.charge(cost);
        let p = self.k.process_mut(self.pid).ok_or(RcError::NotFound)?;
        let id = p.containers.forget(fd)?;
        self.k.containers.drop_descriptor_ref(id)
    }

    /// Changes a container's parent (§4.6 "Set a container's parent").
    pub fn set_container_parent(
        &mut self,
        fd: ContainerFd,
        parent: Option<ContainerFd>,
    ) -> Result<(), RcError> {
        self.require_containers()?;
        let cost = self.k.cost_model().rc_attrs;
        self.charge(cost);
        let id = self.resolve_fd(fd)?;
        let parent_id = match parent {
            Some(p) => Some(self.resolve_fd(p)?),
            None => None,
        };
        self.k.containers.set_parent(id, parent_id)
    }

    /// Sets a container's attributes (§4.6 "Container attributes").
    pub fn set_container_attrs(
        &mut self,
        fd: ContainerFd,
        attrs: Attributes,
    ) -> Result<(), RcError> {
        self.require_containers()?;
        let cost = self.k.cost_model().rc_attrs;
        self.charge(cost);
        let id = self.resolve_fd(fd)?;
        self.k.containers.set_attrs(id, attrs)
    }

    /// Reads a container's attributes.
    pub fn container_attrs(&mut self, fd: ContainerFd) -> Result<Attributes, RcError> {
        self.require_containers()?;
        let cost = self.k.cost_model().rc_attrs;
        self.charge(cost);
        let id = self.resolve_fd(fd)?;
        self.k.containers.attrs(id).cloned()
    }

    /// Reads a container's usage (§4.6 "Container usage information").
    pub fn container_usage(&mut self, fd: ContainerFd) -> Result<ResourceUsage, RcError> {
        self.require_containers()?;
        self.trace_sys("rc_usage");
        let cost = self.k.cost_model().rc_usage;
        self.charge(cost);
        let id = self.resolve_fd(fd)?;
        self.k.containers.usage(id)
    }

    // ------------------------------------------------------------------
    // Policy plane (rcpolicy): mid-run scheduler swaps
    // ------------------------------------------------------------------

    /// Hot-swaps the CPU scheduling policy
    /// ([`Kernel::set_cpu_policy`]). Control-plane: takes effect
    /// immediately; in-flight state is drained through a policy-neutral
    /// snapshot. Returns the detached policy's name.
    pub fn set_cpu_policy(&mut self, kind: SchedPolicyKind) -> &'static str {
        self.trace_sys("set_cpu_policy");
        let cost = self.k.cost_model().rc_attrs;
        self.charge(cost);
        self.k.set_cpu_policy(kind)
    }

    /// Hot-swaps the disk request-ordering policy
    /// ([`Kernel::set_disk_policy`]). Returns the detached policy's name.
    pub fn set_disk_policy(&mut self, kind: DiskSchedKind) -> &'static str {
        self.trace_sys("set_disk_policy");
        let cost = self.k.cost_model().rc_attrs;
        self.charge(cost);
        self.k.set_disk_policy(kind)
    }

    /// Hot-swaps the link queueing discipline
    /// ([`Kernel::set_link_policy`]). Returns the detached policy's name,
    /// or `None` when no finite link is configured.
    pub fn set_link_policy(&mut self, qdisc: QdiscKind) -> Option<&'static str> {
        self.trace_sys("set_link_policy");
        let cost = self.k.cost_model().rc_attrs;
        self.charge(cost);
        self.k.set_link_policy(qdisc)
    }

    /// Sets the calling thread's resource binding (§4.6 "Binding a thread
    /// to a container"). Subsequent consumption is charged there.
    ///
    /// Accepts either a [`ContainerFd`] (the application path: resolved
    /// through the descriptor table, charged the Table 1 bind cost) or a
    /// raw [`ContainerId`] (the trusted in-process path used by
    /// library-based resource handlers, §2: no descriptor check, no
    /// charge), via `impl Into<ContainerRef>`.
    pub fn bind_thread(&mut self, c: impl Into<ContainerRef>) -> Result<(), RcError> {
        self.require_containers()?;
        let id = match c.into() {
            ContainerRef::Fd(fd) => {
                self.trace_sys("rc_bind_thread");
                let cost = self.k.cost_model().rc_bind;
                self.charge(cost);
                self.resolve_fd(fd)?
            }
            ContainerRef::Id(id) => id,
        };
        let now = self.k.clock_now();
        self.k.containers.bind_thread(id)?;
        let old = {
            // Split borrows: the container table is consulted through a
            // snapshot of live ids to weed the scheduler binding.
            let containers = &self.k.containers;
            let th = self
                .k
                .threads
                .get_mut(self.thread)
                .ok_or(RcError::NotFound)?;
            let old = th.resource_binding;
            th.resource_binding = id;
            th.sched_binding.retain_live(|c| containers.contains(c));
            th.sched_binding.touch(id, now);
            old
        };
        let _ = self.k.containers.unbind_thread(old);
        let binding = self
            .k
            .thread_ref(self.thread)
            .map(|t| t.sched_binding.containers().to_vec())
            .unwrap_or_default();
        self.k
            .scheduler_mut()
            .set_binding(self.thread, &binding, now);
        Ok(())
    }

    /// Rebinds the calling thread to its process's default container
    /// (e.g. after finishing work for a connection whose container is
    /// about to be destroyed). A no-op when containers are disabled.
    pub fn bind_thread_default(&mut self) -> Result<(), RcError> {
        if !self.containers_enabled() {
            return Ok(());
        }
        let c = self
            .k
            .process_container(self.pid)
            .ok_or(RcError::NotFound)?;
        if self.current_binding() == Some(c) {
            return Ok(());
        }
        let cost = self.k.cost_model().rc_bind;
        self.charge(cost);
        self.bind_thread(c)
    }

    /// Returns the process's default container id.
    pub fn default_container(&self) -> Option<ContainerId> {
        self.k.process_container(self.pid)
    }

    /// Returns the calling thread's current resource binding.
    pub fn current_binding(&self) -> Option<ContainerId> {
        self.k.thread_ref(self.thread).map(|t| t.resource_binding)
    }

    /// Adds a container to the calling thread's *scheduler binding*
    /// without changing its resource binding (§4.3: the kernel tracks the
    /// set of containers a multiplexed thread serves; a server thread that
    /// accepts from a class's listening socket serves that class).
    pub fn join_scheduler_binding(&mut self, id: ContainerId) -> Result<(), RcError> {
        if !self.containers_enabled() {
            return Ok(());
        }
        if !self.k.containers.contains(id) {
            return Err(RcError::NotFound);
        }
        let now = self.k.clock_now();
        let binding = {
            let containers = &self.k.containers;
            let th = self
                .k
                .threads
                .get_mut(self.thread)
                .ok_or(RcError::NotFound)?;
            th.sched_binding.retain_live(|c| containers.contains(c));
            th.sched_binding.touch(id, now);
            th.sched_binding.containers().to_vec()
        };
        self.k
            .scheduler_mut()
            .set_binding(self.thread, &binding, now);
        Ok(())
    }

    /// Resets the thread's scheduler binding to only its current resource
    /// binding (§4.6 "Reset the scheduler binding").
    pub fn reset_scheduler_binding(&mut self) {
        let cost = self.k.cost_model().rc_bind;
        self.charge(cost);
        let now = self.k.clock_now();
        let binding = {
            let Some(th) = self.k.thread_mut(self.thread) else {
                return;
            };
            th.sched_binding.reset(th.resource_binding, now);
            th.sched_binding.containers().to_vec()
        };
        self.k
            .scheduler_mut()
            .set_binding(self.thread, &binding, now);
    }

    /// Binds a socket to a container (§4.6 "Binding a socket or file to a
    /// container"); subsequent kernel consumption for the socket is
    /// charged there. Like [`SysCtx::bind_thread`], accepts a descriptor
    /// (charged, checked) or a raw id (trusted) via
    /// `impl Into<ContainerRef>`.
    pub fn bind_socket(&mut self, sock: SockId, c: impl Into<ContainerRef>) -> Result<(), RcError> {
        self.require_containers()?;
        let id = match c.into() {
            ContainerRef::Fd(fd) => {
                self.trace_sys("rc_bind_socket");
                let cost = self.k.cost_model().rc_bind;
                self.charge(cost);
                self.resolve_fd(fd)?
            }
            ContainerRef::Id(id) => id,
        };
        let old = self.k.stack.container_of(sock);
        self.k.containers.bind_socket(id)?;
        self.k.stack.set_container(sock, Some(id));
        if let Some(o) = old {
            let _ = self.k.containers.unbind_socket(o);
        }
        Ok(())
    }

    /// Passes a container to another process (§4.6 "Sharing containers
    /// between processes"); the sender retains access.
    pub fn pass_container(&mut self, fd: ContainerFd, to: Pid) -> Result<ContainerFd, RcError> {
        self.require_containers()?;
        let cost = self.k.cost_model().rc_pass;
        self.charge(cost);
        let id = self.resolve_fd(fd)?;
        self.k.containers.add_descriptor_ref(id)?;
        let recv = self.k.process_mut(to).ok_or(RcError::NotFound)?;
        Ok(recv.containers.adopt(id))
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// Forks a child process running `handler`. The child's default
    /// container is created under `container_parent` (defaulting to the
    /// root, like a plain UNIX process) with `attrs`.
    pub fn spawn_process(
        &mut self,
        handler: Box<dyn AppHandler>,
        name: &str,
        container_parent: Option<ContainerId>,
        attrs: Attributes,
    ) -> Pid {
        self.trace_sys("fork");
        let cost = self.k.cost_model().fork;
        self.charge(cost);
        self.k
            .spawn_process(handler, name, container_parent, attrs, Some(self.pid))
    }

    /// Creates an extra thread in the calling process.
    pub fn spawn_thread(&mut self) -> Option<TaskId> {
        let cost = self.k.cost_model().fork / 4;
        self.charge(cost);
        self.k.spawn_thread(self.pid)
    }

    /// Returns the calling thread's kind-checked id (handy in handlers
    /// managing thread pools).
    pub fn current_thread(&self) -> TaskId {
        self.thread
    }

    /// Returns `true` if the thread is a kernel network thread (never the
    /// case for app upcalls; used in assertions).
    pub fn is_kernel_thread(&self) -> bool {
        self.k
            .thread_ref(self.thread)
            .map(|t| t.kind == ThreadKind::KernelNet)
            .unwrap_or(false)
    }
}
