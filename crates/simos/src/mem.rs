//! `simmem`: kernel memory as a first-class charged resource.
//!
//! Every byte of kernel memory the simulated kernel holds on behalf of an
//! application — socket buffers, per-connection protocol state, thread
//! stacks, buffer-cache pages, and explicit application reservations — flows
//! through the [`MemAccountant`] and is charged to a resource container
//! under a [`MemClass`] tag (§4.4 of the paper: the kernel memory consumed
//! on behalf of an activity is part of that activity's resource bill).
//!
//! The accountant adds two behaviours on top of the hierarchy limits that
//! [`ContainerTable`] already enforces:
//!
//! - **Reclaim.** When a charge would push a subtree over its `mem_limit`
//!   (or the kernel over its global budget), the accountant first steals
//!   reclaimable memory — LRU buffer-cache pages owned by the violating
//!   subtree — before refusing. Every steal is traced as a `Reclaim` event
//!   charged against the over-limit subtree.
//! - **Container-targeted OOM.** If reclaim cannot satisfy a pinned
//!   allocation, the kernel picks the *largest over-limit principal in the
//!   violating subtree* and kills it: its cache pages, connections, and
//!   reservations are released and the owning process is notified with
//!   `AppEvent::MemKill`. The global whipping boy of a traditional OOM
//!   killer is replaced by precise attribution.
//!
//! The functions in this module are deliberately pure over
//! `(&mut ContainerTable, &mut BufferCache, &mut MemAccountant)` so that
//! property tests can drive random charge/reclaim interleavings without a
//! kernel; `Kernel` wires them to its own state and layers the OOM
//! sequence on top.
//!
//! Memory accounting is **opt-in**: a kernel built without
//! [`MemParams`] charges socket buffers exactly as before and emits no new
//! trace events, keeping memory-unlimited runs byte-identical.

use rescon::{ContainerId, ContainerTable, MemClass, RcError};
use simcore::trace::{self, TraceEventKind, NO_CONTAINER};
use simcore::Nanos;
use simdisk::{BufferCache, CacheOutcome};
use std::collections::HashSet;

/// Static parameters of the kernel memory subsystem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemParams {
    /// Bytes charged per thread for its kernel stack (class
    /// [`MemClass::ThreadStack`]), released when the thread exits.
    pub stack_bytes: u64,
    /// Bytes of protocol control block charged per established connection
    /// (class [`MemClass::ConnState`]), on top of the socket buffer.
    pub pcb_bytes: u64,
    /// Optional kernel-wide budget for *pinned* (non-cache) memory. When a
    /// charge would exceed it, cache pages are stolen globally first.
    pub global_budget: Option<u64>,
    /// Fraction of a subtree's `mem_limit` above which a `MemPressure`
    /// trace event fires on each successful charge into that subtree.
    pub pressure_frac: f64,
    /// Kernel CPU cost per reclaimed byte, modelling the page-steal work
    /// the allocating thread performs synchronously. Zero (the default)
    /// keeps reclaim instantaneous — and every existing run
    /// byte-identical; span scenarios opt in to see reclaim stalls.
    pub reclaim_cost_per_kb: Nanos,
}

impl MemParams {
    pub fn new() -> Self {
        MemParams {
            stack_bytes: 16 * 1024,
            pcb_bytes: 1024,
            global_budget: None,
            pressure_frac: 0.9,
            reclaim_cost_per_kb: Nanos::ZERO,
        }
    }

    pub fn with_stack_bytes(mut self, bytes: u64) -> Self {
        self.stack_bytes = bytes;
        self
    }

    pub fn with_pcb_bytes(mut self, bytes: u64) -> Self {
        self.pcb_bytes = bytes;
        self
    }

    pub fn with_global_budget(mut self, bytes: u64) -> Self {
        self.global_budget = Some(bytes);
        self
    }

    pub fn with_pressure_frac(mut self, frac: f64) -> Self {
        self.pressure_frac = frac;
        self
    }

    pub fn with_reclaim_cost_per_kb(mut self, cost: Nanos) -> Self {
        self.reclaim_cost_per_kb = cost;
        self
    }
}

impl Default for MemParams {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a hard allocation could not be satisfied even after reclaim.
///
/// `refusing` is the raw key of the container whose limit was hit, or
/// [`NO_CONTAINER`] when the kernel-wide budget was the binding constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFailure {
    pub refusing: u64,
    pub limit: u64,
    pub used: u64,
}

/// Central ledger for kernel memory: running totals per [`MemClass`] plus
/// counters for reclaim, OOM, refusal, and pressure activity.
///
/// The per-container breakdown lives in each container's
/// [`rescon::ResourceUsage`]; the accountant holds the kernel-wide view and
/// the subsystem parameters.
#[derive(Clone, Debug)]
pub struct MemAccountant {
    pub params: MemParams,
    total: u64,
    by_class: [u64; MemClass::COUNT],
    /// Cache pages stolen to satisfy charges (count / bytes).
    pub reclaims: u64,
    pub reclaimed_bytes: u64,
    /// Container-targeted OOM kills performed.
    pub oom_kills: u64,
    /// Hard allocations refused after reclaim and OOM both failed.
    pub refusals: u64,
    /// `MemPressure` events emitted.
    pub pressure_events: u64,
}

impl MemAccountant {
    pub fn new(params: MemParams) -> Self {
        MemAccountant {
            params,
            total: 0,
            by_class: [0; MemClass::COUNT],
            reclaims: 0,
            reclaimed_bytes: 0,
            oom_kills: 0,
            refusals: 0,
            pressure_events: 0,
        }
    }

    /// Record `bytes` of class `class` entering the kernel's ledger.
    pub fn note_charge(&mut self, class: MemClass, bytes: u64) {
        self.total += bytes;
        self.by_class[class.index()] += bytes;
    }

    /// Record `bytes` of class `class` leaving the kernel's ledger.
    pub fn note_release(&mut self, class: MemClass, bytes: u64) {
        self.total = self.total.saturating_sub(bytes);
        let slot = &mut self.by_class[class.index()];
        *slot = slot.saturating_sub(bytes);
    }

    /// Total kernel memory currently accounted, all classes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes currently accounted under `class`.
    pub fn class_bytes(&self, class: MemClass) -> u64 {
        self.by_class[class.index()]
    }

    /// The full per-class breakdown, indexed by [`MemClass::index`].
    pub fn by_class(&self) -> [u64; MemClass::COUNT] {
        self.by_class
    }
}

fn failure_of(e: RcError) -> MemFailure {
    match e {
        RcError::LimitExceeded {
            container,
            limit,
            used,
        } => MemFailure {
            refusing: container,
            limit,
            used,
        },
        _ => MemFailure {
            refusing: NO_CONTAINER,
            limit: 0,
            used: 0,
        },
    }
}

/// Steal one LRU cache page from owners satisfying `member`, tracing the
/// steal against `violating_root` and updating the accountant. Returns the
/// bytes freed, or `None` when nothing stealable remains.
fn reclaim_step(
    table: &mut ContainerTable,
    cache: &mut BufferCache,
    acct: &mut MemAccountant,
    violating_root: u64,
    member: impl Fn(ContainerId) -> bool,
) -> Option<u64> {
    let (file, bytes, owner) = cache.reclaim_one(table, member)?;
    acct.note_release(MemClass::CachePage, bytes);
    acct.reclaims += 1;
    acct.reclaimed_bytes += bytes;
    trace::emit(|| TraceEventKind::Reclaim {
        container: violating_root,
        victim: owner,
        file,
        bytes,
    });
    Some(bytes)
}

/// Raw keys of every container inside the subtree rooted at `root_key`.
fn subtree_members(table: &ContainerTable, root_key: u64) -> HashSet<u64> {
    let root = table
        .iter()
        .find(|(id, _)| id.as_u64() == root_key)
        .map(|(id, _)| id);
    match root {
        Some(r) => table
            .iter()
            .filter(|(id, _)| table.in_subtree(*id, r))
            .map(|(id, _)| id.as_u64())
            .collect(),
        None => HashSet::new(),
    }
}

/// Charge `bytes` of `class` memory to container `c`, stealing reclaimable
/// cache pages from the violating subtree (or, for the global budget, from
/// anywhere) until the charge fits. On success the table and the accountant
/// are both updated. On failure nothing is charged and the returned
/// [`MemFailure`] names the binding constraint; a `MemRefused` trace event
/// records the refused attempt.
pub fn charge_with_reclaim(
    table: &mut ContainerTable,
    cache: &mut BufferCache,
    acct: &mut MemAccountant,
    c: ContainerId,
    class: MemClass,
    bytes: u64,
) -> Result<(), MemFailure> {
    // Kernel-wide budget: pinned charges must fit under it; clean cache
    // pages are the slack that gets squeezed out first.
    if let Some(budget) = acct.params.global_budget {
        while acct.total.saturating_add(bytes) > budget {
            if reclaim_step(table, cache, acct, NO_CONTAINER, |_| true).is_none() {
                let fail = MemFailure {
                    refusing: NO_CONTAINER,
                    limit: budget,
                    used: acct.total,
                };
                trace::emit(|| TraceEventKind::MemRefused {
                    container: c.as_u64(),
                    refusing: NO_CONTAINER,
                    limit: budget,
                    used: acct.total,
                    wanted: bytes,
                });
                return Err(fail);
            }
        }
    }
    // Hierarchy limits: steal LRU pages owned by the violating subtree.
    // Re-check after every steal — the binding ancestor can change as its
    // subtree shrinks.
    loop {
        match table.check_mem(c, bytes) {
            Ok(()) => break,
            Err(RcError::LimitExceeded {
                container: refusing,
                ..
            }) => {
                let members = subtree_members(table, refusing);
                if reclaim_step(table, cache, acct, refusing, |o| {
                    members.contains(&o.as_u64())
                })
                .is_none()
                {
                    // Final attempt through the table so the refusal is
                    // traced with the enriched error.
                    return match table.charge_mem_class(c, class, bytes) {
                        Ok(()) => {
                            acct.note_charge(class, bytes);
                            Ok(())
                        }
                        Err(e) => Err(failure_of(e)),
                    };
                }
            }
            Err(e) => return Err(failure_of(e)),
        }
    }
    match table.charge_mem_class(c, class, bytes) {
        Ok(()) => {
            acct.note_charge(class, bytes);
            Ok(())
        }
        Err(e) => Err(failure_of(e)),
    }
}

/// Pick the container-targeted OOM victim: the principal with the largest
/// *own* (not subtree) memory charge inside the subtree rooted at
/// `refusing` (the whole table when `refusing` is [`NO_CONTAINER`]).
/// Ties break toward the smallest key for determinism. Returns
/// `(victim_key, victim_bytes)`.
pub fn pick_oom_victim(table: &ContainerTable, refusing: u64) -> Option<(u64, u64)> {
    let root = if refusing == NO_CONTAINER {
        None
    } else {
        table
            .iter()
            .find(|(id, _)| id.as_u64() == refusing)
            .map(|(id, _)| id)
    };
    if refusing != NO_CONTAINER && root.is_none() {
        return None;
    }
    let mut best: Option<(u64, u64)> = None;
    for (id, c) in table.iter() {
        if let Some(r) = root {
            if !table.in_subtree(id, r) {
                continue;
            }
        }
        let bytes = c.usage().mem_bytes;
        if bytes == 0 {
            continue;
        }
        best = match best {
            Some((bk, bb)) if bytes < bb || (bytes == bb && id.as_u64() >= bk) => Some((bk, bb)),
            _ => Some((id.as_u64(), bytes)),
        };
    }
    best
}

/// Insert a page into the buffer cache keeping the accountant's
/// [`MemClass::CachePage`] ledger in sync with the cache's net change
/// (the insert may evict other pages internally).
pub fn cache_insert_accounted(
    cache: &mut BufferCache,
    table: &mut ContainerTable,
    acct: &mut MemAccountant,
    file: u64,
    bytes: u64,
    owner: ContainerId,
) -> CacheOutcome {
    let before = cache.used();
    let out = cache.insert(file, bytes, owner, table);
    let after = cache.used();
    if after >= before {
        acct.note_charge(MemClass::CachePage, after - before);
    } else {
        acct.note_release(MemClass::CachePage, before - after);
    }
    out
}

/// After a successful charge into `c`, emit `MemPressure` for every limited
/// ancestor (including `c` itself) whose subtree usage sits above
/// `pressure_frac` of its limit.
pub fn pressure_check(table: &ContainerTable, acct: &mut MemAccountant, c: ContainerId) {
    let mut cursor = Some(c);
    while let Some(cur) = cursor {
        if let (Ok(attrs), Ok(used)) = (table.attrs(cur), table.subtree_mem(cur)) {
            if let Some(limit) = attrs.mem_limit {
                let threshold = (limit as f64 * acct.params.pressure_frac) as u64;
                if used > threshold {
                    acct.pressure_events += 1;
                    trace::emit(|| TraceEventKind::MemPressure {
                        container: cur.as_u64(),
                        used,
                        limit,
                    });
                }
            }
        }
        cursor = table.parent(cur).ok().flatten();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescon::Attributes;

    fn limited(parent: Option<ContainerId>, t: &mut ContainerTable, limit: u64) -> ContainerId {
        // Fixed-share so the helper can parent time-shared children (a
        // time-shared parent refuses them in strict mode).
        t.create(parent, Attributes::fixed_share(0.2).with_mem_limit(limit))
            .unwrap()
    }

    #[test]
    fn charge_without_pressure_is_plain() {
        let mut t = ContainerTable::new();
        let mut cache = BufferCache::new(1 << 20);
        let mut acct = MemAccountant::new(MemParams::new());
        let c = t.create(None, Attributes::time_shared(1)).unwrap();
        charge_with_reclaim(&mut t, &mut cache, &mut acct, c, MemClass::SockBuf, 500).unwrap();
        assert_eq!(acct.total(), 500);
        assert_eq!(acct.class_bytes(MemClass::SockBuf), 500);
        assert_eq!(t.usage(c).unwrap().mem_bytes, 500);
    }

    #[test]
    fn reclaim_steals_cache_pages_from_violating_subtree_only() {
        let mut t = ContainerTable::new();
        let mut cache = BufferCache::new(1 << 20);
        let mut acct = MemAccountant::new(MemParams::new());
        let hog = limited(None, &mut t, 1000);
        let other = t.create(None, Attributes::time_shared(1)).unwrap();
        // Hog holds 800 bytes of reclaimable cache; other holds 600.
        assert!(matches!(
            cache.insert(1, 800, hog, &mut t),
            CacheOutcome::Cached
        ));
        assert!(matches!(
            cache.insert(2, 600, other, &mut t),
            CacheOutcome::Cached
        ));
        acct.note_charge(MemClass::CachePage, 1400);
        // A 700-byte pinned charge to the hog must steal the hog's page,
        // not the bystander's.
        charge_with_reclaim(&mut t, &mut cache, &mut acct, hog, MemClass::Other, 700).unwrap();
        assert_eq!(acct.reclaims, 1);
        assert_eq!(acct.reclaimed_bytes, 800);
        assert_eq!(cache.resident_bytes(hog), 0);
        assert_eq!(cache.resident_bytes(other), 600);
        assert_eq!(t.usage(hog).unwrap().mem_bytes, 700);
        assert_eq!(acct.total(), 600 + 700);
    }

    #[test]
    fn unsatisfiable_charge_fails_and_charges_nothing() {
        let mut t = ContainerTable::new();
        let mut cache = BufferCache::new(1 << 20);
        let mut acct = MemAccountant::new(MemParams::new());
        let c = limited(None, &mut t, 1000);
        let err = charge_with_reclaim(&mut t, &mut cache, &mut acct, c, MemClass::Other, 2000)
            .unwrap_err();
        assert_eq!(err.refusing, c.as_u64());
        assert_eq!(err.limit, 1000);
        assert_eq!(t.usage(c).unwrap().mem_bytes, 0);
        assert_eq!(acct.total(), 0);
    }

    #[test]
    fn global_budget_squeezes_cache_then_refuses() {
        let mut t = ContainerTable::new();
        let mut cache = BufferCache::new(1 << 20);
        let mut acct = MemAccountant::new(MemParams::new().with_global_budget(1000));
        let c = t.create(None, Attributes::time_shared(1)).unwrap();
        assert!(matches!(
            cache.insert(1, 600, c, &mut t),
            CacheOutcome::Cached
        ));
        acct.note_charge(MemClass::CachePage, 600);
        // 900 pinned bytes fit only after the 600-byte page is stolen.
        charge_with_reclaim(&mut t, &mut cache, &mut acct, c, MemClass::Other, 900).unwrap();
        assert_eq!(acct.total(), 900);
        assert_eq!(acct.reclaims, 1);
        // Nothing left to squeeze: the next pinned charge is refused.
        let err = charge_with_reclaim(&mut t, &mut cache, &mut acct, c, MemClass::Other, 200)
            .unwrap_err();
        assert_eq!(err.refusing, NO_CONTAINER);
        assert_eq!(err.limit, 1000);
        assert_eq!(acct.total(), 900);
    }

    #[test]
    fn oom_victim_is_largest_principal_in_subtree() {
        let mut t = ContainerTable::new();
        let parent = limited(None, &mut t, 10_000);
        let small = t.create(Some(parent), Attributes::time_shared(1)).unwrap();
        let big = t.create(Some(parent), Attributes::time_shared(1)).unwrap();
        let outside = t.create(None, Attributes::time_shared(1)).unwrap();
        t.charge_mem_class(small, MemClass::Other, 100).unwrap();
        t.charge_mem_class(big, MemClass::Other, 300).unwrap();
        t.charge_mem_class(outside, MemClass::Other, 9_999).unwrap();
        let (victim, bytes) = pick_oom_victim(&t, parent.as_u64()).unwrap();
        assert_eq!(victim, big.as_u64());
        assert_eq!(bytes, 300);
        // Global search may pick the outsider.
        let (victim, _) = pick_oom_victim(&t, NO_CONTAINER).unwrap();
        assert_eq!(victim, outside.as_u64());
        // An empty subtree yields no victim.
        let empty = t.create(None, Attributes::time_shared(1)).unwrap();
        assert_eq!(pick_oom_victim(&t, empty.as_u64()), None);
    }

    #[test]
    fn cache_insert_accounted_tracks_net_delta() {
        let mut t = ContainerTable::new();
        let mut cache = BufferCache::new(1000);
        let mut acct = MemAccountant::new(MemParams::new());
        let c = t.create(None, Attributes::time_shared(1)).unwrap();
        cache_insert_accounted(&mut cache, &mut t, &mut acct, 1, 600, c);
        assert_eq!(acct.class_bytes(MemClass::CachePage), 600);
        // Inserting 700 evicts the 600-byte page first: net +100.
        cache_insert_accounted(&mut cache, &mut t, &mut acct, 2, 700, c);
        assert_eq!(acct.class_bytes(MemClass::CachePage), cache.used());
    }

    #[test]
    fn pressure_fires_above_fraction_of_limit() {
        let mut t = ContainerTable::new();
        let mut acct = MemAccountant::new(MemParams::new().with_pressure_frac(0.5));
        let p = limited(None, &mut t, 1000);
        let c = t.create(Some(p), Attributes::time_shared(1)).unwrap();
        t.charge_mem_class(c, MemClass::Other, 400).unwrap();
        pressure_check(&t, &mut acct, c);
        assert_eq!(acct.pressure_events, 0);
        t.charge_mem_class(c, MemClass::Other, 200).unwrap();
        pressure_check(&t, &mut acct, c);
        assert_eq!(acct.pressure_events, 1);
    }
}
