//! Kernel slab storage: re-exports the [`simcore::slab`] containers and
//! implements [`SlabKey`] for the kernel's process ids. (`sched`
//! implements it for `TaskId`.)

pub use simcore::slab::{IdSlab, SlabKey, SockTable};

use crate::ids::Pid;

impl SlabKey for Pid {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        Pid(i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::TaskId;

    #[test]
    fn idslab_roundtrip_and_order() {
        let mut s: IdSlab<TaskId, &str> = IdSlab::new();
        assert!(s.is_empty());
        s.insert(TaskId(3), "c");
        s.insert(TaskId(1), "a");
        s.insert(TaskId(2), "b");
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(TaskId(2)), Some(&"b"));
        // Ascending id order, like the BTreeMap this replaced.
        let order: Vec<u32> = s.iter().map(|(k, _)| k.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(s.remove(TaskId(2)), Some("b"));
        assert_eq!(s.remove(TaskId(2)), None);
        assert_eq!(s.len(), 2);
        assert!(!s.contains_key(TaskId(2)));
        *s.or_insert(TaskId(7), "g") = "h";
        assert_eq!(s.get(TaskId(7)), Some(&"h"));
    }

    #[test]
    fn socktable_generation_miss() {
        use simcore::Arena;
        let mut arena: Arena<u8> = Arena::new();
        let a = arena.insert(1);
        let mut t: SockTable<u8, u64> = SockTable::new();
        t.insert(a, 10);
        assert_eq!(t.get(a), Some(&10));
        // Recycle the slot: same slot, newer generation.
        t.remove(a);
        arena.remove(a);
        let b = arena.insert(2);
        assert_eq!(b.slot(), a.slot());
        assert_ne!(b.generation(), a.generation());
        assert_eq!(t.get(b), None);
        t.insert(b, 20);
        // The stale id misses; the live one hits.
        assert_eq!(t.get_mut(a), None);
        assert_eq!(t.get(b), Some(&20));
        assert_eq!(t.remove(a), None);
        assert_eq!(t.remove(b), Some(20));
        assert!(t.is_empty());
    }

    #[test]
    fn socktable_reclaims_orphaned_state() {
        use simcore::Arena;
        let mut arena: Arena<u8> = Arena::new();
        let a = arena.insert(1);
        let mut t: SockTable<u8, u64> = SockTable::new();
        t.insert(a, 10);
        // The socket dies without the owner removing its state (a reset
        // while parked), and the slot is recycled.
        arena.remove(a);
        let b = arena.insert(2);
        assert_eq!(b.slot(), a.slot());
        // The new generation reclaims the orphan before inserting; a
        // second reclaim and a reclaim of the live entry are no-ops.
        assert_eq!(t.remove_stale(b), Some((a, 10)));
        assert_eq!(t.remove_stale(b), None);
        t.insert(b, 20);
        assert_eq!(t.remove_stale(b), None);
        assert_eq!(t.get(b), Some(&20));
        assert_eq!(t.len(), 1);
    }
}
