//! Processes: protection domains of the simulated kernel.

use rescon::{ContainerId, DescriptorTable};
use sched::TaskId;
use simnet::SockId;
use std::collections::VecDeque;

use crate::ids::Pid;

/// A process: a protection domain with threads, a default resource
/// container, container descriptors, and event-API state.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Default container created at `fork()` (§4.6); threads start bound
    /// to it, and in the baseline ("unmodified") kernel everything the
    /// process does is charged here — making the process the resource
    /// principal, as in classic UNIX.
    pub default_container: ContainerId,
    /// Container descriptors open in this process (§4.6).
    pub containers: DescriptorTable,
    /// Live threads.
    pub threads: Vec<TaskId>,
    /// Sockets owned by this process.
    pub sockets: Vec<SockId>,
    /// Sockets registered with the scalable event API.
    pub event_interest: Vec<SockId>,
    /// Sockets registered for writability notification (send
    /// backpressure drain) with the scalable event API.
    pub event_interest_w: Vec<SockId>,
    /// Pending event-API deliveries (sockets with unconsumed events).
    pub event_queue: VecDeque<SockId>,
    /// Parent process, if any.
    pub parent: Option<Pid>,
    /// Human-readable name for reports.
    pub name: String,
}

impl Process {
    /// Creates an empty process record.
    pub fn new(pid: Pid, default_container: ContainerId, parent: Option<Pid>, name: &str) -> Self {
        Process {
            pid,
            default_container,
            containers: DescriptorTable::new(),
            threads: Vec::new(),
            sockets: Vec::new(),
            event_interest: Vec::new(),
            event_interest_w: Vec::new(),
            event_queue: VecDeque::new(),
            parent,
            name: name.to_string(),
        }
    }

    /// Queues an event-API notification for `sock` unless one is already
    /// pending (events are level-ish: one entry per ready socket).
    pub fn queue_event(&mut self, sock: SockId) -> bool {
        if !self.event_interest.contains(&sock) {
            return false;
        }
        if self.event_queue.contains(&sock) {
            return false;
        }
        self.event_queue.push_back(sock);
        true
    }

    /// Queues a writability notification for `sock` unless one is
    /// already pending; requires writable interest.
    pub fn queue_writable_event(&mut self, sock: SockId) -> bool {
        if !self.event_interest_w.contains(&sock) {
            return false;
        }
        if self.event_queue.contains(&sock) {
            return false;
        }
        self.event_queue.push_back(sock);
        true
    }

    /// Removes a socket from all per-process tracking.
    pub fn forget_socket(&mut self, sock: SockId) {
        self.sockets.retain(|&s| s != sock);
        self.event_interest.retain(|&s| s != sock);
        self.event_interest_w.retain(|&s| s != sock);
        self.event_queue.retain(|&s| s != sock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescon::{Attributes, ContainerTable};
    use simcore::Nanos;
    use simnet::{CidrFilter, NetStack};

    fn sock() -> (NetStack, SockId) {
        let mut stack = NetStack::new(Nanos::from_secs(5));
        let s = stack.listen(80, CidrFilter::any(), None, 4, 4, false);
        (stack, s)
    }

    fn proc_with_container() -> Process {
        let mut t = ContainerTable::new();
        let c = t.create(None, Attributes::time_shared(1)).unwrap();
        Process::new(Pid(1), c, None, "test")
    }

    #[test]
    fn queue_event_requires_interest() {
        let (_stack, s) = sock();
        let mut p = proc_with_container();
        assert!(!p.queue_event(s));
        p.event_interest.push(s);
        assert!(p.queue_event(s));
        // Duplicate suppressed.
        assert!(!p.queue_event(s));
        assert_eq!(p.event_queue.len(), 1);
    }

    #[test]
    fn forget_socket_clears_everywhere() {
        let (_stack, s) = sock();
        let mut p = proc_with_container();
        p.sockets.push(s);
        p.event_interest.push(s);
        p.queue_event(s);
        p.forget_socket(s);
        assert!(p.sockets.is_empty());
        assert!(p.event_interest.is_empty());
        assert!(p.event_queue.is_empty());
    }
}
