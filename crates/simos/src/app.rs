//! The application model: state machines driven by kernel upcalls.
//!
//! Simulated applications cannot run on real OS threads inside virtual
//! time, so each process is a state machine implementing [`AppHandler`].
//! The kernel delivers an [`AppEvent`] to the handler only after the CPU
//! cost of the triggering work has been consumed on the simulated CPU, so
//! application-visible timing reflects scheduling and queueing exactly.

use sched::TaskId;
use simnet::{IpAddr, SockId};

use crate::ids::Pid;
use crate::syscall::SysCtx;

/// An upcall delivered to an application state machine.
#[derive(Clone, Debug)]
pub enum AppEvent {
    /// The process's first thread has started.
    Start,
    /// `select()` returned; `ready` holds the readable/acceptable sockets
    /// among the interest set (in interest-set order).
    SelectReady {
        /// Ready sockets.
        ready: Vec<SockId>,
    },
    /// The scalable event API delivered a batch of per-socket events, in
    /// container-priority order when containers are enabled (§5.5).
    EventReady {
        /// Sockets with pending events.
        events: Vec<SockId>,
    },
    /// A deferred computation queued with [`SysCtx::compute`] finished.
    Continue {
        /// The application-chosen continuation tag.
        tag: u64,
    },
    /// A timer armed with [`SysCtx::sleep_until`] fired.
    Timer {
        /// The application-chosen tag.
        tag: u64,
    },
    /// A file read issued with [`SysCtx::read_file`] finished: the data is
    /// in user space (after a buffer-cache hit or a disk read plus copy).
    FileRead {
        /// The application-chosen tag.
        tag: u64,
        /// Bytes delivered.
        bytes: u64,
        /// `true` if served from the buffer cache without touching the
        /// disk.
        cached: bool,
    },
    /// A socket blocked by send backpressure has headroom again: either a
    /// [`SysCtx::send_wait`] unblocked or the socket was registered for
    /// writability with [`SysCtx::event_register_writable`].
    Writable {
        /// The socket that became writable.
        sock: SockId,
    },
    /// The kernel dropped a SYN because a listen queue overflowed, and the
    /// application had asked to be notified (§5.7).
    SynDropNotice {
        /// Listener whose queue overflowed.
        listener: SockId,
        /// Source address of the dropped SYN.
        src: IpAddr,
    },
    /// The peer reset an established connection. The kernel has already
    /// released the socket and its buffers; the application must drop its
    /// own per-connection state (and container references, §4.6) or they
    /// stay bound to a dead connection forever.
    ConnReset {
        /// The connection that was reset.
        conn: SockId,
    },
    /// A container-targeted OOM kill hit a container this process owned
    /// resources under: the kernel has released the container's socket
    /// buffers (connections were reset), cache pages, and explicit
    /// [`SysCtx::kmem_reserve`] reservations. The application must drop
    /// its own state for the killed activity.
    MemKill {
        /// Raw key of the killed container.
        container: u64,
    },
    /// A child process exited.
    ChildExited {
        /// The exited child.
        pid: Pid,
    },
    /// An inter-process message (a UNIX-domain-socket doorbell, as used by
    /// FastCGI-style persistent workers).
    Ipc {
        /// Sender.
        from: Pid,
        /// Application-defined tag.
        tag: u64,
    },
}

/// A simulated application: one handler per process, shared by all of the
/// process's threads.
///
/// Handlers must not busy-wait: after handling an event, every live thread
/// should either have queued work, be blocked (via `select_wait`,
/// `event_wait`, `sleep_until`, ...), or have exited.
pub trait AppHandler {
    /// Handles one upcall on behalf of `thread`.
    fn on_event(&mut self, sys: &mut SysCtx<'_>, thread: TaskId, event: AppEvent);
}
