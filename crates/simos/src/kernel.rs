//! The kernel proper: event loop, CPU accounting, interrupt path, and the
//! per-process kernel network threads.
//!
//! # Execution model
//!
//! `ncpus` simulated CPUs (one by default). Each CPU has its own clock,
//! run queue, and accounting; a CPU's clock advances only by consuming CPU
//! (scheduled work, interrupt-level work, context-switch overhead) or by
//! explicit idling to the next event. The event loop always steps the
//! CPU(s) whose clock is furthest behind (the *frontier*), so kernel
//! events are delivered in global time order and a single-CPU
//! configuration reproduces the classic uniprocessor loop exactly. Work
//! items carry their CPU cost and apply their effects only after the cost
//! has been consumed, so application-visible latencies reflect contention
//! faithfully.
//!
//! Fixed-share guarantees remain *global*: per-CPU queues divide each
//! CPU locally, and a periodic container-aware load balancer
//! ([`KernelEvent::Balance`], multiprocessor only) migrates threads so
//! every container's runnable threads stay spread across CPUs, ranked by
//! how far each container lags its entitlement.
//!
//! # Interrupt level
//!
//! Packet arrival always costs an early-demultiplex charge at interrupt
//! level (`CostModel::intr_demux`), paid before any scheduled work —
//! modelling hardware/software interrupts having "strictly higher priority
//! than any user-level code" (§3.2). Under [`NetDiscipline::Interrupt`]
//! the *entire* protocol processing also runs there, charged to no
//! resource principal: the misaccounting and livelock source the paper
//! attacks. Under [`NetDiscipline::Lrp`] and
//! [`NetDiscipline::Container`], the interrupt only classifies the packet
//! into a bounded per-principal queue; a per-process kernel thread later
//! performs protocol processing in principal-priority order, charged to
//! the principal (§4.7).

use std::collections::{BTreeMap, HashMap};

use rcpolicy::Plane;
use rescon::{Attributes, ContainerId, ContainerTable, MemClass};
use sched::{CpuId, Scheduler, TaskId};
use simcore::fault::{DiskFault, FaultCounts, FaultInjector, FaultPlan, NetFault};
use simcore::span::{self, Outcome, Phase};
use simcore::trace::{self, TraceEventKind, NO_CONTAINER};
use simcore::{EventQueue, Nanos, SpanRef};
use simdisk::{BufferCache, DiskParams, DiskRequest, ReqId, SimDisk};
use simnet::{
    CidrFilter, Demux, Dispatch, LinkParams, LinkSched, NetDiscipline, NetEvent, NetStack, Packet,
    PendingQueues, QdiscKind, SockId, Socket,
};

use crate::app::{AppEvent, AppHandler};
use crate::cost::CostModel;
use crate::ids::Pid;
use crate::mem::{self, MemAccountant, MemFailure, MemParams};
use crate::process::Process;
use crate::slab::{IdSlab, SockTable};
use crate::stats::KernelStats;
use crate::syscall::{ListenSpec, SysCtx};
use crate::thread::{Op, Thread, ThreadKind, ThreadState, WaitFor, WorkItem};
use crate::world::{World, WorldAction};

// Policy kinds live in the `rcpolicy` registry; the historical simos
// names are kept as aliases so existing configs and harnesses read
// unchanged.
pub use rcpolicy::CpuPolicyKind as SchedPolicyKind;
pub use rcpolicy::DiskPolicyKind as DiskSchedKind;

/// Network-plane configuration: processing discipline, listener queue
/// depths, admission budgets, socket buffering, and the optional finite
/// transmit link.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Network-processing discipline (§3.2, §4.7).
    pub discipline: NetDiscipline,
    /// SYN-queue depth of new listeners.
    pub syn_backlog: usize,
    /// Accept-queue depth of new listeners.
    pub accept_backlog: usize,
    /// Per-principal cap on unprocessed received packets (lazy
    /// disciplines); beyond it packets are dropped at interrupt level
    /// ("excess traffic is discarded early").
    pub pending_cap: usize,
    /// Half-open connection timeout.
    pub syn_timeout: Nanos,
    /// Socket-buffer bytes charged to a connection's container while the
    /// connection is open (§4.4: containers account for memory such as
    /// socket buffers); a container subtree over its memory limit refuses
    /// new connections.
    pub sockbuf_bytes: u64,
    /// Per-listener admission budget on half-open (SYN) connections: a
    /// SYN classifying to a listener whose SYN queue already holds this
    /// many entries is dropped at interrupt level, charged to the
    /// *classifying* container (the attacker pays, not the listener).
    /// Zero disables admission control.
    pub syn_budget: usize,
    /// Per-listener admission budget on the accept queue, enforced the
    /// same way on the final ACK. Zero disables it.
    pub accept_budget: usize,
    /// Finite-bandwidth transmit link model. `None` (the default) keeps
    /// the classic infinite-bandwidth wire: packets leave after
    /// `cost.link_latency` with no queueing, no transmit charging, and no
    /// backpressure, leaving existing runs byte-identical.
    pub link: Option<LinkParams>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            discipline: NetDiscipline::Interrupt,
            syn_backlog: 1024,
            accept_backlog: 128,
            pending_cap: 256,
            syn_timeout: Nanos::from_secs(5),
            sockbuf_bytes: 16 * 1024,
            syn_budget: 0,
            accept_budget: 0,
            link: None,
        }
    }
}

/// Disk-plane configuration: physical cost model, request ordering, and
/// the accounted buffer cache.
#[derive(Clone, Debug)]
pub struct DiskConfig {
    /// Physical cost model of the disk.
    pub params: DiskParams,
    /// Disk request ordering discipline.
    pub sched: DiskSchedKind,
    /// Buffer-cache capacity in bytes; resident files are charged to their
    /// owning container's memory counter.
    pub buffer_cache_bytes: u64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            params: DiskParams::default(),
            sched: DiskSchedKind::Fifo,
            buffer_cache_bytes: 16 * 1024 * 1024,
        }
    }
}

/// CPU-plane configuration: scheduling policy, processor count, and the
/// periodic maintenance intervals tied to the scheduler.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// CPU scheduler.
    pub policy: SchedPolicyKind,
    /// Number of simulated CPUs (clamped to at least 1 at boot).
    pub ncpus: u32,
    /// Interval of the container-aware load balancer. Only armed on
    /// multiprocessor configurations (`ncpus > 1`); zero disables it.
    pub balance_interval: Nanos,
    /// How often the kernel prunes thread scheduler bindings (§4.3);
    /// zero disables pruning.
    pub prune_interval: Nanos,
    /// Entries idle longer than this are pruned from scheduler bindings.
    pub prune_age: Nanos,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            policy: SchedPolicyKind::DecayUsage,
            ncpus: 1,
            balance_interval: Nanos::from_millis(5),
            prune_interval: Nanos::ZERO,
            prune_age: Nanos::from_millis(500),
        }
    }
}

/// Kernel configuration: one per simulated system variant. The per-plane
/// knobs live in typed sub-configs ([`NetConfig`], [`DiskConfig`],
/// [`SchedConfig`], [`MemParams`], [`FaultPlan`]) so a cluster `NodeSpec`
/// can reuse them wholesale; the `with_*` builders below keep the flat
/// construction surface unchanged.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Network-plane knobs (discipline, backlogs, budgets, link).
    pub net: NetConfig,
    /// Disk-plane knobs (cost model, ordering, buffer cache).
    pub disk: DiskConfig,
    /// CPU-plane knobs (policy, ncpus, maintenance intervals).
    pub sched: SchedConfig,
    /// Per-operation CPU costs.
    pub cost: CostModel,
    /// Whether the container API is available to applications. When
    /// `false` the kernel still accounts internally to per-process default
    /// containers, but applications see the classic UNIX interface.
    pub containers_enabled: bool,
    /// Seeded fault-injection schedule; `None` (the default) injects
    /// nothing and leaves every run byte-identical to a fault-free build.
    pub fault: Option<FaultPlan>,
    /// Kernel memory subsystem (`simmem`). `None` (the default) keeps the
    /// legacy ad-hoc socket-buffer charging with no stacks, no protocol
    /// control blocks, no reclaim, and no OOM, leaving existing runs
    /// byte-identical. `Some` routes every kernel allocation through a
    /// [`MemAccountant`] with pressure, reclaim, and container-targeted
    /// OOM (§4.4).
    pub mem: Option<MemParams>,
}

impl KernelConfig {
    /// The paper's **unmodified system**: interrupt-level protocol
    /// processing, decay-usage scheduling over processes, no container
    /// API.
    pub fn unmodified() -> Self {
        KernelConfig {
            net: NetConfig::default(),
            disk: DiskConfig::default(),
            sched: SchedConfig::default(),
            cost: CostModel::default(),
            containers_enabled: false,
            fault: None,
            mem: None,
        }
    }

    /// The **LRP system**: lazy per-process protocol processing, still
    /// process-centric scheduling and no container API.
    pub fn lrp() -> Self {
        let mut cfg = Self::unmodified();
        cfg.net.discipline = NetDiscipline::Lrp;
        cfg
    }

    /// The **RC system**: container queues, the multi-level scheduler, and
    /// the full container API (the paper's prototype).
    pub fn resource_containers() -> Self {
        let mut cfg = Self::unmodified();
        cfg.net.discipline = NetDiscipline::Container;
        cfg.sched.policy = SchedPolicyKind::MultiLevel;
        cfg.containers_enabled = true;
        cfg.sched.prune_interval = Nanos::from_secs(1);
        cfg.disk.sched = DiskSchedKind::Share;
        cfg
    }

    /// Replaces the whole network-plane sub-config (builder style).
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Replaces the whole disk-plane sub-config (builder style).
    pub fn with_disk_config(mut self, disk: DiskConfig) -> Self {
        self.disk = disk;
        self
    }

    /// Replaces the whole CPU-plane sub-config (builder style).
    pub fn with_sched_config(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Replaces the cost model (builder style).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the CPU scheduling policy (builder style). Any policy in
    /// the [`rcpolicy`] registry is selectable, including the stride and
    /// lottery ablations and the deadline-driven EDF policy.
    pub fn with_scheduler(mut self, kind: SchedPolicyKind) -> Self {
        self.sched.policy = kind;
        self
    }

    /// Replaces the disk request-ordering policy (builder style).
    pub fn with_disk_sched(mut self, kind: DiskSchedKind) -> Self {
        self.disk.sched = kind;
        self
    }

    /// Replaces the disk cost model (builder style).
    pub fn with_disk(mut self, disk: DiskParams) -> Self {
        self.disk.params = disk;
        self
    }

    /// Sets the buffer-cache capacity (builder style).
    pub fn with_buffer_cache(mut self, bytes: u64) -> Self {
        self.disk.buffer_cache_bytes = bytes;
        self
    }

    /// Sets the number of simulated CPUs (builder style).
    pub fn with_ncpus(mut self, n: u32) -> Self {
        self.sched.ncpus = n.max(1);
        self
    }

    /// Installs a fault-injection plan (builder style).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the per-listener admission budgets (builder style). Zero
    /// disables the corresponding limit.
    pub fn with_admission(mut self, syn_budget: usize, accept_budget: usize) -> Self {
        self.net.syn_budget = syn_budget;
        self.net.accept_budget = accept_budget;
        self
    }

    /// Models a finite-bandwidth transmit link with the given queueing
    /// discipline (builder style). Transmitted wire time is charged to the
    /// owning container and `sockbuf_limit` becomes real send
    /// backpressure.
    pub fn with_link(mut self, bandwidth_bps: u64, qdisc: QdiscKind) -> Self {
        self.net.link = Some(LinkParams::new(bandwidth_bps, qdisc));
        self
    }

    /// Enables the kernel memory subsystem (builder style): all kernel
    /// memory — socket buffers, protocol state, thread stacks, cache
    /// pages, reservations — is charged per class against container
    /// `mem_limit`s, with reclaim and container-targeted OOM.
    pub fn with_mem(mut self, params: MemParams) -> Self {
        self.mem = Some(params);
        self
    }
}

/// Internal kernel events.
#[derive(Clone, Debug)]
enum KernelEvent {
    /// A packet reached the server NIC.
    PacketIn(Packet),
    /// A server packet reached the client side of the wire.
    PacketToWorld(Packet),
    /// A world timer fired.
    WorldTimer(u64),
    /// An application timer fired.
    TimerFired(TaskId, u64),
    /// Periodic scheduler-binding pruning.
    Prune,
    /// The disk's in-flight request finished.
    DiskTick,
    /// Periodic container-aware load balancing (multiprocessor only; never
    /// scheduled on a uniprocessor, so single-CPU event schedules are
    /// untouched).
    Balance,
    /// The link either finished its in-flight packet or a rate cap opened
    /// up. Only armed when a finite link is configured, so linkless event
    /// schedules are untouched.
    LinkTick,
}

/// A thread parked on a disk read.
#[derive(Clone, Copy, Debug)]
struct DiskWaiter {
    task: TaskId,
    tag: u64,
    /// Insert the file into the buffer cache on completion.
    cache: bool,
    /// Request span waiting on this read (`0` = none).
    span: u64,
}

/// Per-span transmit bookkeeping for the causal-tracing layer: how many
/// of the request's response packets are queued towards the link or on
/// the wire, and whether the application armed finish-on-last-wire-byte
/// ([`SysCtx::span_finish_on_tx`]). Purely observational.
#[derive(Clone, Copy, Debug, Default)]
struct SpanTxState {
    /// Response packets accepted by `send` but not yet fully transmitted.
    queued: u32,
    /// Response packets currently occupying the wire.
    wire: u32,
    /// Finish the span `Completed` once `queued` and `wire` drain.
    armed: bool,
}

/// Per-CPU mutable state: its clock, pending uncharged work, and the
/// bookkeeping needed to detect context switches locally.
#[derive(Clone, Copy, Debug, Default)]
struct CpuState {
    clock: Nanos,
    /// Interrupt + context-switch work owed; paid before scheduled work.
    overhead_deficit: Nanos,
    /// Portion of `overhead_deficit` that is context-switch overhead (the
    /// rest is interrupt work).
    switch_deficit: Nanos,
    last_task: Option<TaskId>,
    stats: crate::stats::CpuStats,
}

/// What [`Kernel::step_until`] reports back to a cluster driver at the
/// end of each conservative round.
#[derive(Clone, Copy, Debug)]
pub struct NodeYield {
    /// The kernel clock after the step (always the requested horizon).
    pub now: Nanos,
    /// Earliest pending internal event, if any (`None` = queue dry); a
    /// driver may use this as a lookahead hint.
    pub next_event: Option<Nanos>,
    /// Packets waiting in the egress buffer after this step.
    pub egress: usize,
}

/// Result of giving one CPU a chance to run at the frontier.
enum StepOutcome {
    /// The CPU consumed time or changed scheduler state; re-derive the
    /// frontier before stepping anyone else.
    Progress,
    /// Nothing to run on this CPU before the given time (`Nanos::MAX` =
    /// nothing ever again).
    Idle(Nanos),
}

/// The simulated kernel.
pub struct Kernel {
    /// Configuration (public for inspection by harnesses).
    pub cfg: KernelConfig,
    clock: Nanos,
    events: EventQueue<KernelEvent>,
    /// The container table (public: harnesses read usage directly).
    pub containers: ContainerTable,
    /// The network stack (public for tests/harnesses).
    pub stack: NetStack,
    scheduler: Box<dyn Scheduler>,
    pub(crate) threads: IdSlab<TaskId, Thread>,
    /// `resume_wait`: a wait to restore after an out-of-band upcall.
    resume_waits: IdSlab<TaskId, WaitFor>,
    processes: IdSlab<Pid, Process>,
    handlers: IdSlab<Pid, Option<Box<dyn AppHandler>>>,
    pending: IdSlab<Pid, PendingQueues<ContainerId>>,
    kthreads: IdSlab<Pid, TaskId>,
    sock_owner: SockTable<Socket, Pid>,
    /// Socket-buffer memory charged per connection (released on close).
    sockbuf_charges: SockTable<Socket, (ContainerId, u64)>,
    /// Protocol-control-block memory charged per connection when the
    /// memory subsystem is configured (class `ConnState`).
    pcb_charges: SockTable<Socket, (ContainerId, u64)>,
    /// Kernel-stack memory charged per thread when the memory subsystem
    /// is configured (class `ThreadStack`), released at thread exit.
    stack_charges: IdSlab<TaskId, (ContainerId, u64)>,
    /// Pinned memory reserved via `kmem_reserve` per process (class
    /// `Other`), released explicitly, at exit, or by an OOM kill.
    kmem_charges: IdSlab<Pid, (ContainerId, u64)>,
    /// The kernel memory accountant (present iff `cfg.mem` is set).
    mem: Option<MemAccountant>,
    /// The disk device (public: harnesses read busy time and queue depth).
    pub disk: SimDisk,
    /// The accounted buffer cache (public: harnesses read hit/miss stats).
    pub disk_cache: BufferCache,
    /// Threads waiting on in-flight disk reads.
    disk_waiters: HashMap<ReqId, DiskWaiter>,
    /// Transmit bookkeeping per open request span (empty when the span
    /// layer is off).
    span_tx: HashMap<u64, SpanTxState>,
    /// Whether a `DiskTick` is scheduled for the current in-flight request.
    disk_tick_armed: bool,
    next_task: u32,
    next_pid: u32,
    stats: KernelStats,
    /// One state block per simulated CPU (`cfg.sched.ncpus` entries).
    cpus: Vec<CpuState>,
    /// Round-robin cursor for placing new application threads.
    next_app_cpu: u32,
    /// Home CPU per container (kernel network threads run there), plus the
    /// round-robin cursor assigning homes on first use.
    container_home: HashMap<u64, u32>,
    next_home_cpu: u32,
    /// `subtree_cpu` per container at the previous balance tick, for
    /// computing per-window lag.
    balance_snapshot: HashMap<u64, Nanos>,
    /// Fault-decision streams derived from `cfg.fault` (absent when no
    /// plan is configured; the hot paths then skip every draw).
    injector: Option<FaultInjector>,
    /// Early-drop charges per container (`Idx::as_u64()` keys): every
    /// packet dropped before protocol processing — no-owner, queue-full,
    /// or admission-control — is billed here to the container the packet
    /// *classified to*, making the attacker-pays invariant assertable.
    drop_charges: BTreeMap<u64, u64>,
    /// The transmit queueing discipline (present iff `cfg.net.link` is set).
    link: Option<Box<dyn LinkSched>>,
    /// The packet currently occupying the wire.
    link_inflight: Option<LinkInflight>,
    /// Deadline of the earliest armed throttle `LinkTick`, to avoid
    /// flooding the event queue with redundant ticks.
    link_wait_until: Option<Nanos>,
    /// Reverse map from `Idx::as_u64()` keys handed to the link scheduler
    /// back to live container ids for wire-time charging.
    link_owner_ids: HashMap<u64, ContainerId>,
    /// Unsent payload bytes reserved against each owner's sockbuf limit
    /// (`Idx::as_u64()` keys); grows at `send()`, drains at wire
    /// completion.
    tx_backlog: HashMap<u64, u64>,
    /// Total wire time the link spent transmitting.
    link_busy: Nanos,
    /// Total wire bytes transmitted.
    link_wire_bytes: u64,
    /// Total packets transmitted over the finite link.
    link_pkts: u64,
    /// Per-listener admission budgets `(syn, accept)` installed by
    /// `ListenSpec`; listeners absent here use the global config budgets.
    listener_budgets: SockTable<Socket, (usize, usize)>,
    /// Cached `trace::enabled()` for the duration of a `run` call (trace
    /// sessions start and finish outside `run`), gating the hot-path
    /// `trace::set_now` updates behind a plain branch instead of a
    /// thread-local access.
    trace_on: bool,
    /// Cached `span::enabled()`, same invariant as `trace_on`.
    spans_on: bool,
    /// Reusable protocol-event buffer: `receive_packet` and the ProtoRx
    /// kthread path drain it in place instead of allocating a fresh
    /// `Vec<NetEvent>` per packet.
    net_buf: Vec<NetEvent>,
    /// Reusable world-action buffer, same idea for `PacketToWorld` and
    /// `WorldTimer` events.
    world_buf: Vec<WorldAction>,
    /// Foreign-address prefixes owned by *other* cluster nodes: a
    /// world-bound packet whose flow source matches one of these is
    /// diverted into `egress_buf` (for the cluster driver to carry over an
    /// inter-node link) instead of being delivered to the local world.
    /// `None` — always, for standalone kernels — delivers everything
    /// locally, leaving runs byte-identical.
    egress_filter: Option<Vec<CidrFilter>>,
    /// Packets captured by the egress filter, as `(departure, packet)`
    /// pairs stamped with the kernel clock at capture time.
    egress_buf: Vec<(Nanos, Packet)>,
}

/// The packet currently being clocked out on the finite link.
struct LinkInflight {
    pkt: Packet,
    owner: u64,
    done: Nanos,
    wire: Nanos,
}

impl Kernel {
    /// Boots a kernel with the given configuration.
    pub fn new(mut cfg: KernelConfig) -> Self {
        cfg.sched.ncpus = cfg.sched.ncpus.max(1);
        // All three planes are built by the rcpolicy registry, so boot
        // and mid-run swaps construct policies identically.
        let scheduler = rcpolicy::build_cpu(cfg.sched.policy, cfg.sched.ncpus);
        let disk = SimDisk::new(cfg.disk.params, rcpolicy::build_disk(cfg.disk.sched));
        let disk_cache = BufferCache::new(cfg.disk.buffer_cache_bytes);
        let mut k = Kernel {
            containers: ContainerTable::new(),
            stack: NetStack::new(cfg.net.syn_timeout),
            scheduler,
            threads: IdSlab::new(),
            resume_waits: IdSlab::new(),
            processes: IdSlab::new(),
            handlers: IdSlab::new(),
            pending: IdSlab::new(),
            kthreads: IdSlab::new(),
            sock_owner: SockTable::new(),
            sockbuf_charges: SockTable::new(),
            pcb_charges: SockTable::new(),
            stack_charges: IdSlab::new(),
            kmem_charges: IdSlab::new(),
            mem: cfg.mem.map(MemAccountant::new),
            disk,
            disk_cache,
            disk_waiters: HashMap::new(),
            span_tx: HashMap::new(),
            disk_tick_armed: false,
            next_task: 1,
            next_pid: 1,
            clock: Nanos::ZERO,
            events: EventQueue::new(),
            stats: KernelStats::default(),
            cpus: vec![CpuState::default(); cfg.sched.ncpus as usize],
            next_app_cpu: 0,
            container_home: HashMap::new(),
            next_home_cpu: 0,
            balance_snapshot: HashMap::new(),
            injector: cfg.fault.as_ref().map(FaultInjector::new),
            drop_charges: BTreeMap::new(),
            link: cfg.net.link.as_ref().map(|p| rcpolicy::build_link(p.qdisc)),
            link_inflight: None,
            link_wait_until: None,
            link_owner_ids: HashMap::new(),
            tx_backlog: HashMap::new(),
            link_busy: Nanos::ZERO,
            link_wire_bytes: 0,
            link_pkts: 0,
            listener_budgets: SockTable::new(),
            trace_on: false,
            spans_on: false,
            net_buf: Vec::new(),
            world_buf: Vec::new(),
            egress_filter: None,
            egress_buf: Vec::new(),
            cfg,
        };
        if !k.cfg.sched.prune_interval.is_zero() {
            let t = k.cfg.sched.prune_interval;
            k.events.schedule(t, KernelEvent::Prune);
        }
        if k.cfg.sched.ncpus > 1 && !k.cfg.sched.balance_interval.is_zero() {
            let t = k.cfg.sched.balance_interval;
            k.events.schedule(t, KernelEvent::Balance);
        }
        k
    }

    /// Current virtual time.
    pub fn clock(&self) -> Nanos {
        self.clock
    }

    /// Kernel-level CPU statistics, aggregated over all CPUs.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Number of simulated CPUs.
    pub fn ncpus(&self) -> u32 {
        self.cfg.sched.ncpus
    }

    /// Per-CPU accounting, one entry per simulated CPU. Each entry's
    /// `charged + interrupt + overhead + idle` equals that CPU's elapsed
    /// clock.
    pub fn per_cpu_stats(&self) -> Vec<crate::stats::CpuStats> {
        self.cpus.iter().map(|c| c.stats).collect()
    }

    /// The default container of a process.
    pub fn process_container(&self, pid: Pid) -> Option<ContainerId> {
        self.processes.get(pid).map(|p| p.default_container)
    }

    /// The process that owns a socket.
    pub fn socket_owner(&self, sock: SockId) -> Option<Pid> {
        self.sock_owner.get(sock).copied()
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Returns `true` if the process is still alive.
    pub fn process_alive(&self, pid: Pid) -> bool {
        self.processes.contains_key(pid)
    }

    fn alloc_task(&mut self) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        id
    }

    /// Initial CPU for a new application thread: round-robin, so
    /// multi-threaded servers start spread. Always CPU 0 on a
    /// uniprocessor.
    fn alloc_app_cpu(&mut self) -> CpuId {
        let cpu = self.next_app_cpu % self.cfg.sched.ncpus;
        self.next_app_cpu += 1;
        CpuId(cpu)
    }

    /// The home CPU of a container: assigned round-robin on first use and
    /// sticky thereafter. Kernel network threads run on the home CPU of
    /// their owning container, so protocol work is charged there.
    fn home_cpu(&mut self, c: ContainerId) -> CpuId {
        if self.cfg.sched.ncpus <= 1 {
            return CpuId(0);
        }
        if let Some(&cpu) = self.container_home.get(&c.as_u64()) {
            return CpuId(cpu);
        }
        let cpu = self.next_home_cpu % self.cfg.sched.ncpus;
        self.next_home_cpu += 1;
        self.container_home.insert(c.as_u64(), cpu);
        CpuId(cpu)
    }

    /// Spawns a process with a state-machine handler.
    ///
    /// `container_parent` chooses where the process's default container
    /// hangs in the hierarchy (`None` = under the root, as a plain UNIX
    /// process); `attrs` sets the default container's attributes.
    pub fn spawn_process(
        &mut self,
        handler: Box<dyn AppHandler>,
        name: &str,
        container_parent: Option<ContainerId>,
        attrs: Attributes,
        parent: Option<Pid>,
    ) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let default_container = self
            .containers
            .create_at(container_parent, attrs, self.clock)
            .expect("default container creation must succeed");
        let mut proc = Process::new(pid, default_container, parent, name);
        let tid = self.alloc_task();
        let mut thread = Thread::new(tid, pid, ThreadKind::App, default_container, self.clock);
        self.containers
            .bind_thread(default_container)
            .expect("bind to fresh container");
        thread.push_work(WorkItem {
            cost: Nanos::from_micros(1),
            op: Op::Upcall(AppEvent::Start),
            charge_to: None,
            kernel_mode: false,
            span: SpanRef::NONE,
        });
        proc.threads.push(tid);
        // The boot thread's kernel stack is charged best-effort: a process
        // must be able to start even under memory pressure.
        let _ = self.charge_thread_stack(tid, default_container);
        let cpu = self.alloc_app_cpu();
        self.scheduler
            .add_task(tid, thread.sched_binding.containers(), cpu, self.clock);
        self.scheduler.set_runnable(tid, true, self.clock);
        self.threads.insert(tid, thread);
        self.processes.insert(pid, proc);
        self.handlers.insert(pid, Some(handler));
        pid
    }

    /// Spawns an additional thread in an existing process (multi-threaded
    /// servers). The thread starts with a `Start` upcall. Returns `None`
    /// when the kernel-stack memory charge is refused (memory subsystem
    /// configured and the subtree is hard over its limit).
    pub fn spawn_thread(&mut self, pid: Pid) -> Option<TaskId> {
        let default_container = self.processes.get(pid)?.default_container;
        let tid = self.alloc_task();
        if !self.charge_thread_stack(tid, default_container) {
            return None;
        }
        let mut thread = Thread::new(tid, pid, ThreadKind::App, default_container, self.clock);
        self.containers.bind_thread(default_container).ok()?;
        thread.push_work(WorkItem {
            cost: Nanos::from_micros(1),
            op: Op::Upcall(AppEvent::Start),
            charge_to: None,
            kernel_mode: false,
            span: SpanRef::NONE,
        });
        self.processes.get_mut(pid)?.threads.push(tid);
        let cpu = self.alloc_app_cpu();
        self.scheduler
            .add_task(tid, thread.sched_binding.containers(), cpu, self.clock);
        self.scheduler.set_runnable(tid, true, self.clock);
        self.threads.insert(tid, thread);
        Some(tid)
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs the simulation until virtual time `until`.
    ///
    /// The loop steps the *frontier* — the CPU(s) whose clock is furthest
    /// behind. Kernel events are delivered at the frontier time, so a CPU
    /// never runs past an event another CPU has yet to cause, and with one
    /// CPU the loop degenerates to the classic uniprocessor event loop.
    pub fn run(&mut self, world: &mut dyn World, until: Nanos) {
        self.run_core(world, until);
        self.flush_observability();
    }

    /// Advances the kernel to `horizon` and yields control back to the
    /// caller — the steppable half of [`Kernel::run`], for cluster drivers
    /// that interleave many kernels against a shared conservative horizon.
    ///
    /// Identical to `run` except that the end-of-run observability flush
    /// is *not* performed (call [`Kernel::flush_observability`] once after
    /// the final step); repeated `step_until` calls over the same total
    /// interval replay `run`'s event schedule exactly. The one observable
    /// difference is trace granularity: a horizon that lands mid-slice
    /// splits that CPU slice into two trace records (the accounting is
    /// unchanged).
    pub fn step_until(&mut self, world: &mut dyn World, horizon: Nanos) -> NodeYield {
        self.run_core(world, horizon);
        NodeYield {
            now: self.clock,
            next_event: self.events.peek_time(),
            egress: self.egress_buf.len(),
        }
    }

    /// Installs the egress filter: world-bound packets whose flow source
    /// matches any of `prefixes` are captured for [`Kernel::drain_egress_into`]
    /// instead of being delivered to the local world. An empty list
    /// removes the filter.
    pub fn set_egress_filter(&mut self, prefixes: Vec<CidrFilter>) {
        self.egress_filter = if prefixes.is_empty() {
            None
        } else {
            Some(prefixes)
        };
    }

    /// Moves all packets captured by the egress filter since the last
    /// drain into `out` as `(departure, packet)` pairs, in capture order.
    pub fn drain_egress_into(&mut self, out: &mut Vec<(Nanos, Packet)>) {
        out.append(&mut self.egress_buf);
    }

    /// Records end-of-run totals into the active trace session, if any.
    /// `run` calls this automatically; steppable (cluster) drivers call it
    /// once after their final `step_until`.
    pub fn flush_observability(&mut self) {
        if rctrace::active() {
            let rows = self.container_rows();
            rctrace::record_totals(self.global_totals(), &rows);
            let totals: Vec<rctrace::CpuTotals> = self
                .cpus
                .iter()
                .map(|c| rctrace::CpuTotals {
                    charged_cpu: c.stats.charged_cpu,
                    interrupt_cpu: c.stats.interrupt_cpu,
                    overhead_cpu: c.stats.overhead_cpu,
                    idle_cpu: c.stats.idle_cpu,
                    ctx_switches: c.stats.ctx_switches,
                })
                .collect();
            rctrace::record_cpu_totals(&totals);
        }
    }

    fn run_core(&mut self, world: &mut dyn World, until: Nanos) {
        // Sessions start and finish outside `run`, so the enabled flags
        // are loop invariants: hoisting them turns a thread-local access
        // per iteration (the dominant non-work cost of an untraced run)
        // into a register test. `self.trace_on` additionally gates the
        // `trace::set_now` calls on the hot stepping path.
        self.trace_on = trace::enabled();
        self.spans_on = span::enabled();
        let sampling = rctrace::active();
        let ncpus = self.cpus.len();
        'outer: loop {
            let min_clock = if ncpus == 1 {
                self.cpus[0].clock
            } else {
                self.cpus
                    .iter()
                    .map(|c| c.clock)
                    .min()
                    .expect("at least one CPU")
            };
            self.clock = min_clock;
            if ncpus > 1 && self.trace_on {
                // A CPU ahead of the frontier may have left the trace
                // clock in its future; rewind it for event handling. (On
                // a uniprocessor the trace clock already equals the
                // frontier, and skipping the call keeps the classic
                // emission sequence bit-for-bit.)
                trace::set_now(self.clock);
            }
            // 1. Deliver all due events (interrupt context).
            while let Some((_, ev)) = self.events.pop_due(self.clock) {
                self.handle_event(ev, world);
            }
            // Metrics sampling is purely observational: it reads kernel
            // state and injects no events, so an instrumented run replays
            // exactly the uninstrumented schedule.
            if sampling && rctrace::sample_due(self.clock) {
                let rows = self.container_rows();
                rctrace::record_sample(self.clock, &rows);
            }
            if self.clock >= until {
                break;
            }
            // 2. Give every frontier CPU one chance to run, in id order.
            //    Any progress re-derives the frontier; idle verdicts stay
            //    valid because an idle step never wakes another CPU's
            //    threads.
            let mut idle_cpus = 0usize;
            let mut idle_min = Nanos::MAX;
            for cpu in 0..ncpus {
                if self.cpus[cpu].clock != min_clock {
                    continue;
                }
                match self.step_cpu(cpu, until, world) {
                    StepOutcome::Progress => continue 'outer,
                    StepOutcome::Idle(t) => {
                        idle_cpus += 1;
                        idle_min = idle_min.min(t);
                    }
                }
            }
            // 3. The whole frontier is idle: advance it in lockstep.
            let frontier_is_all = idle_cpus == self.cpus.len();
            if frontier_is_all && idle_min == Nanos::MAX {
                // Nothing will ever happen again.
                for cpu in self.cpus.iter_mut() {
                    let dt = until - cpu.clock;
                    cpu.stats.idle_cpu += dt;
                    cpu.clock = until;
                    self.stats.idle_cpu += dt;
                }
                self.clock = until;
                if self.trace_on {
                    trace::set_now(self.clock);
                }
                break;
            }
            // Idle to the earliest of: an idle target, `until`, or a CPU
            // ahead of the frontier (whose step may wake this one).
            let mut target = until.min(idle_min);
            for c in &self.cpus {
                if c.clock > min_clock {
                    target = target.min(c.clock);
                }
            }
            debug_assert!(target > min_clock, "idle advance must make progress");
            for cpu in self.cpus.iter_mut() {
                if cpu.clock == min_clock {
                    let dt = target - cpu.clock;
                    cpu.stats.idle_cpu += dt;
                    cpu.clock = target;
                    self.stats.idle_cpu += dt;
                }
            }
            self.clock = target;
            if self.trace_on {
                trace::set_now(self.clock);
            }
        }
    }

    /// One scheduling step on `cpu`, whose clock sits at the frontier:
    /// pay overhead debt, else run the picked thread, else report when the
    /// CPU could next have work.
    fn step_cpu(&mut self, cpu: usize, until: Nanos, world: &mut dyn World) -> StepOutcome {
        let now = self.cpus[cpu].clock;
        // Pay interrupt / overhead debt ahead of scheduled work.
        if !self.cpus[cpu].overhead_deficit.is_zero() {
            let next_ev = self.events.peek_time().unwrap_or(Nanos::MAX);
            let horizon = until.min(next_ev.max(now));
            let dt = self.cpus[cpu].overhead_deficit.min(horizon - now);
            if dt.is_zero() {
                // An event is due right now; handle it first.
                return StepOutcome::Progress;
            }
            let cs = &mut self.cpus[cpu];
            let sw = cs.switch_deficit.min(dt);
            cs.switch_deficit -= sw;
            cs.stats.overhead_cpu += sw;
            cs.stats.interrupt_cpu += dt - sw;
            cs.overhead_deficit -= dt;
            cs.clock += dt;
            self.stats.overhead_cpu += sw;
            self.stats.interrupt_cpu += dt - sw;
            self.clock = self.cpus[cpu].clock;
            if self.trace_on {
                trace::set_now(self.clock);
            }
            return StepOutcome::Progress;
        }
        // Run scheduled work.
        match self
            .scheduler
            .pick(CpuId(cpu as u32), &self.containers, now)
        {
            Some(pick) => {
                if self.cpus[cpu].last_task != Some(pick.task) {
                    // Register the switch cost as overhead to be paid
                    // ahead of the *next* scheduling decision, and run
                    // the picked task now (re-picking here would let an
                    // equal-usage peer grab the CPU and livelock).
                    let from = self.cpus[cpu].last_task.map(|t| t.0).unwrap_or(u32::MAX);
                    if self.trace_on {
                        trace::emit_at(now, || TraceEventKind::CtxSwitch {
                            from,
                            to: pick.task.0,
                            container: self
                                .threads
                                .get(pick.task)
                                .map(|t| t.charge_container().as_u64())
                                .unwrap_or(NO_CONTAINER),
                            cpu: cpu as u32,
                        });
                    }
                    self.stats.ctx_switches += 1;
                    let cs = &mut self.cpus[cpu];
                    cs.stats.ctx_switches += 1;
                    cs.overhead_deficit += self.cfg.cost.ctx_switch;
                    cs.switch_deficit += self.cfg.cost.ctx_switch;
                    cs.last_task = Some(pick.task);
                }
                let Some(th) = self.threads.get_mut(pick.task) else {
                    self.scheduler.remove_task(pick.task);
                    return StepOutcome::Progress;
                };
                if !th.has_work() {
                    // Defensive: a runnable thread without work parks.
                    th.state = ThreadState::Blocked(WaitFor::Idle);
                    self.scheduler.set_runnable(pick.task, false, now);
                    return StepOutcome::Progress;
                }
                let next_ev = self.events.peek_time().unwrap_or(Nanos::MAX);
                let horizon = until.min(next_ev).min(now.saturating_add(pick.slice));
                let budget = horizon.saturating_sub(now);
                let dt = th.remaining.min(budget);
                let span = th.queue.front().map(|i| i.span).unwrap_or(SpanRef::NONE);
                if !dt.is_zero() {
                    th.remaining -= dt;
                    if span.id != 0 {
                        let ph = if span.stall {
                            Phase::ReclaimStall
                        } else {
                            Phase::CpuRun
                        };
                        span::cpu_transition(span.id, ph, now);
                    }
                    let container = th.charge_container();
                    let kernel_mode = th.charge_kernel_mode();
                    let target = if self.containers.contains(container) {
                        container
                    } else {
                        self.containers.root()
                    };
                    self.charge_scheduled(target, dt, kernel_mode);
                    let cs = &mut self.cpus[cpu];
                    cs.stats.charged_cpu += dt;
                    cs.clock += dt;
                    self.clock = cs.clock;
                    if self.trace_on {
                        trace::set_now(self.clock);
                    }
                    self.scheduler
                        .charge(pick.task, target, dt, &self.containers, self.clock);
                    self.stats.charged_cpu += dt;
                }
                let finished = self
                    .threads
                    .get(pick.task)
                    .map(|t| t.remaining.is_zero())
                    .unwrap_or(false);
                if finished {
                    self.complete_item(pick.task, world);
                } else if span.id != 0 {
                    // Preempted mid-item: the request is back to waiting
                    // for the CPU.
                    span::cpu_transition(span.id, Phase::CpuQueue, self.clock);
                }
                StepOutcome::Progress
            }
            None => {
                // Before idling, hand parked kernel network threads
                // their pending (possibly starvable) backlog: priority
                // zero means "run only when nothing else wants the
                // CPU" — which is now.
                let parked: Vec<(Pid, TaskId)> = self
                    .kthreads
                    .iter()
                    .map(|(pid, &ktid)| (pid, ktid))
                    .filter(|&(pid, ktid)| {
                        self.threads
                            .get(ktid)
                            .map(|t| !t.has_work())
                            .unwrap_or(false)
                            && self
                                .pending
                                .get(pid)
                                .map(|q| !q.is_empty())
                                .unwrap_or(false)
                    })
                    .collect();
                if !parked.is_empty() {
                    for (pid, ktid) in parked {
                        self.kthread_refill_inner(pid, ktid, true);
                    }
                    return StepOutcome::Progress;
                }
                // Work conservation (multiprocessor only): before going
                // idle, steal a waiting application thread from the CPU
                // with the deepest runnable backlog. The periodic
                // balancer enforces *shares*; stealing keeps CPUs from
                // idling while work queues elsewhere between its ticks.
                if self.cpus.len() > 1 {
                    if let Some((task, from)) = self.steal_candidate(cpu) {
                        self.scheduler.migrate(task, CpuId(cpu as u32), now);
                        self.stats.migrations += 1;
                        let container = self
                            .threads
                            .get(task)
                            .map(|t| t.charge_container().as_u64())
                            .unwrap_or(NO_CONTAINER);
                        let (f, t) = (from as u32, cpu as u32);
                        trace::emit_at(now, || TraceEventKind::Migrate {
                            task: task.0,
                            from_cpu: f,
                            to_cpu: t,
                            container,
                        });
                        return StepOutcome::Progress;
                    }
                }
                let mut target = until.min(self.events.peek_time().unwrap_or(Nanos::MAX));
                if let Some(r) =
                    self.scheduler
                        .next_release_time(CpuId(cpu as u32), &self.containers, now)
                {
                    target = target.min(r.max(now));
                }
                if target == Nanos::MAX {
                    return StepOutcome::Idle(Nanos::MAX);
                }
                if target <= now {
                    // Events due now; loop to deliver them.
                    return StepOutcome::Progress;
                }
                StepOutcome::Idle(target)
            }
        }
    }

    /// The single charge path for scheduled CPU time, shared by every
    /// configuration: kernel-mode work charges the container's kernel CPU
    /// sub-account, user work the plain CPU account, and either way the
    /// container table emits the `Charge` trace event. Keeping one helper
    /// prevents the SMP path from drifting from the uniprocessor path.
    fn charge_scheduled(&mut self, target: ContainerId, dt: Nanos, kernel_mode: bool) {
        if kernel_mode {
            let _ = self.containers.charge_cpu_kernel(target, dt);
        } else {
            let _ = self.containers.charge_cpu(target, dt);
        }
    }

    // ------------------------------------------------------------------
    // Event handling (interrupt context)
    // ------------------------------------------------------------------

    fn handle_event(&mut self, ev: KernelEvent, world: &mut dyn World) {
        self.stats.sim_events += 1;
        match ev {
            KernelEvent::PacketIn(pkt) => self.receive_packet(pkt),
            KernelEvent::PacketToWorld(pkt) => {
                if let Some(filter) = self.egress_filter.as_ref() {
                    if filter.iter().any(|f| f.matches(pkt.flow.src)) {
                        self.egress_buf.push((self.clock, pkt));
                        return;
                    }
                }
                let mut actions = std::mem::take(&mut self.world_buf);
                world.on_packet(pkt, self.clock, &mut actions);
                self.apply_world_actions(&mut actions);
                self.world_buf = actions;
            }
            KernelEvent::WorldTimer(tag) => {
                let mut actions = std::mem::take(&mut self.world_buf);
                world.on_timer(tag, self.clock, &mut actions);
                self.apply_world_actions(&mut actions);
                self.world_buf = actions;
            }
            KernelEvent::TimerFired(task, tag) => self.timer_fired(task, tag),
            KernelEvent::Prune => self.prune_bindings(),
            KernelEvent::DiskTick => self.disk_tick(),
            KernelEvent::Balance => self.rebalance(),
            KernelEvent::LinkTick => self.link_tick(),
        }
    }

    // ------------------------------------------------------------------
    // Container-aware load balancing (multiprocessor only)
    // ------------------------------------------------------------------

    /// Periodic container-aware load balancing. Containers are ranked by
    /// how far they lag their *global* entitlement over the last window
    /// (`effective_share × ncpus × window` versus the growth of their
    /// subtree CPU usage); in that order, each container's runnable
    /// application threads are spread evenly across CPUs, preferring the
    /// globally least-loaded CPU as the target. The most underserved
    /// container therefore claims presence on underused CPUs first, which
    /// is what keeps fixed shares global while run queues are per-CPU.
    /// Kernel network threads are pinned to their container's home CPU and
    /// never migrate.
    /// Picks a thread for an idle CPU to steal: the lowest-id runnable
    /// application thread on the CPU with the deepest runnable backlog
    /// (ties broken toward the lowest CPU id). Only CPUs with at least
    /// two waiting threads are victims — stealing a CPU's sole runnable
    /// thread would just move the work without creating parallelism.
    fn steal_candidate(&self, thief: usize) -> Option<(TaskId, usize)> {
        let ncpus = self.cpus.len();
        let mut best: Vec<TaskId> = Vec::new();
        let mut from = thief;
        for victim in 0..ncpus {
            if victim == thief {
                continue;
            }
            let mut queued: Vec<TaskId> = Vec::new();
            for (tid, th) in self.threads.iter() {
                if th.kind == ThreadKind::App
                    && th.state == ThreadState::Runnable
                    && self.scheduler.cpu_of(tid) == Some(CpuId(victim as u32))
                {
                    queued.push(tid);
                }
            }
            if queued.len() >= 2 && queued.len() > best.len() {
                best = queued;
                from = victim;
            }
        }
        best.first().map(|&t| (t, from))
    }

    fn rebalance(&mut self) {
        let ncpus = self.cfg.sched.ncpus as usize;
        if ncpus > 1 {
            // Rank containers by entitlement lag over the last window.
            let window = self.cfg.sched.balance_interval.as_secs_f64();
            let mut ranked: Vec<(ContainerId, f64)> = Vec::new();
            for (id, _c) in self.containers.iter() {
                let used = self.containers.subtree_cpu(id).unwrap_or(Nanos::ZERO);
                let prev = self
                    .balance_snapshot
                    .insert(id.as_u64(), used)
                    .unwrap_or(Nanos::ZERO);
                let got = (used.saturating_sub(prev)).as_secs_f64();
                let entitled =
                    self.containers.effective_share(id).unwrap_or(0.0) * ncpus as f64 * window;
                ranked.push((id, entitled - got));
            }
            ranked.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.as_u64().cmp(&b.0.as_u64()))
            });
            // Global per-CPU load of runnable threads — including pinned
            // kernel network threads, so the CPUs hosting hot protocol
            // threads are dispreferred as migration targets.
            let mut load = vec![0i64; ncpus];
            for (tid, th) in self.threads.iter() {
                if th.state == ThreadState::Runnable {
                    if let Some(c) = self.scheduler.cpu_of(tid) {
                        load[c.0 as usize] += 1;
                    }
                }
            }
            for (cid, _lag) in ranked {
                // This container's runnable application threads, grouped
                // by current CPU (BTreeMap order: ascending task id).
                let mut on_cpu: Vec<Vec<TaskId>> = vec![Vec::new(); ncpus];
                let mut total = 0usize;
                for (tid, th) in self.threads.iter() {
                    if th.kind == ThreadKind::App
                        && th.state == ThreadState::Runnable
                        && th.charge_container() == cid
                    {
                        if let Some(c) = self.scheduler.cpu_of(tid) {
                            on_cpu[c.0 as usize].push(tid);
                            total += 1;
                        }
                    }
                }
                if total < 2 {
                    continue;
                }
                // Move threads from the container's most- to its
                // least-populated CPU until no pair differs by more than
                // one.
                loop {
                    let mut from = 0usize;
                    let mut to = 0usize;
                    for i in 1..ncpus {
                        if on_cpu[i].len() > on_cpu[from].len() {
                            from = i;
                        }
                        if on_cpu[i].len() < on_cpu[to].len()
                            || (on_cpu[i].len() == on_cpu[to].len() && load[i] < load[to])
                        {
                            to = i;
                        }
                    }
                    if on_cpu[from].len() - on_cpu[to].len() <= 1 {
                        break;
                    }
                    let task = on_cpu[from].remove(0);
                    if !self.scheduler.migrate(task, CpuId(to as u32), self.clock) {
                        break;
                    }
                    on_cpu[to].push(task);
                    load[from] -= 1;
                    load[to] += 1;
                    self.stats.migrations += 1;
                    let container = cid.as_u64();
                    let (f, t) = (from as u32, to as u32);
                    trace::emit_at(self.clock, || TraceEventKind::Migrate {
                        task: task.0,
                        from_cpu: f,
                        to_cpu: t,
                        container,
                    });
                }
            }
        }
        self.events.schedule(
            self.clock + self.cfg.sched.balance_interval,
            KernelEvent::Balance,
        );
    }

    // ------------------------------------------------------------------
    // Disk I/O
    // ------------------------------------------------------------------

    /// Submits a disk read on behalf of `task`; the completion delivers
    /// `AppEvent::FileRead { tag, .. }` once the service time has elapsed
    /// and the copy cost has been consumed. Completed reads populate the
    /// buffer cache.
    pub(crate) fn submit_disk_read(
        &mut self,
        file: u64,
        bytes: u64,
        principal: ContainerId,
        task: TaskId,
        tag: u64,
        span: u64,
    ) {
        // The completion interrupt fires on the CPU the waiting thread
        // currently runs on (CPU 0 on a uniprocessor).
        let intr_cpu = self.scheduler.cpu_of(task).map(|c| c.0).unwrap_or(0);
        // Fault decision at submit time: a spike stretches the service
        // time (charged to the request's principal, like real degraded
        // media), an error completes the request failed after its full
        // service time.
        let (extra, fail) = match self
            .injector
            .as_mut()
            .and_then(|i| i.disk_fault(self.clock))
        {
            Some(DiskFault::Spike(extra)) => {
                let cu = principal.as_u64();
                trace::emit_at(self.clock, || TraceEventKind::FaultDiskSpike {
                    file,
                    extra,
                    container: cu,
                });
                (extra, false)
            }
            Some(DiskFault::Error) => {
                let cu = principal.as_u64();
                trace::emit_at(self.clock, || TraceEventKind::FaultDiskError {
                    file,
                    container: cu,
                });
                (Nanos::ZERO, true)
            }
            None => (Nanos::ZERO, false),
        };
        let req = self.disk.submit_with_fault(
            DiskRequest {
                file,
                bytes,
                charge_to: principal,
                intr_cpu,
                span,
            },
            extra,
            fail,
            &self.containers,
            self.clock,
        );
        self.disk_waiters.insert(
            req,
            DiskWaiter {
                task,
                tag,
                cache: true,
                span,
            },
        );
        self.arm_disk_tick();
    }

    /// Disk-interrupt completion path: the device charges service time to
    /// the owning containers, the interrupt handler pays a small CPU cost
    /// at interrupt level, and the waiting thread receives the copy work
    /// plus upcall, charged to the request's principal.
    fn disk_tick(&mut self) {
        self.disk_tick_armed = false;
        let completions = self.disk.advance(self.clock, &mut self.containers);
        for c in completions {
            let cpu = (c.intr_cpu as usize).min(self.cpus.len() - 1);
            self.cpus[cpu].overhead_deficit += self.cfg.cost.disk_intr;
            let Some(w) = self.disk_waiters.remove(&c.req) else {
                continue;
            };
            if c.ok && w.cache && self.containers.contains(c.charge_to) {
                if let Some(acct) = self.mem.as_mut() {
                    let _ = mem::cache_insert_accounted(
                        &mut self.disk_cache,
                        &mut self.containers,
                        acct,
                        c.file,
                        c.bytes,
                        c.charge_to,
                    );
                } else {
                    let _ =
                        self.disk_cache
                            .insert(c.file, c.bytes, c.charge_to, &mut self.containers);
                }
            }
            // A failed request delivers `bytes: 0`: the application sees
            // a short read and must treat it as an I/O error. The copy
            // cost is only paid for bytes actually transferred.
            let delivered = if c.ok { c.bytes } else { 0 };
            if w.span != 0 {
                // Disk service is over; the copy work now waits for CPU.
                span::transition(w.span, Phase::CpuQueue, self.clock);
            }
            self.deliver_disk_upcall(
                w.task,
                WorkItem {
                    cost: self.cfg.cost.file_copy(delivered),
                    op: Op::Upcall(AppEvent::FileRead {
                        tag: w.tag,
                        bytes: delivered,
                        cached: false,
                    }),
                    charge_to: Some(c.charge_to),
                    kernel_mode: true,
                    span: SpanRef::of(w.span),
                },
            );
        }
        self.arm_disk_tick();
    }

    /// Schedules the next `DiskTick` at the in-flight request's finish
    /// time. The disk is non-preemptive, so a started request's finish
    /// time never changes and one tick per completion suffices.
    fn arm_disk_tick(&mut self) {
        if self.disk_tick_armed {
            return;
        }
        if let Some(t) = self.disk.next_completion_time() {
            self.events
                .schedule(t.max(self.clock), KernelEvent::DiskTick);
            self.disk_tick_armed = true;
        }
    }

    /// Wakes `task` with disk-read completion work, restoring its previous
    /// wait (select, event API, ...) after the queue drains — the same
    /// out-of-band pattern as timers and IPC doorbells.
    fn deliver_disk_upcall(&mut self, task: TaskId, item: WorkItem) {
        let Some(th) = self.threads.get_mut(task) else {
            return;
        };
        if th.state == ThreadState::Exited {
            return;
        }
        if let ThreadState::Blocked(w) = th.state.clone() {
            self.resume_waits.or_insert(task, w);
        }
        th.state = ThreadState::Runnable;
        th.push_work(item);
        self.scheduler.set_runnable(task, true, self.clock);
    }

    fn apply_world_actions(&mut self, actions: &mut Vec<WorldAction>) {
        for a in actions.drain(..) {
            match a {
                WorldAction::SendPacket { pkt, delay } => {
                    let at = self.clock + delay + self.cfg.cost.link_latency;
                    self.events.schedule(at, KernelEvent::PacketIn(pkt));
                }
                WorldAction::SetTimer { tag, delay } => {
                    self.events
                        .schedule(self.clock + delay, KernelEvent::WorldTimer(tag));
                }
            }
        }
    }

    /// Interrupt-level receive path. The packet's flow hash picks the CPU
    /// whose interrupt handler classifies it (RSS-style steering; always
    /// CPU 0 on a uniprocessor), and any interrupt-level protocol work
    /// runs there too.
    ///
    /// When a fault plan is active, the wire itself may misbehave first:
    /// the packet can be lost, corrupted, or delayed (reordered) before
    /// the NIC counts it. Delayed packets are rescheduled as fresh
    /// arrivals and re-draw on delivery, so a packet's total extra delay
    /// is a geometric sum that terminates with probability one.
    fn receive_packet(&mut self, pkt: Packet) {
        let mut pkt = pkt;
        if let Some(inj) = self.injector.as_mut() {
            match inj.net_fault(self.clock) {
                Some(NetFault::Drop) => {
                    trace::emit_at(self.clock, || TraceEventKind::FaultPacketDrop {
                        port: pkt.flow.dst_port,
                        container: NO_CONTAINER,
                    });
                    return;
                }
                Some(NetFault::Delay(d)) => {
                    trace::emit_at(self.clock, || TraceEventKind::FaultPacketDelay {
                        port: pkt.flow.dst_port,
                        delay: d,
                        container: NO_CONTAINER,
                    });
                    self.events
                        .schedule(self.clock + d, KernelEvent::PacketIn(pkt));
                    return;
                }
                Some(NetFault::Corrupt) => {
                    trace::emit_at(self.clock, || TraceEventKind::FaultPacketCorrupt {
                        port: pkt.flow.dst_port,
                        container: NO_CONTAINER,
                    });
                    match pkt.kind {
                        // Garble the payload length: the server's request
                        // decoder must reject it without panicking.
                        simnet::PacketKind::Data { ref mut bytes } => {
                            *bytes = bytes.wrapping_add(7);
                        }
                        // Control packets have no payload to garble; a
                        // corrupted one fails its checksum and is lost.
                        _ => return,
                    }
                }
                None => {}
            }
        }
        self.stats.pkts_in += 1;
        let cpu = simnet::rss_cpu(&pkt.flow, self.cfg.sched.ncpus) as usize;
        self.cpus[cpu].overhead_deficit += self.cfg.cost.intr_demux;
        let demux = self.stack.classify(&pkt);
        let sock = match demux {
            Demux::Conn(s) | Demux::Listen(s) => Some(s),
            Demux::NoMatch => None,
        };
        if self.trace_on {
            trace::emit_at(self.clock, || TraceEventKind::PacketDemux {
                port: pkt.flow.dst_port,
                matched: sock.is_some(),
                container: sock
                    .and_then(|s| self.stack.container_of(s))
                    .map(|c| c.as_u64())
                    .unwrap_or(NO_CONTAINER),
            });
        }
        if self.spans_on {
            if let (Demux::Conn(conn), simnet::PacketKind::Data { .. }) = (demux, pkt.kind) {
                // Request data on an established connection rides the
                // connection's open span; on an idle keep-alive
                // connection a fresh request span is minted here, at
                // classification.
                let mut sp = self.stack.span_of(conn);
                if !span::is_open(sp) {
                    let cu = self
                        .stack
                        .container_of(conn)
                        .map(|c| c.as_u64())
                        .unwrap_or(0);
                    sp = span::mint(self.clock, cu, Phase::CpuQueue);
                    self.stack.set_span(conn, sp);
                }
                pkt.span = sp;
            }
        }
        match self.cfg.net.discipline {
            NetDiscipline::Interrupt => {
                if self.spans_on && pkt.kind == simnet::PacketKind::Syn {
                    if let Some(s) = sock {
                        let cu = self.stack.container_of(s).map(|c| c.as_u64()).unwrap_or(0);
                        pkt.span = span::mint(self.clock, cu, Phase::SynWait);
                    }
                }
                // Full protocol processing at interrupt level, charged to
                // no principal (§3.2).
                self.cpus[cpu].overhead_deficit += self.cfg.cost.rx_cost(pkt.kind);
                let mut evs = std::mem::take(&mut self.net_buf);
                self.stack
                    .handle_classified(demux, pkt, self.clock, &mut evs);
                self.apply_net_events_interrupt(&mut evs, cpu);
                self.net_buf = evs;
            }
            NetDiscipline::Lrp | NetDiscipline::Container => {
                let Some(sock) = sock else {
                    // No owner: respond at interrupt level (stray packet —
                    // demux is `NoMatch` here, so the reclassification
                    // `handle_packet` would do is skipped).
                    self.cpus[cpu].overhead_deficit += self.cfg.cost.rx_cost(pkt.kind);
                    let mut evs = std::mem::take(&mut self.net_buf);
                    self.stack
                        .handle_classified(Demux::NoMatch, pkt, self.clock, &mut evs);
                    self.apply_net_events_interrupt(&mut evs, cpu);
                    self.net_buf = evs;
                    return;
                };
                let Some(owner) = self.sock_owner.get(sock).copied() else {
                    self.stats.early_drops += 1;
                    let cu = self
                        .stack
                        .container_of(sock)
                        .map(|c| c.as_u64())
                        .unwrap_or(NO_CONTAINER);
                    if cu != NO_CONTAINER {
                        *self.drop_charges.entry(cu).or_insert(0) += 1;
                    }
                    trace::emit_at(self.clock, || TraceEventKind::PacketDrop {
                        reason: "no-owner",
                        container: cu,
                    });
                    return;
                };
                let principal = self.packet_principal(sock, owner);
                // Per-container admission control: a handshake packet
                // classifying to a listener whose SYN or accept queue is
                // already at its budget is refused here, at interrupt
                // level, *before* any protocol work is queued — and the
                // drop is charged to the classifying (attacker's)
                // container, not to the listener (§5.7 made cheap).
                if let Demux::Listen(listener) = demux {
                    self.stack.expire_syns(listener, self.clock);
                    if self.admission_reject(listener, &pkt) {
                        self.stats.early_drops += 1;
                        let cu = principal.as_u64();
                        *self.drop_charges.entry(cu).or_insert(0) += 1;
                        let _ = self
                            .containers
                            .charge_rx(principal, pkt.wire_bytes() as u64);
                        trace::emit_at(self.clock, || TraceEventKind::PacketDrop {
                            reason: "admission",
                            container: cu,
                        });
                        // The paper's SYN-drop notification (§5.7) fires
                        // for admission drops too, so the application's
                        // reactive defense still sees the flood.
                        if pkt.kind == simnet::PacketKind::Syn
                            && self.stack.notify_syn_drops(listener)
                        {
                            self.deliver_oob_upcall(
                                owner,
                                AppEvent::SynDropNotice {
                                    listener,
                                    src: pkt.flow.src,
                                },
                            );
                        }
                        return;
                    }
                }
                // A SYN that survived admission mints the request span:
                // the request now exists and is waiting in the SYN queue.
                if self.spans_on && pkt.kind == simnet::PacketKind::Syn {
                    pkt.span = span::mint(self.clock, principal.as_u64(), Phase::SynWait);
                }
                let psp = pkt.span;
                let cap = self.cfg.net.pending_cap;
                let q = self.pending.or_insert(owner, PendingQueues::new(cap));
                if !q.push(principal, pkt) {
                    self.stats.early_drops += 1;
                    *self.drop_charges.entry(principal.as_u64()).or_insert(0) += 1;
                    trace::emit_at(self.clock, || TraceEventKind::PacketDrop {
                        reason: "queue-full",
                        container: principal.as_u64(),
                    });
                    span::finish(psp, self.clock, Outcome::Dropped);
                    return;
                }
                self.ensure_kthread(owner);
                self.kthread_maybe_refill(owner);
            }
        }
    }

    /// Whether admission control refuses a handshake packet for being
    /// over the configured per-listener budget. Budgets of zero disable
    /// the check, leaving the stack's own backlog bounds (and the BSD
    /// syncache eviction they imply) as the only limit.
    fn admission_reject(&self, listener: SockId, pkt: &Packet) -> bool {
        let (syn_budget, accept_budget) = self
            .listener_budgets
            .get(listener)
            .copied()
            .unwrap_or((self.cfg.net.syn_budget, self.cfg.net.accept_budget));
        match pkt.kind {
            simnet::PacketKind::Syn => {
                syn_budget > 0 && self.stack.syn_queue_len(listener) >= syn_budget
            }
            simnet::PacketKind::Ack => {
                accept_budget > 0 && self.stack.accept_queue_len(listener) >= accept_budget
            }
            _ => false,
        }
    }

    /// Installs per-listener admission budgets (from a
    /// [`ListenSpec`](crate::syscall::ListenSpec)); entries of `None` fall
    /// back to the global config budgets.
    pub(crate) fn set_listener_budgets(
        &mut self,
        listener: SockId,
        syn_budget: Option<usize>,
        accept_budget: Option<usize>,
    ) {
        if syn_budget.is_some() || accept_budget.is_some() {
            self.listener_budgets.insert(
                listener,
                (
                    syn_budget.unwrap_or(self.cfg.net.syn_budget),
                    accept_budget.unwrap_or(self.cfg.net.accept_budget),
                ),
            );
        }
    }

    /// The resource principal a received packet is classified to (§4.7):
    /// the socket's container under the Container discipline, the owning
    /// process's default container under LRP.
    fn packet_principal(&self, sock: SockId, owner: Pid) -> ContainerId {
        let fallback = self
            .processes
            .get(owner)
            .map(|p| p.default_container)
            .unwrap_or_else(|| self.containers.root());
        match self.cfg.net.discipline {
            NetDiscipline::Container => self
                .stack
                .container_of(sock)
                .filter(|c| self.containers.contains(*c))
                .unwrap_or(fallback),
            _ => fallback,
        }
    }

    fn ensure_kthread(&mut self, pid: Pid) {
        if self.kthreads.contains_key(pid) {
            return;
        }
        let Some(p) = self.processes.get(pid) else {
            return;
        };
        let container = p.default_container;
        let tid = self.alloc_task();
        // Kernel network threads need a stack too; charged best-effort —
        // the thread must exist for protocol processing to happen at all.
        let _ = self.charge_thread_stack(tid, container);
        let mut th = Thread::new(tid, pid, ThreadKind::KernelNet, container, self.clock);
        th.state = ThreadState::Blocked(WaitFor::Idle);
        let _ = self.containers.bind_thread(container);
        // Protocol processing runs — and is charged — on the owning
        // container's home CPU.
        let cpu = self.home_cpu(container);
        self.scheduler
            .add_task(tid, th.sched_binding.containers(), cpu, self.clock);
        self.threads.insert(tid, th);
        self.kthreads.insert(pid, tid);
    }

    /// Priority used to order protocol processing between principals
    /// (§4.7: "the priority ... of these containers determines the order
    /// in which they are serviced").
    fn principal_priority(&self, c: ContainerId) -> u32 {
        match self.containers.policy(c) {
            Ok(rescon::SchedPolicy::TimeShared { priority }) => priority,
            Ok(rescon::SchedPolicy::FixedShare { .. }) => 10,
            Err(_) => 0,
        }
    }

    /// Gives the process's kernel network thread its next packet if it is
    /// idle, and keeps its scheduler binding equal to the set of pending
    /// principals.
    fn kthread_maybe_refill(&mut self, pid: Pid) {
        let Some(&ktid) = self.kthreads.get(pid) else {
            return;
        };
        let idle = self
            .threads
            .get(ktid)
            .map(|t| !t.has_work())
            .unwrap_or(false);
        if idle {
            self.kthread_refill(pid, ktid);
        } else {
            self.update_kthread_binding(pid, ktid);
        }
    }

    fn kthread_refill(&mut self, pid: Pid, ktid: TaskId) {
        self.kthread_refill_inner(pid, ktid, false)
    }

    /// Refills the kernel network thread. Packets belonging to a
    /// priority-zero (starvable) principal are only *started* when
    /// `allow_starvable` or when no other thread is runnable — otherwise a
    /// flood container's backlog would repeatedly be picked up in
    /// micro-idle gaps and then finish at elevated priority once real work
    /// arrived (a recurring priority inversion).
    fn kthread_refill_inner(&mut self, pid: Pid, ktid: TaskId, allow_starvable: bool) {
        let containers = &self.containers;
        let prio_of = |c: ContainerId| match containers.policy(c) {
            Ok(rescon::SchedPolicy::TimeShared { priority }) => priority,
            Ok(rescon::SchedPolicy::FixedShare { .. }) => 10,
            Err(_) => 0,
        };
        if !allow_starvable {
            let next_is_starvable = self
                .pending
                .get(pid)
                .and_then(|q| q.peek_highest(prio_of))
                .map(|c| prio_of(c) == 0)
                .unwrap_or(false);
            if next_is_starvable {
                let system_busy = self
                    .threads
                    .iter()
                    .any(|(id, t)| id != ktid && t.state == ThreadState::Runnable);
                if system_busy {
                    // Leave the backlog queued; the idle path restarts us.
                    if let Some(th) = self.threads.get_mut(ktid) {
                        if !th.has_work() {
                            th.state = ThreadState::Blocked(WaitFor::Idle);
                            self.scheduler.set_runnable(ktid, false, self.clock);
                        }
                    }
                    return;
                }
            }
        }
        let containers = &self.containers;
        let popped = match self.pending.get_mut(pid) {
            Some(q) => q.pop_highest(|c| match containers.policy(c) {
                Ok(rescon::SchedPolicy::TimeShared { priority }) => priority,
                Ok(rescon::SchedPolicy::FixedShare { .. }) => 10,
                Err(_) => 0,
            }),
            None => None,
        };
        match popped {
            Some((principal, pkt)) => {
                if self.trace_on {
                    trace::emit_at(self.clock, || TraceEventKind::LrpDispatch {
                        task: ktid.0,
                        container: principal.as_u64(),
                    });
                }
                let cost = self.cfg.cost.rx_cost(pkt.kind);
                let psp = pkt.span;
                if let Some(th) = self.threads.get_mut(ktid) {
                    th.push_work(WorkItem {
                        cost,
                        op: Op::ProtoRx { pkt },
                        charge_to: Some(principal),
                        kernel_mode: true,
                        span: SpanRef::of(psp),
                    });
                    th.sched_binding.touch(principal, self.clock);
                    th.state = ThreadState::Runnable;
                }
                self.update_kthread_binding(pid, ktid);
                self.scheduler.set_runnable(ktid, true, self.clock);
            }
            None => {
                if let Some(th) = self.threads.get_mut(ktid) {
                    if !th.has_work() {
                        th.state = ThreadState::Blocked(WaitFor::Idle);
                        self.scheduler.set_runnable(ktid, false, self.clock);
                    }
                }
            }
        }
    }

    fn update_kthread_binding(&mut self, pid: Pid, ktid: TaskId) {
        let mut binding: Vec<ContainerId> = Vec::new();
        if let Some(th) = self.threads.get(ktid) {
            if let Some(c) = th.queue.front().and_then(|i| i.charge_to) {
                binding.push(c);
            }
        }
        if let Some(q) = self.pending.get(pid) {
            for c in q.pending_principals() {
                if !binding.contains(&c) {
                    binding.push(c);
                }
            }
        }
        if binding.is_empty() {
            if let Some(p) = self.processes.get(pid) {
                binding.push(p.default_container);
            }
        }
        self.scheduler.set_binding(ktid, &binding, self.clock);
    }

    // ------------------------------------------------------------------
    // Net event application
    // ------------------------------------------------------------------

    /// Applies protocol-processing results in interrupt context on `cpu`:
    /// transmit costs are interrupt work there; wakeups happen
    /// immediately.
    fn apply_net_events_interrupt(&mut self, evs: &mut Vec<NetEvent>, cpu: usize) {
        for ev in evs.drain(..) {
            match ev {
                NetEvent::PacketOut(p) => {
                    self.cpus[cpu].overhead_deficit += self.cfg.cost.tx_cost(p.kind);
                    self.transmit(p);
                }
                other => self.apply_wakeup_event(other),
            }
        }
    }

    /// Applies protocol-processing results on a kernel thread: transmits
    /// are queued as charged work on the same thread.
    fn apply_net_events_kthread(
        &mut self,
        evs: &mut Vec<NetEvent>,
        ktid: TaskId,
        principal: Option<ContainerId>,
    ) {
        for ev in evs.drain(..) {
            match ev {
                NetEvent::PacketOut(p) => {
                    let cost = self.cfg.cost.tx_cost(p.kind);
                    if let Some(th) = self.threads.get_mut(ktid) {
                        th.push_work(WorkItem {
                            cost,
                            op: Op::Transmit { pkts: vec![p] },
                            charge_to: principal,
                            kernel_mode: true,
                            span: SpanRef::NONE,
                        });
                    }
                }
                other => self.apply_wakeup_event(other),
            }
        }
    }

    fn apply_wakeup_event(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::PacketOut(_) => unreachable!("handled by caller"),
            NetEvent::AcceptReady { listener, conn } => {
                if let Some(owner) = self.sock_owner.get(listener).copied() {
                    self.sock_owner.insert(conn, owner);
                    if let Some(p) = self.processes.get_mut(owner) {
                        p.sockets.push(conn);
                    }
                    // The connection inherited the listener's container;
                    // count the binding so lifetimes stay exact.
                    if let Some(c) = self.stack.container_of(conn) {
                        if self.containers.bind_socket(c).is_err() {
                            self.stack.set_container(conn, None);
                        }
                        let _ = self.containers.charge_rx(c, 0);
                        // Socket-buffer and protocol-state memory (§4.4):
                        // refuse the connection if the container subtree
                        // is hard over its memory limit (after reclaim and
                        // OOM when the memory subsystem is configured).
                        let sockbuf = self.cfg.net.sockbuf_bytes;
                        let mut ok = self.charge_kernel_mem(c, MemClass::SockBuf, sockbuf);
                        if ok {
                            self.sockbuf_charges.insert(conn, (c, sockbuf));
                            let pcb = self.mem.as_ref().map_or(0, |m| m.params.pcb_bytes);
                            if pcb > 0 {
                                if self.charge_kernel_mem(c, MemClass::ConnState, pcb) {
                                    self.pcb_charges.insert(conn, (c, pcb));
                                } else {
                                    ok = false;
                                }
                            }
                        }
                        if !ok {
                            // Roll back whatever part was charged.
                            self.span_conn_teardown(conn, Outcome::Dropped);
                            self.release_sockbuf(conn);
                            let _ = self.containers.unbind_socket(c);
                            if let Some(rst) = self.stack.close(conn) {
                                let mut rst = rst;
                                rst.kind = simnet::PacketKind::Rst;
                                self.transmit_from(rst, c);
                            }
                            self.sock_owner.remove(conn);
                            if let Some(p) = self.processes.get_mut(owner) {
                                p.forget_socket(conn);
                            }
                            return;
                        }
                    }
                }
                self.notify_socket(listener);
            }
            NetEvent::Readable { conn } => {
                if let Some(c) = self.stack.container_of(conn) {
                    let _ = self.containers.charge_rx(c, 0);
                }
                self.notify_socket(conn);
            }
            NetEvent::SynDropped { listener, src } => {
                if let Some(owner) = self.sock_owner.get(listener).copied() {
                    self.deliver_oob_upcall(owner, AppEvent::SynDropNotice { listener, src });
                }
            }
            NetEvent::ConnReset { conn, container } => {
                self.release_sockbuf(conn);
                if let Some(c) = container {
                    let _ = self.containers.unbind_socket(c);
                }
                if let Some(owner) = self.sock_owner.remove(conn) {
                    if let Some(p) = self.processes.get_mut(owner) {
                        p.forget_socket(conn);
                    }
                    // Tell the owner so it can drop its per-connection
                    // state; without this, an abandoning client leaves its
                    // container bound in the application forever.
                    self.deliver_oob_upcall(owner, AppEvent::ConnReset { conn });
                }
            }
        }
    }

    /// Wakes whatever is waiting on `sock` becoming ready: `select()`
    /// sleepers, blocking readers/acceptors, and the scalable event API.
    fn notify_socket(&mut self, sock: SockId) {
        let select_scan = |n: usize| self.cfg.cost.select_scan(n);
        let mut wakes: Vec<(TaskId, WorkItem)> = Vec::new();
        for (tid, th) in self.threads.iter() {
            let matched = match &th.state {
                ThreadState::Blocked(WaitFor::Select { socks }) => {
                    if socks.contains(&sock) {
                        Some(WorkItem {
                            cost: select_scan(socks.len()),
                            op: Op::DeliverSelect {
                                socks: socks.clone(),
                            },
                            charge_to: None,
                            kernel_mode: true,
                            span: SpanRef::NONE,
                        })
                    } else {
                        None
                    }
                }
                ThreadState::Blocked(WaitFor::Readable(s)) if *s == sock => Some(WorkItem {
                    cost: self.cfg.cost.read_syscall,
                    op: Op::DeliverSelect { socks: vec![sock] },
                    charge_to: None,
                    kernel_mode: true,
                    span: SpanRef::NONE,
                }),
                ThreadState::Blocked(WaitFor::Acceptable(l)) if *l == sock => Some(WorkItem {
                    cost: self.cfg.cost.accept_syscall,
                    op: Op::DeliverSelect { socks: vec![sock] },
                    charge_to: None,
                    kernel_mode: true,
                    span: SpanRef::NONE,
                }),
                _ => None,
            };
            if let Some(item) = matched {
                wakes.push((tid, item));
            }
        }
        for (tid, item) in wakes {
            if let Some(th) = self.threads.get_mut(tid) {
                th.state = ThreadState::Runnable;
                th.push_work(item);
                self.scheduler.set_runnable(tid, true, self.clock);
            }
        }
        // Scalable event API.
        if let Some(owner) = self.sock_owner.get(sock).copied() {
            let queued = self
                .processes
                .get_mut(owner)
                .map(|p| p.queue_event(sock))
                .unwrap_or(false);
            if queued {
                self.wake_event_waiter(owner);
            }
        }
    }

    fn wake_event_waiter(&mut self, pid: Pid) {
        let qlen = self
            .processes
            .get(pid)
            .map(|p| p.event_queue.len())
            .unwrap_or(0);
        if qlen == 0 {
            return;
        }
        let cost = self.cfg.cost.event_delivery(qlen);
        // Indexed walk instead of cloning the thread list: this runs for
        // every queued socket event, and the clone was a per-event
        // allocation.
        let nthreads = self
            .processes
            .get(pid)
            .map(|p| p.threads.len())
            .unwrap_or(0);
        for i in 0..nthreads {
            let Some(tid) = self
                .processes
                .get(pid)
                .and_then(|p| p.threads.get(i).copied())
            else {
                break;
            };
            let blocked = matches!(
                self.threads.get(tid).map(|t| &t.state),
                Some(ThreadState::Blocked(WaitFor::Event))
            );
            if blocked {
                if let Some(th) = self.threads.get_mut(tid) {
                    th.state = ThreadState::Runnable;
                    th.push_work(WorkItem {
                        cost,
                        op: Op::DeliverEvents,
                        charge_to: None,
                        kernel_mode: true,
                        span: SpanRef::NONE,
                    });
                    self.scheduler.set_runnable(tid, true, self.clock);
                }
                break; // One waiter handles the batch.
            }
        }
    }

    /// Delivers an out-of-band upcall (SYN-drop notice, child exit) to a
    /// process's first application thread, waking it if blocked and
    /// restoring its wait afterwards.
    fn deliver_oob_upcall(&mut self, pid: Pid, ev: AppEvent) {
        let Some(tid) = self
            .processes
            .get(pid)
            .and_then(|p| p.threads.first().copied())
        else {
            return;
        };
        let Some(th) = self.threads.get_mut(tid) else {
            return;
        };
        if let ThreadState::Blocked(w) = th.state.clone() {
            self.resume_waits.or_insert(tid, w);
            th.state = ThreadState::Runnable;
        }
        th.push_work(WorkItem {
            cost: self.cfg.cost.event_api_base,
            op: Op::Upcall(ev),
            charge_to: None,
            kernel_mode: true,
            span: SpanRef::NONE,
        });
        self.scheduler.set_runnable(tid, true, self.clock);
    }

    fn timer_fired(&mut self, task: TaskId, tag: u64) {
        let Some(th) = self.threads.get_mut(task) else {
            return;
        };
        match &th.state {
            ThreadState::Blocked(WaitFor::Timer { tag: t }) if *t == tag => {
                th.state = ThreadState::Runnable;
                th.push_work(WorkItem {
                    cost: Nanos::from_micros(1),
                    op: Op::Upcall(AppEvent::Timer { tag }),
                    charge_to: None,
                    kernel_mode: true,
                    span: SpanRef::NONE,
                });
                self.scheduler.set_runnable(task, true, self.clock);
            }
            ThreadState::Exited => {}
            _ => {
                // The thread is busy: deliver when it gets there.
                th.push_work(WorkItem {
                    cost: Nanos::from_micros(1),
                    op: Op::Upcall(AppEvent::Timer { tag }),
                    charge_to: None,
                    kernel_mode: true,
                    span: SpanRef::NONE,
                });
                if matches!(th.state, ThreadState::Blocked(_)) {
                    if let ThreadState::Blocked(w) = th.state.clone() {
                        self.resume_waits.or_insert(task, w);
                    }
                    th.state = ThreadState::Runnable;
                    self.scheduler.set_runnable(task, true, self.clock);
                }
            }
        }
    }

    fn prune_bindings(&mut self) {
        let now = self.clock;
        let age = self.cfg.sched.prune_age;
        let mut updates: Vec<(TaskId, Vec<ContainerId>)> = Vec::new();
        for (tid, th) in self.threads.iter_mut() {
            if th.kind != ThreadKind::App {
                continue;
            }
            let removed = th.sched_binding.prune(now, age);
            // The current resource binding always stays.
            th.sched_binding.touch(th.resource_binding, now);
            if removed > 0 {
                updates.push((tid, th.sched_binding.containers().to_vec()));
            }
        }
        for (tid, binding) in updates {
            self.scheduler.set_binding(tid, &binding, now);
        }
        self.events.schedule(
            self.clock + self.cfg.sched.prune_interval,
            KernelEvent::Prune,
        );
    }

    // ------------------------------------------------------------------
    // Work-item completion
    // ------------------------------------------------------------------

    fn complete_item(&mut self, task: TaskId, world: &mut dyn World) {
        let Some(th) = self.threads.get_mut(task) else {
            return;
        };
        let Some(item) = th.pop_completed() else {
            return;
        };
        let pid = th.pid;
        if item.span.id != 0 {
            // The thread is now acting on this request: work it pushes
            // from the upcall inherits the span, and until that work runs
            // the request is queued for the CPU again. Operation-specific
            // sites below override the phase at the same timestamp
            // (zero-width segments conserve trivially).
            th.cur_span = item.span.id;
            span::cpu_transition(item.span.id, Phase::CpuQueue, self.clock);
        }
        match item.op {
            Op::Nop => {}
            Op::Upcall(ev) => self.deliver_upcall(pid, task, ev),
            Op::DeliverSelect { socks } => {
                let ready: Vec<SockId> = socks
                    .iter()
                    .copied()
                    .filter(|&s| self.sock_ready(s))
                    .collect();
                if ready.is_empty() {
                    self.block_or_defer(task, WaitFor::Select { socks });
                } else {
                    self.stats.upcalls += 1;
                    self.deliver_upcall(pid, task, AppEvent::SelectReady { ready });
                }
            }
            Op::DeliverEvents => {
                let mut events: Vec<SockId> = Vec::new();
                if let Some(p) = self.processes.get_mut(pid) {
                    while let Some(s) = p.event_queue.pop_front() {
                        events.push(s);
                        if events.len() >= 64 {
                            break;
                        }
                    }
                }
                if events.is_empty() {
                    self.block_or_defer(task, WaitFor::Event);
                } else {
                    if self.cfg.containers_enabled {
                        // §5.5: the kernel delivers events in container
                        // priority order.
                        let mut keyed: Vec<(u32, usize, SockId)> = events
                            .iter()
                            .enumerate()
                            .map(|(i, &s)| {
                                let prio = self
                                    .stack
                                    .container_of(s)
                                    .map(|c| self.principal_priority(c))
                                    .unwrap_or(10);
                                (prio, i, s)
                            })
                            .collect();
                        keyed.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                        events = keyed.into_iter().map(|(_, _, s)| s).collect();
                    }
                    self.stats.upcalls += 1;
                    self.deliver_upcall(pid, task, AppEvent::EventReady { events });
                }
            }
            Op::Transmit { pkts } => {
                for p in pkts {
                    if let Demux::Conn(s) = self.stack.classify(&p) {
                        if let Some(c) = self.stack.container_of(s) {
                            let _ = self.containers.charge_tx(c, p.kind.payload_bytes() as u64);
                        }
                    }
                    self.transmit(p);
                }
            }
            Op::DeliverWritable { sock } => {
                if self.sock_writable(sock) {
                    self.stats.upcalls += 1;
                    self.deliver_upcall(pid, task, AppEvent::Writable { sock });
                } else {
                    // The headroom was consumed again before this thread
                    // ran; go back to sleep on the same condition.
                    self.block_or_defer(task, WaitFor::Writable(sock));
                }
            }
            Op::CloseSock { sock } => {
                self.span_conn_teardown(sock, Outcome::Aborted);
                self.release_sockbuf(sock);
                let bound = self.stack.container_of(sock);
                // Capture the transmit principal before the close frees
                // the socket: the FIN's wire time is still the closer's.
                let tx_owner = self.tx_principal(sock);
                if let Some(fin) = self.stack.close(sock) {
                    self.transmit_from(fin, tx_owner);
                }
                if let Some(c) = bound {
                    // Dropping the socket's container binding may destroy
                    // the per-connection container (§4.6).
                    let _ = self.containers.unbind_socket(c);
                }
                self.sock_owner.remove(sock);
                if let Some(p) = self.processes.get_mut(pid) {
                    p.forget_socket(sock);
                }
            }
            Op::Block(wait) => {
                self.resume_waits.remove(task);
                self.block_or_defer(task, wait);
            }
            Op::ProtoRx { pkt } => {
                let principal = item.charge_to;
                // Classified at processing time, not arrival time: the
                // connection table may have changed while the packet
                // waited in the pending queue.
                let demux = self.stack.classify(&pkt);
                let mut evs = std::mem::take(&mut self.net_buf);
                self.stack
                    .handle_classified(demux, pkt, self.clock, &mut evs);
                self.apply_net_events_kthread(&mut evs, task, principal);
                self.net_buf = evs;
            }
            Op::Exit => {
                self.exit_thread(task);
                return;
            }
        }
        // Post-completion: park, refill, or resume.
        let Some(th) = self.threads.get(task) else {
            return;
        };
        if th.state == ThreadState::Runnable && !th.has_work() {
            match th.kind {
                ThreadKind::KernelNet => self.kthread_refill(pid, task),
                ThreadKind::App => {
                    if let Some(w) = self.resume_waits.remove(task) {
                        self.block_thread(task, w);
                    } else {
                        if let Some(th) = self.threads.get_mut(task) {
                            th.state = ThreadState::Blocked(WaitFor::Idle);
                        }
                        self.scheduler.set_runnable(task, false, self.clock);
                    }
                }
            }
        }
        let _ = world;
    }

    fn sock_ready(&self, s: SockId) -> bool {
        self.stack.readable(s) || self.stack.accept_queue_len(s) > 0
    }

    /// Blocks a thread on `wait`, unless the condition already holds — in
    /// which case the wake work is queued immediately.
    /// Blocks `task` on `wait` — unless out-of-band work (an IPC
    /// doorbell, a SYN-drop notice, a connection reset) was queued behind
    /// the wait, in which case the thread keeps running and the wait is
    /// restored once its queue drains.
    fn block_or_defer(&mut self, task: TaskId, wait: WaitFor) {
        let has_more = self
            .threads
            .get(task)
            .map(|t| t.has_work())
            .unwrap_or(false);
        if has_more {
            self.resume_waits.insert(task, wait);
        } else {
            self.block_thread(task, wait);
        }
    }

    fn block_thread(&mut self, task: TaskId, wait: WaitFor) {
        let ready_now = match &wait {
            WaitFor::Select { socks } => socks.iter().any(|&s| self.sock_ready(s)),
            WaitFor::Readable(s) => self.stack.readable(*s),
            WaitFor::Acceptable(l) => self.stack.accept_queue_len(*l) > 0,
            WaitFor::Event => {
                let pid = self.threads.get(task).map(|t| t.pid);
                pid.and_then(|p| self.processes.get(p))
                    .map(|p| !p.event_queue.is_empty())
                    .unwrap_or(false)
            }
            WaitFor::Writable(s) => self.sock_writable(*s),
            WaitFor::Timer { .. } | WaitFor::Idle => false,
        };
        if ready_now {
            let item = match &wait {
                WaitFor::Select { socks } => WorkItem {
                    cost: self.cfg.cost.select_scan(socks.len()),
                    op: Op::DeliverSelect {
                        socks: socks.clone(),
                    },
                    charge_to: None,
                    kernel_mode: true,
                    span: SpanRef::NONE,
                },
                WaitFor::Readable(s) => WorkItem {
                    cost: self.cfg.cost.read_syscall,
                    op: Op::DeliverSelect { socks: vec![*s] },
                    charge_to: None,
                    kernel_mode: true,
                    span: SpanRef::NONE,
                },
                WaitFor::Acceptable(l) => WorkItem {
                    cost: self.cfg.cost.accept_syscall,
                    op: Op::DeliverSelect { socks: vec![*l] },
                    charge_to: None,
                    kernel_mode: true,
                    span: SpanRef::NONE,
                },
                WaitFor::Event => {
                    let pid = self.threads.get(task).map(|t| t.pid);
                    let qlen = pid
                        .and_then(|p| self.processes.get(p))
                        .map(|p| p.event_queue.len())
                        .unwrap_or(0);
                    WorkItem {
                        cost: self.cfg.cost.event_delivery(qlen),
                        op: Op::DeliverEvents,
                        charge_to: None,
                        kernel_mode: true,
                        span: SpanRef::NONE,
                    }
                }
                WaitFor::Writable(s) => WorkItem {
                    cost: self.cfg.cost.write_syscall,
                    op: Op::DeliverWritable { sock: *s },
                    charge_to: None,
                    kernel_mode: true,
                    span: SpanRef::NONE,
                },
                WaitFor::Timer { .. } | WaitFor::Idle => unreachable!(),
            };
            if let Some(th) = self.threads.get_mut(task) {
                th.state = ThreadState::Runnable;
                th.push_work(item);
            }
            self.scheduler.set_runnable(task, true, self.clock);
        } else {
            if let Some(th) = self.threads.get_mut(task) {
                th.state = ThreadState::Blocked(wait);
            }
            self.scheduler.set_runnable(task, false, self.clock);
        }
    }

    fn exit_thread(&mut self, task: TaskId) {
        let Some(mut th) = self.threads.remove(task) else {
            return;
        };
        th.state = ThreadState::Exited;
        self.scheduler.remove_task(task);
        self.resume_waits.remove(task);
        self.release_thread_stack(task);
        let _ = self.containers.unbind_thread(th.resource_binding);
        let pid = th.pid;
        let (last, parent) = match self.processes.get_mut(pid) {
            Some(p) => {
                p.threads.retain(|&t| t != task);
                (p.threads.is_empty(), p.parent)
            }
            None => (false, None),
        };
        if last {
            self.exit_process(pid);
            if let Some(pp) = parent {
                if self.processes.contains_key(pp) {
                    self.deliver_oob_upcall(pp, AppEvent::ChildExited { pid });
                }
            }
        }
    }

    fn exit_process(&mut self, pid: Pid) {
        let Some(mut p) = self.processes.remove(pid) else {
            return;
        };
        // Close all sockets.
        for sock in p.sockets.clone() {
            self.release_sockbuf(sock);
            let bound = self.stack.container_of(sock);
            match self
                .stack
                .socket(sock)
                .map(|s| matches!(s.kind, simnet::SocketKind::Listen(_)))
            {
                Some(true) => {
                    // Drain queued-but-unaccepted connections first so their
                    // container bindings are released.
                    while let Some(conn) = self.stack.accept(sock) {
                        self.span_conn_teardown(conn, Outcome::Aborted);
                        let tx_owner = self.tx_principal(conn);
                        if let Some(c) = self.stack.container_of(conn) {
                            let _ = self.containers.unbind_socket(c);
                        }
                        if let Some(fin) = self.stack.close(conn) {
                            self.transmit_from(fin, tx_owner);
                        }
                        self.sock_owner.remove(conn);
                    }
                    let tx_owner = self.tx_principal(sock);
                    for rst in self.stack.close_listen(sock) {
                        self.transmit_from(rst, tx_owner);
                    }
                    self.listener_budgets.remove(sock);
                    if let Some(c) = bound {
                        let _ = self.containers.unbind_socket(c);
                    }
                }
                Some(false) => {
                    self.span_conn_teardown(sock, Outcome::Aborted);
                    let tx_owner = self.tx_principal(sock);
                    if let Some(fin) = self.stack.close(sock) {
                        self.transmit_from(fin, tx_owner);
                    }
                    if let Some(c) = bound {
                        let _ = self.containers.unbind_socket(c);
                    }
                }
                None => {}
            }
            self.sock_owner.remove(sock);
        }
        // Release container descriptors; then the default container.
        p.containers.close_all(&mut self.containers);
        let _ = self.containers.drop_descriptor_ref(p.default_container);
        // Tear down the kernel network thread.
        if let Some(ktid) = self.kthreads.remove(pid) {
            if let Some(kth) = self.threads.remove(ktid) {
                let _ = self.containers.unbind_thread(kth.resource_binding);
            }
            self.release_thread_stack(ktid);
            self.scheduler.remove_task(ktid);
        }
        // Return any outstanding `kmem_reserve` memory.
        if let Some((c, bytes)) = self.kmem_charges.remove(pid) {
            self.release_kernel_mem(c, MemClass::Other, bytes);
        }
        self.pending.remove(pid);
        self.handlers.remove(pid);
    }

    /// Releases the socket-buffer and protocol-state memory charged to a
    /// connection, if any.
    fn release_sockbuf(&mut self, sock: SockId) {
        if let Some((c, bytes)) = self.sockbuf_charges.remove(sock) {
            let _ = self
                .containers
                .release_mem_class(c, MemClass::SockBuf, bytes);
            if let Some(acct) = self.mem.as_mut() {
                acct.note_release(MemClass::SockBuf, bytes);
            }
        }
        if let Some((c, bytes)) = self.pcb_charges.remove(sock) {
            self.release_kernel_mem(c, MemClass::ConnState, bytes);
        }
    }

    // ------------------------------------------------------------------
    // Kernel memory (`simmem`): charge, reclaim, OOM
    // ------------------------------------------------------------------

    /// The kernel memory accountant, when the subsystem is configured.
    pub fn mem_acct(&self) -> Option<&MemAccountant> {
        self.mem.as_ref()
    }

    /// Charges `bytes` of class `class` kernel memory to container `c`.
    ///
    /// Without the memory subsystem this is the legacy hierarchy-limit
    /// check (and in practice never refuses, because no `mem_limit`s are
    /// set in those configurations). With it, the charge first squeezes
    /// reclaimable cache pages out of the violating subtree; if that is
    /// not enough, a container-targeted OOM kill frees the largest
    /// over-limit principal and the charge is retried once. Returns
    /// `false` when the charge is finally refused.
    fn charge_kernel_mem(&mut self, c: ContainerId, class: MemClass, bytes: u64) -> bool {
        if self.mem.is_none() {
            return self.containers.charge_mem_class(c, class, bytes).is_ok();
        }
        let acct = self.mem.as_mut().expect("configured");
        match mem::charge_with_reclaim(
            &mut self.containers,
            &mut self.disk_cache,
            acct,
            c,
            class,
            bytes,
        ) {
            Ok(()) => {
                self.mem_pressure_check(c);
                return true;
            }
            Err(fail) => {
                self.oom_kill(&fail);
            }
        }
        let acct = self.mem.as_mut().expect("configured");
        match mem::charge_with_reclaim(
            &mut self.containers,
            &mut self.disk_cache,
            acct,
            c,
            class,
            bytes,
        ) {
            Ok(()) => {
                self.mem_pressure_check(c);
                true
            }
            Err(_) => {
                self.mem.as_mut().expect("configured").refusals += 1;
                false
            }
        }
    }

    /// Releases a charge made with [`Self::charge_kernel_mem`].
    fn release_kernel_mem(&mut self, c: ContainerId, class: MemClass, bytes: u64) {
        let _ = self.containers.release_mem_class(c, class, bytes);
        if let Some(acct) = self.mem.as_mut() {
            acct.note_release(class, bytes);
        }
    }

    /// Charges the fixed kernel-stack size for a new thread (no-op when
    /// the memory subsystem is off). Returns `false` on refusal; on
    /// success the charge is remembered for release at thread exit.
    fn charge_thread_stack(&mut self, tid: TaskId, c: ContainerId) -> bool {
        let Some(bytes) = self.mem.as_ref().map(|m| m.params.stack_bytes) else {
            return true;
        };
        if bytes == 0 {
            return true;
        }
        if self.charge_kernel_mem(c, MemClass::ThreadStack, bytes) {
            self.stack_charges.insert(tid, (c, bytes));
            true
        } else {
            false
        }
    }

    fn release_thread_stack(&mut self, tid: TaskId) {
        if let Some((c, bytes)) = self.stack_charges.remove(tid) {
            self.release_kernel_mem(c, MemClass::ThreadStack, bytes);
        }
    }

    /// Backs [`SysCtx::kmem_reserve`]: pins `bytes` of kernel memory on
    /// behalf of `pid`, charged to its default container. Returns `false`
    /// when refused (only possible with the memory subsystem configured
    /// and the subtree hard over its limit).
    pub(crate) fn kmem_reserve(&mut self, pid: Pid, bytes: u64) -> bool {
        let Some(c) = self.process_container(pid) else {
            return false;
        };
        if bytes == 0 {
            return true;
        }
        if !self.charge_kernel_mem(c, MemClass::Other, bytes) {
            return false;
        }
        // The OOM triggered by this very charge may have wiped the pid's
        // previous reservation; the entry re-created here holds only what
        // is actually charged now.
        let e = self.kmem_charges.or_insert(pid, (c, 0));
        e.0 = c;
        e.1 += bytes;
        true
    }

    /// Backs [`SysCtx::kmem_release`]: returns up to `bytes` of a prior
    /// reservation.
    pub(crate) fn kmem_release(&mut self, pid: Pid, bytes: u64) {
        let Some(&(c, held)) = self.kmem_charges.get(pid) else {
            return;
        };
        let rel = bytes.min(held);
        if rel == 0 {
            return;
        }
        if rel == held {
            self.kmem_charges.remove(pid);
        } else if let Some(e) = self.kmem_charges.get_mut(pid) {
            e.1 -= rel;
        }
        self.release_kernel_mem(c, MemClass::Other, rel);
    }

    /// Container-targeted OOM (§4.4): the victim is the principal with
    /// the largest own memory charge inside the violating subtree — not
    /// an arbitrary process, and never a principal outside the subtree
    /// that caused the shortage. Its cache pages, connections, and
    /// reservations are released; every owning process gets one
    /// `AppEvent::MemKill`.
    fn oom_kill(&mut self, fail: &MemFailure) {
        let Some((victim_key, victim_bytes)) =
            mem::pick_oom_victim(&self.containers, fail.refusing)
        else {
            return;
        };
        let Some(victim_id) = self
            .containers
            .iter()
            .find(|(id, _)| id.as_u64() == victim_key)
            .map(|(id, _)| id)
        else {
            return;
        };
        if let Some(acct) = self.mem.as_mut() {
            acct.oom_kills += 1;
        }
        trace::emit(|| TraceEventKind::OomKill {
            container: fail.refusing,
            victim: victim_key,
            bytes: victim_bytes,
        });
        // 1. Drop the victim's cache pages (net delta keeps the
        //    accountant's CachePage ledger exact).
        let before = self.disk_cache.used();
        self.disk_cache.evict_owner(victim_id, &mut self.containers);
        let freed = before - self.disk_cache.used();
        if let Some(acct) = self.mem.as_mut() {
            acct.note_release(MemClass::CachePage, freed);
        }
        let mut pids: std::collections::BTreeSet<Pid> = std::collections::BTreeSet::new();
        // 2. Reset every connection whose buffers are charged to the
        //    victim (sorted for determinism: the charge map is a HashMap).
        let mut conns: Vec<SockId> = self
            .sockbuf_charges
            .iter()
            .filter(|&(_, &(c, _))| c == victim_id)
            .map(|(s, _)| s)
            .collect();
        conns.sort();
        for conn in conns {
            self.span_conn_teardown(conn, Outcome::Aborted);
            self.release_sockbuf(conn);
            let tx_owner = self.tx_principal(conn);
            if let Some(cb) = self.stack.container_of(conn) {
                let _ = self.containers.unbind_socket(cb);
            }
            if let Some(rst) = self.stack.close(conn) {
                let mut rst = rst;
                rst.kind = simnet::PacketKind::Rst;
                self.transmit_from(rst, tx_owner);
            }
            if let Some(owner) = self.sock_owner.remove(conn) {
                if let Some(p) = self.processes.get_mut(owner) {
                    p.forget_socket(conn);
                }
                pids.insert(owner);
            }
        }
        // 3. Return the victim's pinned reservations.
        let kpids: Vec<Pid> = self
            .kmem_charges
            .iter()
            .filter(|&(_, &(c, _))| c == victim_id)
            .map(|(p, _)| p)
            .collect();
        for p in kpids {
            if let Some((c, bytes)) = self.kmem_charges.remove(p) {
                self.release_kernel_mem(c, MemClass::Other, bytes);
                pids.insert(p);
            }
        }
        // 4. Notify the owners, in pid order.
        for pid in pids {
            if self.processes.contains_key(pid) {
                self.deliver_oob_upcall(
                    pid,
                    AppEvent::MemKill {
                        container: victim_key,
                    },
                );
            }
        }
    }

    /// Emits `MemPressure` for limited ancestors sitting above the
    /// configured fraction of their `mem_limit` after a successful charge.
    fn mem_pressure_check(&mut self, c: ContainerId) {
        let Some(acct) = self.mem.as_mut() else {
            return;
        };
        mem::pressure_check(&self.containers, acct, c);
    }

    // ------------------------------------------------------------------
    // Request-span transmit bookkeeping (rcspan; purely observational)
    // ------------------------------------------------------------------

    /// Counts `n` freshly queued response packets against span `sp`
    /// (called from the `send` syscall, where the packets are created).
    pub(crate) fn span_tx_queued(&mut self, sp: u64, n: u32) {
        if sp == 0 || !span::enabled() {
            return;
        }
        self.span_tx.entry(sp).or_default().queued += n;
    }

    /// Arms finish-on-last-wire-byte for span `sp`: once every counted
    /// response packet has cleared the wire, the span finishes
    /// `Completed`. Finishes immediately if nothing is outstanding.
    pub(crate) fn span_arm_finish(&mut self, sp: u64) {
        if sp == 0 || !span::enabled() {
            return;
        }
        let st = self.span_tx.entry(sp).or_default();
        st.armed = true;
        self.span_tx_check_done(sp);
    }

    /// Finishes span `sp` `Completed` if it is armed and fully drained.
    fn span_tx_check_done(&mut self, sp: u64) {
        let done = self
            .span_tx
            .get(&sp)
            .map(|st| st.armed && st.queued == 0 && st.wire == 0)
            .unwrap_or(false);
        if done {
            self.span_tx.remove(&sp);
            span::finish(sp, self.clock, Outcome::Completed);
        }
    }

    /// One response packet of span `sp` has left the simulated machine
    /// (wire completion, or instantly on the linkless path).
    fn span_tx_pkt_done(&mut self, sp: u64, wired: bool) {
        if sp == 0 {
            return;
        }
        let Some(st) = self.span_tx.get_mut(&sp) else {
            return;
        };
        if wired {
            st.wire = st.wire.saturating_sub(1);
        } else {
            st.queued = st.queued.saturating_sub(1);
        }
        if st.armed && st.queued == 0 && st.wire == 0 {
            self.span_tx.remove(&sp);
            span::finish(sp, self.clock, Outcome::Completed);
        } else if st.queued > 0 && st.wire == 0 {
            // More of the response is still queued behind other
            // principals' traffic.
            span::transition(sp, Phase::TxQueue, self.clock);
        } else if st.queued == 0 && st.wire == 0 {
            // Response bytes so far are on the far side; the request is
            // back to CPU work (e.g. producing the rest under
            // backpressure).
            span::transition(sp, Phase::CpuQueue, self.clock);
        }
    }

    /// Finishes the open span of a connection being torn down, unless the
    /// span is armed — then the in-flight transmit machinery owns the
    /// finish (the response is already on its way out).
    fn span_conn_teardown(&mut self, conn: SockId, outcome: Outcome) {
        if !span::enabled() {
            return;
        }
        let sp = self.stack.span_of(conn);
        if sp == 0 || !span::is_open(sp) {
            return;
        }
        let armed = self.span_tx.get(&sp).map(|st| st.armed).unwrap_or(false);
        if !armed {
            self.span_tx.remove(&sp);
            span::finish(sp, self.clock, outcome);
        }
    }

    fn transmit(&mut self, pkt: Packet) {
        if self.link.is_none() {
            self.stats.pkts_out += 1;
            let sp = pkt.span;
            self.events.schedule(
                self.clock + self.cfg.cost.link_latency,
                KernelEvent::PacketToWorld(pkt),
            );
            // No finite link: the packet leaves instantly, so the span
            // sees zero tx-queue and wire time.
            self.span_tx_pkt_done(sp, false);
            return;
        }
        let owner = match self.stack.classify(&pkt) {
            Demux::Conn(s) | Demux::Listen(s) => self.tx_principal(s),
            Demux::NoMatch => self.containers.root(),
        };
        self.transmit_link(pkt, owner);
    }

    /// Transmits a packet whose owning socket is already gone (FIN after
    /// close, RST on teardown), charging `owner`'s container for the wire
    /// time. Falls back to the root container if `owner` has since been
    /// destroyed. Identical to [`transmit`](Self::transmit) when no finite
    /// link is configured.
    fn transmit_from(&mut self, pkt: Packet, owner: ContainerId) {
        if self.link.is_none() {
            self.transmit(pkt);
            return;
        }
        let owner = if self.containers.contains(owner) {
            owner
        } else {
            self.containers.root()
        };
        self.transmit_link(pkt, owner);
    }

    /// The container charged for bytes transmitted on `sock`: its bound
    /// container if live, else the owning process's default container,
    /// else root.
    fn tx_principal(&self, sock: SockId) -> ContainerId {
        self.stack
            .container_of(sock)
            .filter(|c| self.containers.contains(*c))
            .or_else(|| {
                self.sock_owner
                    .get(sock)
                    .and_then(|&pid| self.processes.get(pid))
                    .map(|p| p.default_container)
                    .filter(|c| self.containers.contains(*c))
            })
            .unwrap_or_else(|| self.containers.root())
    }

    /// Hands a packet to the link scheduler and starts the wire if idle.
    fn transmit_link(&mut self, pkt: Packet, owner: ContainerId) {
        let key = owner.as_u64();
        self.link_owner_ids.insert(key, owner);
        let path = self
            .containers
            .net_weight_path(owner)
            .unwrap_or_else(|_| vec![(key, 1, None)]);
        let wire_bytes = pkt.wire_bytes() as u64;
        let wire = self
            .cfg
            .net
            .link
            .as_ref()
            .expect("transmit_link requires a configured link")
            .wire_time(wire_bytes);
        if self.trace_on {
            trace::emit_at(self.clock, || TraceEventKind::LinkQueue {
                port: pkt.flow.dst_port,
                bytes: wire_bytes,
                container: key,
            });
        }
        if pkt.span != 0 {
            // The response packet now sits in the link scheduler; unless
            // an earlier packet of the same request already occupies the
            // wire, the request is link-queued.
            let on_wire = self
                .span_tx
                .get(&pkt.span)
                .map(|st| st.wire > 0)
                .unwrap_or(false);
            if !on_wire {
                span::transition(pkt.span, Phase::TxQueue, self.clock);
            }
        }
        if let Some(link) = self.link.as_mut() {
            link.enqueue(&path, pkt, wire, self.clock);
        }
        self.link_kick();
    }

    /// Starts the next packet on an idle wire, or arms a throttle tick if
    /// every backlogged container is rate-capped.
    fn link_kick(&mut self) {
        if self.link_inflight.is_some() {
            return;
        }
        let Some(link) = self.link.as_mut() else {
            return;
        };
        match link.dispatch(self.clock) {
            Dispatch::Start { pkt, owner, wire } => {
                if self.trace_on {
                    trace::emit_at(self.clock, || TraceEventKind::LinkStart {
                        port: pkt.flow.dst_port,
                        bytes: pkt.wire_bytes() as u64,
                        container: owner,
                        wire,
                    });
                }
                if pkt.span != 0 {
                    if let Some(st) = self.span_tx.get_mut(&pkt.span) {
                        st.queued = st.queued.saturating_sub(1);
                        st.wire += 1;
                    }
                    span::transition(pkt.span, Phase::Wire, self.clock);
                }
                let done = self.clock + wire;
                self.link_inflight = Some(LinkInflight {
                    pkt,
                    owner,
                    done,
                    wire,
                });
                self.events.schedule(done, KernelEvent::LinkTick);
            }
            Dispatch::Throttled(at) => {
                let at = at.max(self.clock);
                if self.link_wait_until.is_none_or(|w| at < w) {
                    self.link_wait_until = Some(at);
                    self.events.schedule(at, KernelEvent::LinkTick);
                }
            }
            Dispatch::Idle => {}
        }
    }

    /// A `LinkTick` fired: complete the in-flight packet (charging its
    /// wire time and releasing send backpressure) and restart the wire.
    fn link_tick(&mut self) {
        self.link_wait_until = None;
        if let Some(inf) = &self.link_inflight {
            if inf.done > self.clock {
                // A stale throttle tick fired while the wire is busy; the
                // completion tick for the in-flight packet is still queued.
                return;
            }
            let LinkInflight {
                pkt, owner, wire, ..
            } = self.link_inflight.take().expect("checked above");
            self.link_busy += wire;
            self.link_wire_bytes += pkt.wire_bytes() as u64;
            self.link_pkts += 1;
            let cid = self
                .link_owner_ids
                .get(&owner)
                .copied()
                .filter(|c| self.containers.contains(*c))
                .unwrap_or_else(|| self.containers.root());
            let _ = self.containers.charge_tx_time(cid, wire);
            let payload = pkt.kind.payload_bytes() as u64;
            if payload > 0 {
                if let Some(b) = self.tx_backlog.get_mut(&owner) {
                    *b = b.saturating_sub(payload);
                    if *b == 0 {
                        self.tx_backlog.remove(&owner);
                    }
                }
                self.wake_writable(owner);
            }
            self.stats.pkts_out += 1;
            let sp = pkt.span;
            self.events.schedule(
                self.clock + self.cfg.cost.link_latency,
                KernelEvent::PacketToWorld(pkt),
            );
            self.span_tx_pkt_done(sp, true);
        }
        self.link_kick();
    }

    /// Wakes threads blocked on writability of sockets charged to `owner`
    /// whose backpressure has drained, and queues writability events for
    /// processes with event-API writable interest.
    fn wake_writable(&mut self, owner: u64) {
        let mut woken: Vec<(TaskId, SockId)> = Vec::new();
        for (tid, th) in self.threads.iter() {
            if let ThreadState::Blocked(WaitFor::Writable(s)) = th.state {
                if self.tx_principal(s).as_u64() == owner && self.sock_writable(s) {
                    woken.push((tid, s));
                }
            }
        }
        for (tid, sock) in woken {
            let cost = self.cfg.cost.write_syscall;
            if let Some(th) = self.threads.get_mut(tid) {
                th.state = ThreadState::Runnable;
                th.push_work(WorkItem {
                    cost,
                    op: Op::DeliverWritable { sock },
                    charge_to: None,
                    kernel_mode: true,
                    span: SpanRef::NONE,
                });
            }
            self.scheduler.set_runnable(tid, true, self.clock);
        }
        let pids: Vec<Pid> = self.processes.keys().collect();
        for pid in pids {
            let interested: Vec<SockId> = self
                .processes
                .get(pid)
                .map(|p| p.event_interest_w.clone())
                .unwrap_or_default();
            let mut queued = false;
            for s in interested {
                if self.tx_principal(s).as_u64() == owner && self.sock_writable(s) {
                    if let Some(p) = self.processes.get_mut(pid) {
                        queued |= p.queue_writable_event(s);
                    }
                }
            }
            if queued {
                self.wake_event_waiter(pid);
            }
        }
    }

    /// Whether `sock` can accept more send bytes without queueing past
    /// its principal's sockbuf limit. Always true without a finite link;
    /// false for closed or listening sockets.
    pub(crate) fn sock_writable(&self, sock: SockId) -> bool {
        if self.link.is_none() {
            return true;
        }
        match self.stack.socket(sock).map(|s| &s.kind) {
            Some(simnet::SocketKind::Conn(_)) => self.tx_headroom(sock) > 0,
            _ => false,
        }
    }

    /// Send bytes `sock`'s principal may still queue before hitting its
    /// effective sockbuf limit. `u64::MAX` when unlimited.
    pub(crate) fn tx_headroom(&self, sock: SockId) -> u64 {
        if self.link.is_none() {
            return u64::MAX;
        }
        let owner = self.tx_principal(sock);
        match self
            .containers
            .effective_sockbuf_limit(owner)
            .ok()
            .flatten()
        {
            Some(limit) => {
                let used = self.tx_backlog.get(&owner.as_u64()).copied().unwrap_or(0);
                limit.saturating_sub(used)
            }
            None => u64::MAX,
        }
    }

    /// Reserves send-backlog bytes against `sock`'s principal; released
    /// as the queued data clocks out on the wire.
    pub(crate) fn link_reserve(&mut self, sock: SockId, bytes: u64) {
        if self.link.is_none() || bytes == 0 {
            return;
        }
        let owner = self.tx_principal(sock).as_u64();
        *self.tx_backlog.entry(owner).or_insert(0) += bytes;
    }

    /// Whether a finite-bandwidth link is configured.
    pub(crate) fn link_configured(&self) -> bool {
        self.link.is_some()
    }

    /// Delivers an upcall to the process handler, giving it a [`SysCtx`].
    fn deliver_upcall(&mut self, pid: Pid, task: TaskId, ev: AppEvent) {
        let Some(slot) = self.handlers.get_mut(pid) else {
            return;
        };
        let Some(mut handler) = slot.take() else {
            return;
        };
        {
            let mut ctx = SysCtx::new(self, pid, task);
            handler.on_event(&mut ctx, task, ev);
        }
        if let Some(slot) = self.handlers.get_mut(pid) {
            *slot = Some(handler);
        }
    }

    // ------------------------------------------------------------------
    // Crate-internal accessors used by SysCtx
    // ------------------------------------------------------------------

    pub(crate) fn clock_now(&self) -> Nanos {
        self.clock
    }

    pub(crate) fn cost_model(&self) -> &CostModel {
        &self.cfg.cost
    }

    pub(crate) fn thread_mut(&mut self, t: TaskId) -> Option<&mut Thread> {
        self.threads.get_mut(t)
    }

    pub(crate) fn thread_ref(&self, t: TaskId) -> Option<&Thread> {
        self.threads.get(t)
    }

    pub(crate) fn process_mut(&mut self, p: Pid) -> Option<&mut Process> {
        self.processes.get_mut(p)
    }

    pub(crate) fn process_ref(&self, p: Pid) -> Option<&Process> {
        self.processes.get(p)
    }

    pub(crate) fn scheduler_mut(&mut self) -> &mut dyn Scheduler {
        self.scheduler.as_mut()
    }

    /// Hot-swaps the CPU scheduling policy. Every registered task is
    /// exported from the detaching scheduler as a policy-neutral snapshot
    /// (home CPU, binding, runnable state) and replayed into a freshly
    /// built replacement; policy ledgers (passes, decayed usages, limit
    /// buckets) start fresh for everyone at once. Charged CPU time lives
    /// in the container table and is untouched, so conservation holds
    /// across the swap. Returns the name of the detached policy.
    pub fn set_cpu_policy(&mut self, kind: SchedPolicyKind) -> &'static str {
        let now = self.clock;
        let fresh = rcpolicy::build_cpu(kind, self.cfg.sched.ncpus);
        let (from, to) = rcpolicy::swap(&mut self.scheduler, fresh, (), now);
        self.cfg.sched.policy = kind;
        trace::emit_at(now, || TraceEventKind::PolicySwap {
            plane: Plane::Cpu.label(),
            from,
            to,
        });
        rctrace::record_policy_swap(now, Plane::Cpu.label(), from, to);
        from
    }

    /// Hot-swaps the disk request-ordering policy, draining queued
    /// requests from the old discipline into the new one in arrival
    /// order. The in-flight request is untouched (disk service is
    /// non-preemptive; its finish time is already fixed). Returns the
    /// name of the detached policy.
    pub fn set_disk_policy(&mut self, kind: DiskSchedKind) -> &'static str {
        let now = self.clock;
        let from = self
            .disk
            .replace_sched(rcpolicy::build_disk(kind), &self.containers);
        self.cfg.disk.sched = kind;
        trace::emit_at(now, || TraceEventKind::PolicySwap {
            plane: Plane::Disk.label(),
            from,
            to: kind.name(),
        });
        rctrace::record_policy_swap(now, Plane::Disk.label(), from, kind.name());
        from
    }

    /// Hot-swaps the link queueing discipline, draining queued packets —
    /// with their class chains — from the old qdisc into the new one in
    /// arrival order. The packet on the wire is untouched (its completion
    /// is already scheduled); rate-cap token buckets restart at their
    /// burst allowance, per the fresh-ledger rule. Returns the detached
    /// policy's name, or `None` when no finite link is configured (the
    /// swap is then a no-op).
    pub fn set_link_policy(&mut self, qdisc: QdiscKind) -> Option<&'static str> {
        let link = self.link.as_mut()?;
        let now = self.clock;
        let (from, to) = rcpolicy::swap(link, rcpolicy::build_link(qdisc), (), now);
        if let Some(p) = self.cfg.net.link.as_mut() {
            p.qdisc = qdisc;
        }
        trace::emit_at(now, || TraceEventKind::PolicySwap {
            plane: Plane::Link.label(),
            from,
            to,
        });
        rctrace::record_policy_swap(now, Plane::Link.label(), from, to);
        // Requeued packets may be immediately dispatchable under the new
        // discipline even if the old one was throttled.
        self.link_kick();
        Some(from)
    }

    pub(crate) fn post_ipc(&mut self, from: Pid, to: Pid, tag: u64) {
        self.deliver_oob_upcall(to, AppEvent::Ipc { from, tag });
    }

    pub(crate) fn reassign_socket(&mut self, sock: SockId, from: Pid, to: Pid) {
        if let Some(p) = self.processes.get_mut(from) {
            p.forget_socket(sock);
        }
        self.sock_owner.insert(sock, to);
        if let Some(p) = self.processes.get_mut(to) {
            p.sockets.push(sock);
        }
    }

    pub(crate) fn register_socket(&mut self, sock: SockId, pid: Pid) {
        self.sock_owner.insert(sock, pid);
        if let Some(p) = self.processes.get_mut(pid) {
            p.sockets.push(sock);
        }
    }

    pub(crate) fn schedule_app_timer(&mut self, task: TaskId, at: Nanos, tag: u64) {
        self.events
            .schedule(at.max(self.clock), KernelEvent::TimerFired(task, tag));
    }

    /// Injects a packet into the NIC at an absolute time (used by
    /// harnesses to seed traffic).
    pub fn inject_packet(&mut self, pkt: Packet, at: Nanos) {
        self.events
            .schedule(at.max(self.clock), KernelEvent::PacketIn(pkt));
    }

    /// Arms a world timer at an absolute time (used by harnesses to start
    /// client logic).
    pub fn arm_world_timer(&mut self, tag: u64, at: Nanos) {
        self.events
            .schedule(at.max(self.clock), KernelEvent::WorldTimer(tag));
    }

    /// Opens a listening socket on behalf of a process without charging
    /// costs (harness setup helper; applications use
    /// [`SysCtx::listen`]).
    pub fn setup_listen(
        &mut self,
        pid: Pid,
        spec: ListenSpec,
        container: Option<ContainerId>,
    ) -> SockId {
        let mut container = container.or_else(|| self.process_container(pid));
        if let Some(c) = container {
            if self.containers.bind_socket(c).is_err() {
                container = None;
            }
        }
        let s = self.stack.listen(
            spec.port,
            spec.filter,
            container,
            self.cfg.net.syn_backlog,
            self.cfg.net.accept_backlog,
            spec.notify_syn_drops,
        );
        self.set_listener_budgets(s, spec.syn_budget, spec.accept_budget);
        self.register_socket(s, pid);
        s
    }

    /// Early-drop charges per container (`Idx::as_u64()` keys): one count
    /// per packet discarded before protocol processing, billed to the
    /// container the packet *classified to* — the attacker-pays ledger.
    /// Covers no-owner, queue-full, and admission-control drops.
    pub fn drop_charges(&self) -> &BTreeMap<u64, u64> {
        &self.drop_charges
    }

    /// Early-drop charges attributed to `container` (zero when it never
    /// overflowed anything).
    pub fn drop_charges_of(&self, container: ContainerId) -> u64 {
        self.drop_charges
            .get(&container.as_u64())
            .copied()
            .unwrap_or(0)
    }

    /// Total wire time, wire bytes, and packets the finite link has
    /// transmitted (all zero without a configured link).
    pub fn link_totals(&self) -> (Nanos, u64, u64) {
        (self.link_busy, self.link_wire_bytes, self.link_pkts)
    }

    /// Wire time charged to `container`'s subtree by the link scheduler.
    pub fn subtree_tx_of(&self, container: ContainerId) -> Nanos {
        self.containers.subtree_tx(container).unwrap_or(Nanos::ZERO)
    }

    /// Unsent response bytes currently reserved against `container`'s
    /// socket-buffer limit (zero without a configured link). Never
    /// exceeds the container's effective `sockbuf_limit`.
    pub fn tx_backlog_of(&self, container: ContainerId) -> u64 {
        self.tx_backlog
            .get(&container.as_u64())
            .copied()
            .unwrap_or(0)
    }

    /// Faults injected so far under the configured [`FaultPlan`]
    /// (all-zero when no plan is configured).
    pub fn fault_counts(&self) -> FaultCounts {
        self.injector
            .as_ref()
            .map(|i| i.counts())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Observability (rctrace)
    // ------------------------------------------------------------------

    /// One metrics row per live container: its usage aggregates plus the
    /// instantaneous state a post-hoc exporter could not reconstruct
    /// (runnable depth, SYN-queue occupancy, cache residency, effective
    /// share).
    fn container_rows(&self) -> Vec<rctrace::ContainerSample> {
        let mut runnable: HashMap<u64, u32> = HashMap::new();
        for th in self.threads.values() {
            if th.state == ThreadState::Runnable {
                *runnable.entry(th.charge_container().as_u64()).or_insert(0) += 1;
            }
        }
        let mut syn: HashMap<u64, u32> = HashMap::new();
        for (c, depth) in self.stack.listener_syn_occupancy() {
            if let Some(c) = c {
                *syn.entry(c.as_u64()).or_insert(0) += depth as u32;
            }
        }
        self.containers
            .iter()
            .map(|(id, c)| {
                let key = id.as_u64();
                rctrace::ContainerSample {
                    container: key,
                    name: c.attrs().name.clone().unwrap_or_default(),
                    usage: *c.usage(),
                    subtree_cpu: self.containers.subtree_cpu(id).unwrap_or(Nanos::ZERO),
                    subtree_disk: self.containers.subtree_disk(id).unwrap_or(Nanos::ZERO),
                    subtree_tx: self.containers.subtree_tx(id).unwrap_or(Nanos::ZERO),
                    cache_bytes: self.disk_cache.resident_bytes(id),
                    runnable: runnable.get(&key).copied().unwrap_or(0),
                    syn_queue: syn.get(&key).copied().unwrap_or(0),
                    effective_share: self.containers.effective_share(id).unwrap_or(0.0),
                }
            })
            .collect()
    }

    /// End-of-run aggregates for the conservation identity: root subtree
    /// plus floating subtrees plus reaped history equals the charged
    /// totals, for CPU and disk alike.
    fn global_totals(&self) -> rctrace::GlobalTotals {
        let root = self.containers.root();
        let mut floating_cpu = Nanos::ZERO;
        let mut floating_disk = Nanos::ZERO;
        let mut floating_tx = Nanos::ZERO;
        for &f in self.containers.floating() {
            floating_cpu += self.containers.subtree_cpu(f).unwrap_or(Nanos::ZERO);
            floating_disk += self.containers.subtree_disk(f).unwrap_or(Nanos::ZERO);
            floating_tx += self.containers.subtree_tx(f).unwrap_or(Nanos::ZERO);
        }
        rctrace::GlobalTotals {
            end: self.clock,
            charged_cpu: self.stats.charged_cpu,
            interrupt_cpu: self.stats.interrupt_cpu,
            overhead_cpu: self.stats.overhead_cpu,
            idle_cpu: self.stats.idle_cpu,
            root_subtree_cpu: self.containers.subtree_cpu(root).unwrap_or(Nanos::ZERO),
            floating_cpu,
            reaped_cpu: self.containers.reaped_cpu(),
            disk_busy: self.disk.total_busy(),
            root_subtree_disk: self.containers.subtree_disk(root).unwrap_or(Nanos::ZERO),
            floating_disk,
            reaped_disk: self.containers.reaped_disk(),
            pkts_in: self.stats.pkts_in,
            pkts_out: self.stats.pkts_out,
            early_drops: self.stats.early_drops,
            ctx_switches: self.stats.ctx_switches,
            link_configured: self.link.is_some(),
            link_busy: self.link_busy,
            link_bytes: self.link_wire_bytes,
            link_pkts: self.link_pkts,
            root_subtree_tx: self.containers.subtree_tx(root).unwrap_or(Nanos::ZERO),
            floating_tx,
            reaped_tx: self.containers.reaped_tx(),
            mem_configured: self.mem.is_some(),
            mem_total: self.mem.as_ref().map_or(0, |m| m.total()),
            mem_by_class: self.mem.as_ref().map_or([0; 5], |m| m.by_class()),
            mem_reclaims: self.mem.as_ref().map_or(0, |m| m.reclaims),
            mem_reclaimed_bytes: self.mem.as_ref().map_or(0, |m| m.reclaimed_bytes),
            mem_oom_kills: self.mem.as_ref().map_or(0, |m| m.oom_kills),
            mem_refusals: self.mem.as_ref().map_or(0, |m| m.refusals),
            mem_pressure_events: self.mem.as_ref().map_or(0, |m| m.pressure_events),
        }
    }
}
