//! Threads: the schedulable entities of the simulated kernel.
//!
//! A thread owns a FIFO queue of [`WorkItem`]s. Each item carries a CPU
//! cost and an operation; the operation's effects (packets sent, upcalls
//! delivered, blocking) apply only once the cost has been fully consumed
//! on the simulated CPU. This cost-before-effect discipline is what makes
//! response times come out right under contention.

use std::collections::VecDeque;

use rescon::{ContainerId, SchedulerBinding};
use sched::TaskId;
use simcore::{Nanos, SpanRef};
use simnet::{Packet, SockId};

use crate::app::AppEvent;
use crate::ids::Pid;

/// What a blocked thread is waiting for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaitFor {
    /// `select()` over an interest set: wakes when any socket is readable
    /// or has an acceptable connection.
    Select {
        /// The interest set.
        socks: Vec<SockId>,
    },
    /// The process's scalable-event-API queue is non-empty.
    Event,
    /// A specific socket is readable (blocking `read()`).
    Readable(SockId),
    /// A specific listener has an acceptable connection (blocking
    /// `accept()`).
    Acceptable(SockId),
    /// A specific socket has send headroom again (blocking writers under
    /// link backpressure).
    Writable(SockId),
    /// A timer deadline.
    Timer {
        /// Application tag delivered on expiry.
        tag: u64,
    },
    /// Nothing: parked until the kernel finds work (kernel network
    /// threads idle this way).
    Idle,
}

/// An operation performed when a work item's cost has been consumed.
#[derive(Debug)]
pub enum Op {
    /// Pure CPU burn; no effect.
    Nop,
    /// Deliver an upcall to the owning process's handler.
    Upcall(AppEvent),
    /// Re-check `select()` readiness and deliver `SelectReady` (or
    /// re-block if nothing is ready anymore).
    DeliverSelect {
        /// The interest set supplied to `select_wait`.
        socks: Vec<SockId>,
    },
    /// Drain the process's event-API queue and deliver `EventReady` (or
    /// re-block if empty).
    DeliverEvents,
    /// Transmit prepared packets (the cost was computed at enqueue time).
    Transmit {
        /// Packets to hand to the NIC.
        pkts: Vec<Packet>,
    },
    /// Re-check writability and deliver `Writable` (or re-block if the
    /// headroom was consumed again before the thread ran).
    DeliverWritable {
        /// The socket whose backpressure drained.
        sock: SockId,
    },
    /// Close a connection socket and transmit its FIN.
    CloseSock {
        /// Socket to close.
        sock: SockId,
    },
    /// Block the thread (executed after all queued work, keeping the
    /// syscall order an application issued).
    Block(WaitFor),
    /// Protocol-process one received packet on a kernel network thread.
    ProtoRx {
        /// The packet to process.
        pkt: Packet,
    },
    /// Terminate the thread; the process exits when its last thread does.
    Exit,
}

/// A unit of queued work: consume `cost`, then perform `op`.
#[derive(Debug)]
pub struct WorkItem {
    /// CPU cost to consume before the effect applies.
    pub cost: Nanos,
    /// Effect.
    pub op: Op,
    /// Charge to this container instead of the thread's current resource
    /// binding (used by kernel network threads processing a packet for a
    /// specific container).
    pub charge_to: Option<ContainerId>,
    /// Charge as kernel-mode time.
    pub kernel_mode: bool,
    /// Request span this work executes on behalf of
    /// ([`SpanRef::NONE`] when none); purely observational.
    pub span: SpanRef,
}

/// Scheduling state of a thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Waiting for a condition.
    Blocked(WaitFor),
    /// Finished.
    Exited,
}

/// What kind of thread this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadKind {
    /// An application thread driven by upcalls.
    App,
    /// The per-process kernel network thread (§5.1: "a per-process kernel
    /// thread is used to perform processing of network packets in priority
    /// order of their containers").
    KernelNet,
}

/// A simulated thread.
#[derive(Debug)]
pub struct Thread {
    /// Scheduler-visible id.
    pub id: TaskId,
    /// Owning process.
    pub pid: Pid,
    /// Thread kind.
    pub kind: ThreadKind,
    /// Current resource binding (§4.2): the container charged for this
    /// thread's consumption.
    pub resource_binding: ContainerId,
    /// Scheduler binding (§4.3): containers recently served.
    pub sched_binding: SchedulerBinding,
    /// Queued work, FIFO.
    pub queue: VecDeque<WorkItem>,
    /// Remaining cost of the front work item.
    pub remaining: Nanos,
    /// Scheduling state.
    pub state: ThreadState,
    /// Request span the thread is currently working on behalf of
    /// (`0` = none). Set when a span-tagged work item completes and
    /// inherited by work the thread pushes from syscalls; purely
    /// observational.
    pub cur_span: u64,
}

impl Thread {
    /// Creates a runnable thread bound to `container`.
    pub fn new(id: TaskId, pid: Pid, kind: ThreadKind, container: ContainerId, now: Nanos) -> Self {
        let mut sched_binding = SchedulerBinding::new();
        sched_binding.touch(container, now);
        Thread {
            id,
            pid,
            kind,
            resource_binding: container,
            sched_binding,
            queue: VecDeque::new(),
            remaining: Nanos::ZERO,
            state: ThreadState::Runnable,
            cur_span: 0,
        }
    }

    /// Appends a work item; if the queue was empty, primes `remaining`.
    pub fn push_work(&mut self, item: WorkItem) {
        if self.queue.is_empty() {
            self.remaining = item.cost;
        }
        self.queue.push_back(item);
    }

    /// Returns `true` if the thread has queued work.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Pops the completed front item (its cost must be fully consumed) and
    /// primes the next one.
    pub fn pop_completed(&mut self) -> Option<WorkItem> {
        debug_assert!(self.remaining.is_zero(), "front item not finished");
        let item = self.queue.pop_front()?;
        self.remaining = self.queue.front().map(|i| i.cost).unwrap_or(Nanos::ZERO);
        Some(item)
    }

    /// The container the front work item should be charged to.
    pub fn charge_container(&self) -> ContainerId {
        self.queue
            .front()
            .and_then(|i| i.charge_to)
            .unwrap_or(self.resource_binding)
    }

    /// Whether the front work item is kernel-mode work.
    pub fn charge_kernel_mode(&self) -> bool {
        self.queue
            .front()
            .map(|i| i.kernel_mode)
            .unwrap_or(self.kind == ThreadKind::KernelNet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescon::{Attributes, ContainerTable};

    fn mk_thread() -> (ContainerTable, Thread) {
        let mut t = ContainerTable::new();
        let c = t.create(None, Attributes::time_shared(1)).unwrap();
        (
            t,
            Thread::new(TaskId(1), Pid(1), ThreadKind::App, c, Nanos::ZERO),
        )
    }

    fn nop(cost: u64) -> WorkItem {
        WorkItem {
            cost: Nanos::from_micros(cost),
            op: Op::Nop,
            charge_to: None,
            kernel_mode: false,
            span: SpanRef::NONE,
        }
    }

    #[test]
    fn push_primes_remaining() {
        let (_t, mut th) = mk_thread();
        assert!(!th.has_work());
        th.push_work(nop(5));
        assert_eq!(th.remaining, Nanos::from_micros(5));
        th.push_work(nop(9));
        // Remaining still tracks the front item.
        assert_eq!(th.remaining, Nanos::from_micros(5));
    }

    #[test]
    fn pop_completed_advances_queue() {
        let (_t, mut th) = mk_thread();
        th.push_work(nop(5));
        th.push_work(nop(9));
        th.remaining = Nanos::ZERO;
        let done = th.pop_completed().unwrap();
        assert_eq!(done.cost, Nanos::from_micros(5));
        assert_eq!(th.remaining, Nanos::from_micros(9));
        th.remaining = Nanos::ZERO;
        th.pop_completed().unwrap();
        assert!(!th.has_work());
        assert!(th.pop_completed().is_none());
    }

    #[test]
    fn charge_container_prefers_item_override() {
        let (mut table, mut th) = mk_thread();
        let other = table.create(None, Attributes::time_shared(2)).unwrap();
        th.push_work(WorkItem {
            cost: Nanos::from_micros(1),
            op: Op::Nop,
            charge_to: Some(other),
            kernel_mode: true,
            span: SpanRef::NONE,
        });
        assert_eq!(th.charge_container(), other);
        assert!(th.charge_kernel_mode());
        th.remaining = Nanos::ZERO;
        th.pop_completed();
        assert_eq!(th.charge_container(), th.resource_binding);
        assert!(!th.charge_kernel_mode());
    }

    #[test]
    fn kernel_thread_defaults_to_kernel_mode() {
        let mut table = ContainerTable::new();
        let c = table.create(None, Attributes::time_shared(1)).unwrap();
        let th = Thread::new(TaskId(2), Pid(1), ThreadKind::KernelNet, c, Nanos::ZERO);
        assert!(th.charge_kernel_mode());
    }
}
