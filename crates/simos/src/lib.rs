//! A deterministic simulated monolithic kernel for the resource-containers
//! reproduction.
//!
//! `simos` stands in for the modified Digital UNIX 4.0D kernel of the
//! paper's prototype (§5.1). It provides:
//!
//! - **Processes and threads** with a syscall surface ([`SysCtx`]) that
//!   includes the full container API of §4.6 (create, parent, attributes,
//!   usage, thread resource binding, scheduler-binding reset, socket
//!   binding, descriptor passing) plus sockets, `select()`, and the
//!   scalable event API of [Banga/Druschel/Mogul '98] used in Figure 11.
//! - **A cost model** ([`CostModel`]) calibrated against §5.3: ~338 µs of
//!   CPU per non-persistent HTTP request and ~105 µs per persistent
//!   request on the paper's 500 MHz Alpha.
//! - **Three network-processing disciplines** (§3.2, §4.7): classic eager
//!   interrupt-level processing charged to no one, LRP with per-process
//!   queues, and the paper's per-container queues drained in container
//!   priority order by a per-process kernel network thread.
//! - **Pluggable CPU schedulers** from the `sched` crate; the kernel
//!   charges every consumed nanosecond to a resource container (the
//!   process's default container when the application does not manage
//!   containers itself), so accounting is exact in every mode.
//!
//! Applications are state machines implementing [`AppHandler`]; the kernel
//! delivers upcalls (select readiness, event-API batches, continuations)
//! only after the CPU cost of the preceding work has actually been
//! consumed on the simulated CPU, so response-time measurements reflect
//! scheduling and queueing faithfully.
//!
//! The simulated machine has `ncpus` CPUs (one by default, matching the
//! uniprocessor used in the paper's evaluation). Each CPU owns a run
//! queue and its own accounting; fixed-share guarantees stay global via a
//! periodic container-aware load balancer (see [`kernel`]).

pub mod app;
pub mod cost;
pub mod ids;
pub mod kernel;
pub mod mem;
pub mod process;
pub mod slab;
pub mod stats;
pub mod syscall;
pub mod thread;
pub mod world;

pub use app::{AppEvent, AppHandler};
pub use cost::CostModel;
pub use ids::Pid;
pub use kernel::{
    DiskConfig, DiskSchedKind, Kernel, KernelConfig, NetConfig, NodeYield, SchedConfig,
    SchedPolicyKind,
};
pub use mem::{MemAccountant, MemParams};
pub use simnet::{LinkParams, QdiscKind};
pub use stats::{CpuStats, KernelStats};
pub use syscall::{ListenSpec, SysCtx, SysError};
pub use thread::WaitFor;
pub use world::{NullWorld, World, WorldAction};
