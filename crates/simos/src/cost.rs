//! The CPU cost model, calibrated to the paper's measured per-request
//! costs (§5.3).
//!
//! The paper measures, on a 500 MHz Alpha 21164 running Digital UNIX 4.0D:
//!
//! - 2954 requests/s for 1 KB cached static files with one request per
//!   connection → **338 µs of CPU per request**;
//! - 9487 requests/s with persistent connections → **105 µs per request**.
//!
//! The defaults below decompose those totals into per-operation costs with
//! plausible early-demultiplexing / protocol / syscall / user-level splits
//! (the paper does not publish a breakdown; the *totals* are what the
//! experiments depend on, and the baseline-throughput integration test
//! pins both totals to within a few percent).
//!
//! Container-primitive costs are taken directly from Table 1 of the paper.

use simcore::Nanos;

/// Microsecond helper for readable constants.
const fn us(n: u64) -> Nanos {
    Nanos::from_micros(n)
}

/// Per-operation CPU costs charged by the simulated kernel.
#[derive(Clone, Debug)]
pub struct CostModel {
    // --- Interrupt-level costs ---
    /// Early demultiplex + packet-filter per received packet (always at
    /// interrupt level, in every discipline).
    pub intr_demux: Nanos,
    /// Context-switch overhead, charged as uncounted system overhead.
    pub ctx_switch: Nanos,

    // --- Protocol processing (interrupt level or kernel thread) ---
    /// TCP/IP receive processing of a SYN (PCB lookup, queue insert).
    pub syn_proc: Nanos,
    /// Transmit path of the SYN-ACK.
    pub synack_tx: Nanos,
    /// Receive processing of the handshake-completing ACK, including PCB
    /// allocation and accept-queue insertion.
    pub establish_proc: Nanos,
    /// Receive processing of a data segment.
    pub data_rx: Nanos,
    /// Transmit path of a data segment (copy + checksum of ≤ MSS bytes).
    pub data_tx: Nanos,
    /// Receive processing of a FIN or RST.
    pub fin_rx: Nanos,
    /// Transmit path of a FIN, including PCB teardown scheduling.
    pub fin_tx: Nanos,

    // --- Socket syscalls ---
    /// `accept()` including fd allocation.
    pub accept_syscall: Nanos,
    /// `read()` from a socket.
    pub read_syscall: Nanos,
    /// `write()` base cost (per-packet `data_tx` comes on top).
    pub write_syscall: Nanos,
    /// `close()` of a connection, including fd and PCB release.
    pub close_syscall: Nanos,
    /// Creating a listening socket.
    pub listen_syscall: Nanos,

    // --- Event delivery ---
    /// Fixed cost of a `select()` call.
    pub select_base: Nanos,
    /// Per-descriptor scan cost of `select()` (the linear term of §5.5).
    pub select_per_fd: Nanos,
    /// Fixed cost of a scalable-event-API wait/dequeue.
    pub event_api_base: Nanos,
    /// Per-event delivery cost of the scalable event API.
    pub event_api_per_event: Nanos,

    // --- Process machinery ---
    /// `fork()`/`exec()` of a CGI process.
    pub fork: Nanos,
    /// Process teardown.
    pub exit: Nanos,

    // --- Container primitives (Table 1 of the paper) ---
    /// Create a resource container: 2.36 µs.
    pub rc_create: Nanos,
    /// Destroy a resource container: 2.10 µs.
    pub rc_destroy: Nanos,
    /// Change a thread's resource binding: 1.04 µs.
    pub rc_bind: Nanos,
    /// Obtain container resource usage: 2.04 µs.
    pub rc_usage: Nanos,
    /// Set/get container attributes: 2.10 µs.
    pub rc_attrs: Nanos,
    /// Move a container between processes: 3.15 µs.
    pub rc_pass: Nanos,
    /// Obtain a handle for an existing container: 1.90 µs.
    pub rc_handle: Nanos,

    // --- File I/O ---
    /// Interrupt-level handling of a disk completion (the disk interrupt
    /// itself; the request's *service time* is disk time, charged to the
    /// owning container by `simdisk`, not CPU).
    pub disk_intr: Nanos,
    /// CPU cost of copying file data to the application, per KiB; paid on
    /// buffer-cache hits and on miss completions alike.
    pub file_copy_per_kb: Nanos,

    // --- Link model ---
    /// One-way wire+switch latency between client and server.
    pub link_latency: Nanos,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::alpha_500mhz()
    }
}

impl CostModel {
    /// The calibrated model for the paper's 500 MHz Alpha server.
    ///
    /// Persistent-request total:
    /// `intr_demux + data_rx + event wake (≈ event_api_base +
    /// per_event) + read + user work (≈47 µs, charged by the
    /// application) + write_base + data_tx + demux of the request ACK`
    /// ≈ 105 µs.
    ///
    /// Connection setup/teardown adds ≈ 233 µs (SYN + SYN-ACK + establish
    /// + accept + FIN exchange + close + fd churn), for 338 µs total.
    pub fn alpha_500mhz() -> Self {
        CostModel {
            intr_demux: Nanos::from_nanos(3_900),
            ctx_switch: us(3),
            syn_proc: us(54),
            synack_tx: us(24),
            establish_proc: us(58),
            data_rx: us(17),
            data_tx: us(24),
            fin_rx: us(12),
            fin_tx: us(28),
            accept_syscall: us(28),
            read_syscall: us(6),
            write_syscall: us(7),
            close_syscall: us(36),
            listen_syscall: us(25),
            select_base: us(6),
            select_per_fd: Nanos::from_nanos(2_000),
            event_api_base: us(3),
            event_api_per_event: us(1),
            fork: us(400),
            exit: us(150),
            rc_create: Nanos::from_nanos(2_360),
            rc_destroy: Nanos::from_nanos(2_100),
            rc_bind: Nanos::from_nanos(1_040),
            rc_usage: Nanos::from_nanos(2_040),
            rc_attrs: Nanos::from_nanos(2_100),
            rc_pass: Nanos::from_nanos(3_150),
            rc_handle: Nanos::from_nanos(1_900),
            disk_intr: us(10),
            file_copy_per_kb: us(3),
            link_latency: us(40),
        }
    }

    /// A uniformly cheap model for fast unit tests (every cost 1 µs,
    /// select scan 100 ns/fd, zero link latency).
    pub fn fast() -> Self {
        let one = us(1);
        CostModel {
            intr_demux: one,
            ctx_switch: Nanos::ZERO,
            syn_proc: one,
            synack_tx: one,
            establish_proc: one,
            data_rx: one,
            data_tx: one,
            fin_rx: one,
            fin_tx: one,
            accept_syscall: one,
            read_syscall: one,
            write_syscall: one,
            close_syscall: one,
            listen_syscall: one,
            select_base: one,
            select_per_fd: Nanos::from_nanos(100),
            event_api_base: one,
            event_api_per_event: Nanos::from_nanos(100),
            fork: us(10),
            exit: us(2),
            rc_create: one,
            rc_destroy: one,
            rc_bind: one,
            rc_usage: one,
            rc_attrs: one,
            rc_pass: one,
            rc_handle: one,
            disk_intr: one,
            file_copy_per_kb: Nanos::from_nanos(100),
            link_latency: Nanos::ZERO,
        }
    }

    /// Cost of one `select()` scan over `n` descriptors.
    pub fn select_scan(&self, n: usize) -> Nanos {
        self.select_base + self.select_per_fd * n as u64
    }

    /// Cost of delivering `n` events through the scalable event API.
    pub fn event_delivery(&self, n: usize) -> Nanos {
        self.event_api_base + self.event_api_per_event * n as u64
    }

    /// CPU cost of copying `bytes` of file data to the application
    /// (rounded up to whole KiB).
    pub fn file_copy(&self, bytes: u64) -> Nanos {
        self.file_copy_per_kb * bytes.div_ceil(1024).max(1)
    }

    /// Protocol-processing cost of a received packet by kind.
    pub fn rx_cost(&self, kind: simnet::PacketKind) -> Nanos {
        match kind {
            simnet::PacketKind::Syn => self.syn_proc,
            simnet::PacketKind::Ack => self.establish_proc,
            simnet::PacketKind::Data { .. } => self.data_rx,
            simnet::PacketKind::Fin | simnet::PacketKind::Rst => self.fin_rx,
            simnet::PacketKind::SynAck => self.data_rx,
        }
    }

    /// Transmit cost of an outgoing packet by kind.
    pub fn tx_cost(&self, kind: simnet::PacketKind) -> Nanos {
        match kind {
            simnet::PacketKind::SynAck => self.synack_tx,
            simnet::PacketKind::Data { .. } => self.data_tx,
            simnet::PacketKind::Fin => self.fin_tx,
            simnet::PacketKind::Rst => self.fin_tx,
            simnet::PacketKind::Syn | simnet::PacketKind::Ack => self.synack_tx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::PacketKind;

    #[test]
    fn select_scan_is_linear() {
        let m = CostModel::alpha_500mhz();
        let c0 = m.select_scan(0);
        let c10 = m.select_scan(10);
        let c20 = m.select_scan(20);
        assert_eq!(c20 - c10, c10 - c0);
        assert_eq!(c0, m.select_base);
    }

    #[test]
    fn event_delivery_much_cheaper_than_select_at_scale() {
        let m = CostModel::alpha_500mhz();
        assert!(m.event_delivery(2) < m.select_scan(100));
    }

    #[test]
    fn table1_values_match_paper() {
        let m = CostModel::alpha_500mhz();
        assert_eq!(m.rc_create, Nanos::from_nanos(2_360));
        assert_eq!(m.rc_destroy, Nanos::from_nanos(2_100));
        assert_eq!(m.rc_bind, Nanos::from_nanos(1_040));
        assert_eq!(m.rc_usage, Nanos::from_nanos(2_040));
        assert_eq!(m.rc_attrs, Nanos::from_nanos(2_100));
        assert_eq!(m.rc_pass, Nanos::from_nanos(3_150));
        assert_eq!(m.rc_handle, Nanos::from_nanos(1_900));
    }

    #[test]
    fn container_primitives_are_negligible_vs_request() {
        // §5.4: "all such operations have costs much smaller than that of a
        // single HTTP transaction".
        let m = CostModel::alpha_500mhz();
        let per_request = Nanos::from_micros(105);
        for c in [
            m.rc_create,
            m.rc_destroy,
            m.rc_bind,
            m.rc_usage,
            m.rc_attrs,
            m.rc_pass,
            m.rc_handle,
        ] {
            assert!(c * 10 < per_request);
        }
    }

    #[test]
    fn rx_tx_costs_cover_all_kinds() {
        let m = CostModel::fast();
        for k in [
            PacketKind::Syn,
            PacketKind::SynAck,
            PacketKind::Ack,
            PacketKind::Data { bytes: 1 },
            PacketKind::Fin,
            PacketKind::Rst,
        ] {
            assert!(!m.rx_cost(k).is_zero());
            assert!(!m.tx_cost(k).is_zero());
        }
    }
}
