//! The world outside the server: clients, attackers, and the wire.
//!
//! The kernel simulates the *server* machine only. Everything beyond its
//! network interface — client hosts, their load-generation logic, the
//! switch — is a [`World`]. The kernel calls the world when a packet leaves
//! the server NIC or a world timer fires; the world responds with packets
//! to inject (after the wire latency) and new timers.
//!
//! World callbacks consume no server CPU, which is exactly right: the
//! paper's client machines were never the bottleneck ("clients were
//! 166 MHz Pentium Pros"; the server saturates first).

use simcore::Nanos;
use simnet::Packet;

/// An action requested by the world.
#[derive(Clone, Copy, Debug)]
pub enum WorldAction {
    /// Inject a packet into the server NIC after `delay`.
    SendPacket {
        /// The packet to deliver.
        pkt: Packet,
        /// Delay from now until it reaches the server NIC.
        delay: Nanos,
    },
    /// Arm a world timer to fire after `delay`.
    SetTimer {
        /// Tag returned to [`World::on_timer`].
        tag: u64,
        /// Delay from now.
        delay: Nanos,
    },
}

/// Client-side logic driven by the kernel's event loop.
pub trait World {
    /// Called when a server packet reaches the client side of the wire.
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>);

    /// Called when a world timer fires.
    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>);
}

/// A world with no clients; useful for kernel-only tests.
#[derive(Debug, Default)]
pub struct NullWorld;

impl World for NullWorld {
    fn on_packet(&mut self, _pkt: Packet, _now: Nanos, _actions: &mut Vec<WorldAction>) {}
    fn on_timer(&mut self, _tag: u64, _now: Nanos, _actions: &mut Vec<WorldAction>) {}
}
