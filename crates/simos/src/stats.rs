//! Kernel-level CPU accounting for experiments and reports.

use simcore::Nanos;

/// Aggregate CPU accounting for a simulation run.
///
/// Together with the per-container usage in the container table, this
/// decomposes every nanosecond of simulated time: `charged + interrupt +
/// overhead + idle == elapsed`.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// CPU consumed by scheduled threads and charged to containers.
    pub charged_cpu: Nanos,
    /// CPU consumed at software-interrupt level (demux always; full
    /// protocol processing under the Interrupt discipline) — charged to no
    /// resource principal, the misaccounting the paper attacks.
    pub interrupt_cpu: Nanos,
    /// Context-switch and other uncharged system overhead.
    pub overhead_cpu: Nanos,
    /// CPU idle time.
    pub idle_cpu: Nanos,
    /// Packets received by the NIC.
    pub pkts_in: u64,
    /// Packets transmitted.
    pub pkts_out: u64,
    /// Packets dropped at early demultiplexing (pending-queue caps).
    pub early_drops: u64,
    /// Upcalls delivered to applications.
    pub upcalls: u64,
    /// Scheduler context switches (picked task differs from previous).
    pub ctx_switches: u64,
    /// Threads moved between CPUs by the load balancer (always zero on a
    /// uniprocessor configuration).
    pub migrations: u64,
    /// Kernel events delivered by the main loop (packets, timers, ticks):
    /// the denominator of the simulator's events-per-second self-benchmark.
    pub sim_events: u64,
}

impl KernelStats {
    /// Total CPU time accounted for.
    pub fn total(&self) -> Nanos {
        self.charged_cpu + self.interrupt_cpu + self.overhead_cpu + self.idle_cpu
    }

    /// Fraction of non-idle CPU spent at interrupt level.
    pub fn interrupt_fraction(&self) -> f64 {
        let busy = self.charged_cpu + self.interrupt_cpu + self.overhead_cpu;
        self.interrupt_cpu.ratio(busy)
    }

    /// Busy (non-idle) CPU time.
    pub fn busy(&self) -> Nanos {
        self.charged_cpu + self.interrupt_cpu + self.overhead_cpu
    }
}

/// Per-CPU slice of the kernel accounting: one entry per simulated CPU.
///
/// Each CPU's clock only advances by consuming CPU or idling, so for every
/// CPU `charged + interrupt + overhead + idle == elapsed`, and the sum over
/// all CPUs equals `ncpus × elapsed`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// CPU time consumed by scheduled threads on this CPU.
    pub charged_cpu: Nanos,
    /// Software-interrupt-level time consumed on this CPU.
    pub interrupt_cpu: Nanos,
    /// Context-switch and other uncharged overhead on this CPU.
    pub overhead_cpu: Nanos,
    /// Idle time on this CPU.
    pub idle_cpu: Nanos,
    /// Context switches taken on this CPU.
    pub ctx_switches: u64,
}

impl CpuStats {
    /// Total CPU time accounted for on this CPU.
    pub fn total(&self) -> Nanos {
        self.charged_cpu + self.interrupt_cpu + self.overhead_cpu + self.idle_cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = KernelStats {
            charged_cpu: Nanos::from_millis(10),
            interrupt_cpu: Nanos::from_millis(5),
            overhead_cpu: Nanos::from_millis(1),
            idle_cpu: Nanos::from_millis(4),
            ..KernelStats::default()
        };
        assert_eq!(s.total(), Nanos::from_millis(20));
        assert_eq!(s.busy(), Nanos::from_millis(16));
        assert!((s.interrupt_fraction() - 5.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn zero_stats_no_nan() {
        let s = KernelStats::default();
        assert_eq!(s.interrupt_fraction(), 0.0);
    }
}
