//! Process identifiers.

/// A process id in the simulated kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn display() {
        assert_eq!(super::Pid(3).to_string(), "pid3");
    }
}
