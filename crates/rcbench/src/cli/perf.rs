//! `rcbench perf`: simulator self-benchmark — how fast does the
//! simulator itself run?
//!
//! Executes a named scenario untraced, times it on the wall clock, and
//! reports kernel events per wall-second, the virtual-time/wall-time
//! ratio, and peak RSS. The result is written as `BENCH_<scenario>.json`
//! in the working directory; the checked-in copy at the repo root is the
//! baseline future PRs compare against.
//!
//! ```sh
//! cargo run --release -p rcbench --bin rcbench -- perf
//! cargo run --release -p rcbench --bin rcbench -- perf baseline --floor 50000
//! cargo run --release -p rcbench --bin rcbench -- perf smp --reduced
//! cargo run --release -p rcbench --bin rcbench -- perf --check
//! ```
//!
//! Scenarios: `baseline`, `smp`, `qos`, `mem`, `span` — one
//! `BENCH_<scenario>.json` each, so the perf trajectory covers every
//! subsystem (scheduler, SMP migration, link QoS, memory reclaim, span
//! accounting), not just the HTTP fast path.
//!
//! `--floor N` fails below N events per wall-second — the CI regression
//! tripwire. `--reduced` shrinks the run for smoke tests. `--check` is
//! the engine-rewrite gate: best-of-3 reduced baseline runs must beat 2x
//! the seed engine's checked-in rate, and the emitted artifact must
//! carry a positive `sim_wall_ratio`. Wall-clock numbers are inherently
//! noisy; plain floors should sit well below (~5-10x) the typical
//! release-build rate, and `--check` takes the best of repeated runs so
//! one scheduling hiccup cannot fail the gate.

use std::time::Instant;

use workload::scenarios::{
    run_baseline, run_memhog_tenants, run_qos_tenants, run_smp_tenants, run_span_tenants,
    BaselineParams, MemhogTenantsParams, QosTenantsParams, SmpTenantsParams, SpanTenantsParams,
};

use crate::json;

/// Events-per-wall-second of the seed engine (BinaryHeap queue,
/// BTreeMap kernel state) on the reference box, from the checked-in
/// `BENCH_baseline.json` at the time of the engine rewrite.
const SEED_EVENTS_PER_SEC: f64 = 1.51e6;

/// `--check` floor: the rewritten engine must clear 2x the seed rate.
/// Deliberately conservative (the rewrite targets 5x) so slower or
/// noisier CI machines don't flake the gate.
const CHECK_FLOOR: f64 = 2.0 * SEED_EVENTS_PER_SEC;

/// Best-of-N runs under `--check`, so a single scheduling hiccup on a
/// shared CI box cannot fail the gate.
const CHECK_RUNS: usize = 3;

#[derive(serde::Serialize)]
struct BenchResult {
    scenario: String,
    sim_events: u64,
    sim_secs: f64,
    wall_secs: f64,
    events_per_sec: f64,
    sim_wall_ratio: f64,
    peak_rss_kib: u64,
    requests_completed: u64,
}

/// Peak resident set size in KiB, from `VmHWM` in `/proc/self/status`
/// (0 where procfs is unavailable).
fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Runs one scenario and returns `(sim_events, sim_secs, completed)`.
fn run_scenario(scenario: &str, reduced: bool) -> Result<(u64, f64, u64), String> {
    Ok(match scenario {
        "baseline" => {
            let secs = if reduced { 3 } else { 10 };
            let r = run_baseline(BaselineParams {
                clients: if reduced { 12 } else { 24 },
                secs,
                ..BaselineParams::default()
            });
            (r.sim_events, secs as f64, r.completed)
        }
        "smp" => {
            let secs = if reduced { 4 } else { 10 };
            let r = run_smp_tenants(SmpTenantsParams {
                clients_per_tenant: if reduced { 12 } else { 24 },
                secs,
                ..SmpTenantsParams::default()
            });
            let completed = (r.total_throughput * sim_window(secs)) as u64;
            (r.sim_events, secs as f64, completed)
        }
        "qos" => {
            let secs = if reduced { 4 } else { 8 };
            let r = run_qos_tenants(QosTenantsParams {
                blast_clients: if reduced { 9 } else { 18 },
                secs,
                ..QosTenantsParams::default()
            });
            let completed = (r.throughputs.iter().sum::<f64>() * sim_window(secs)) as u64;
            (r.sim_events, secs as f64, completed)
        }
        "mem" => {
            let secs = if reduced { 4 } else { 10 };
            let r = run_memhog_tenants(MemhogTenantsParams {
                g_clients: if reduced { 4 } else { 8 },
                secs,
                ..MemhogTenantsParams::default()
            });
            let window = sim_window(secs);
            let completed = ((r.solo.throughput + r.shared.throughput) * window) as u64;
            // Solo + shared runs: twice the virtual time.
            (r.sim_events, 2.0 * secs as f64, completed)
        }
        "span" | "span_tenants" => {
            let secs = if reduced { 4 } else { 8 };
            let r = run_span_tenants(SpanTenantsParams {
                clients: if reduced { (4, 8) } else { (6, 12) },
                secs,
                ..SpanTenantsParams::default()
            });
            let completed = (r.throughputs.iter().sum::<f64>() * sim_window(secs)) as u64;
            (r.sim_events, secs as f64, completed)
        }
        other => {
            return Err(format!(
                "unknown scenario '{other}' (expected baseline | smp | qos | mem | span)"
            ));
        }
    })
}

fn run_once(scenario: &str, reduced: bool, floor: Option<f64>) -> Result<BenchResult, String> {
    let start = Instant::now();
    let (sim_events, sim_secs, completed) = run_scenario(scenario, reduced)?;
    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);

    let result = BenchResult {
        scenario: scenario.to_string(),
        sim_events,
        sim_secs,
        wall_secs,
        events_per_sec: sim_events as f64 / wall_secs,
        sim_wall_ratio: sim_secs / wall_secs,
        peak_rss_kib: peak_rss_kib(),
        requests_completed: completed,
    };
    println!(
        "perf {scenario}: {} events in {:.2} s wall -> {:.0} events/s, \
         {:.1}x realtime, peak RSS {} KiB",
        result.sim_events,
        result.wall_secs,
        result.events_per_sec,
        result.sim_wall_ratio,
        result.peak_rss_kib,
    );

    write_artifact(&result)?;

    if let Some(floor) = floor {
        if result.events_per_sec < floor {
            return Err(format!(
                "perf floor failed: {:.0} events/s < {floor:.0}",
                result.events_per_sec
            ));
        }
        println!(
            "floor ok: {:.0} >= {floor:.0} events/s",
            result.events_per_sec
        );
    }
    Ok(result)
}

/// Serializes `result` to `BENCH_<scenario>.json`, re-parsing the output
/// to guarantee the artifact is well-formed.
fn write_artifact(result: &BenchResult) -> Result<(), String> {
    let out = json::to_string(result).map_err(|e| e.to_string())?;
    json::parse(&out).map_err(|e| format!("bench result not valid JSON: {e}"))?;
    let path = format!("BENCH_{}.json", result.scenario);
    std::fs::write(&path, format!("{out}\n")).map_err(|e| e.to_string())?;
    println!("{path} written");
    Ok(())
}

/// The engine-rewrite gate: best of [`CHECK_RUNS`] reduced baseline runs
/// must clear [`CHECK_FLOOR`], and the recorded artifact must carry a
/// positive `sim_wall_ratio`.
fn run_check() -> Result<(), String> {
    let mut best: Option<BenchResult> = None;
    for i in 0..CHECK_RUNS {
        let r = run_once("baseline", true, None)?;
        println!(
            "check run {}/{}: {:.0} events/s",
            i + 1,
            CHECK_RUNS,
            r.events_per_sec
        );
        if best
            .as_ref()
            .is_none_or(|b| r.events_per_sec > b.events_per_sec)
        {
            best = Some(r);
        }
    }
    let best = best.expect("CHECK_RUNS > 0");
    // Re-record the artifact from the best run so the checked-in
    // trajectory reflects the machine's capability, not its worst tick.
    write_artifact(&best)?;
    if best.sim_wall_ratio <= 0.0 || best.sim_wall_ratio.is_nan() {
        return Err(format!(
            "check failed: sim_wall_ratio {} not positive",
            best.sim_wall_ratio
        ));
    }
    if best.events_per_sec < CHECK_FLOOR {
        return Err(format!(
            "engine perf check failed: best of {CHECK_RUNS} runs {:.0} events/s \
             < {CHECK_FLOOR:.0} (2x seed engine at {SEED_EVENTS_PER_SEC:.0})",
            best.events_per_sec
        ));
    }
    println!(
        "check ok: {:.0} >= {CHECK_FLOOR:.0} events/s (2x seed engine)",
        best.events_per_sec
    );
    Ok(())
}

/// Measurement-window length the scenarios use (run minus warmup), for
/// converting windowed throughput back to a request count.
fn sim_window(secs: u64) -> f64 {
    (secs as f64 - 2.0).max(secs as f64 * 0.75)
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut scenario = None;
    let mut reduced = false;
    let mut floor = None;
    let mut check = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--check" => check = true,
            "--floor" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => floor = Some(f),
                None => return Err("--floor requires a number".into()),
            },
            other if scenario.is_none() => scenario = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if check {
        run_check()
    } else {
        let scenario = scenario.unwrap_or_else(|| "baseline".to_string());
        run_once(&scenario, reduced, floor).map(|_| ())
    }
}
