//! The unified `rcbench` command-line interface.
//!
//! One binary, one subcommand per experiment. Scenarios registered in
//! [`workload::ScenarioRegistry`] share a single generic driver
//! ([`driver`]) with uniform flags (`--reduced`, `--check`, `--out`,
//! `--ncpus`, `--seed`, `--clients`, `--nodes`), headline printing, and
//! artifact validation/writing. Four subcommands keep bespoke drivers
//! because their surface is not a plain scenario run: [`trace`] (named
//! scenario under kernel-wide tracing), [`span`] (causal-span blame
//! report), [`ab`] (same-seed policy A/B diff), and [`perf`] (simulator
//! self-benchmark).
//!
//! The historical per-experiment binaries (`smp`, `qos`, `fault`, ...)
//! remain as one-line shims over [`shim`] so existing invocations and CI
//! steps keep working.

mod ab;
mod driver;
mod perf;
mod span;
mod trace;

use std::process::ExitCode;

use workload::ScenarioRegistry;

/// Runs one subcommand with already-split arguments.
pub fn dispatch(cmd: &str, args: &[String]) -> Result<(), String> {
    match cmd {
        "trace" => trace::run(args),
        "span" => span::run(args),
        "ab" => ab::run(args),
        "perf" => perf::run(args),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => {
            let registry = ScenarioRegistry::standard();
            match registry.get(other) {
                Some(spec) => driver::run(spec, args),
                None => Err(format!(
                    "unknown subcommand '{other}' (run `rcbench help` for the list)"
                )),
            }
        }
    }
}

/// Entry point for the thin per-experiment bin shims: forwards the
/// process arguments to `cmd` and maps the result to an exit code.
pub fn shim(cmd: &str) -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_command(cmd, &args)
}

/// Entry point for the `rcbench` multiplexer binary: the first argument
/// selects the subcommand.
pub fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        print_help();
        return ExitCode::FAILURE;
    };
    run_command(&cmd, &args.collect::<Vec<_>>())
}

fn run_command(cmd: &str, args: &[String]) -> ExitCode {
    match dispatch(cmd, args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{cmd} run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!("rcbench <subcommand> [flags]\n");
    println!("registry scenarios (uniform flags: --reduced --check --out NAME");
    println!("  --ncpus N --seed N --clients N --nodes N):");
    for spec in ScenarioRegistry::standard().iter() {
        println!("  {:<9} {}", spec.name, spec.about);
    }
    println!("\nbespoke subcommands:");
    println!("  trace     run a named scenario traced (baseline | fig11 | fig14 | disk_tenants)");
    println!("  span      causal-span tail-latency blame report (--reduced --check --out NAME)");
    println!("  ab        same-seed policy A/B diff (--scenario span|qos --arms A,B ...)");
    println!("  perf      simulator self-benchmark (--reduced --floor N --check)");
}
