//! `rcbench span`: runs the two-tenant `span_tenants` scenario (disk +
//! link + memory pressure) with per-request causal spans enabled and
//! prints the tail-latency *blame* report: for each tenant, the p99
//! tail's end-to-end latency partitioned across the nine-phase taxonomy.
//!
//! ```sh
//! cargo run --release -p rcbench --bin rcbench -- span
//! cargo run --release -p rcbench --bin rcbench -- span --reduced --out span_a
//! cargo run --release -p rcbench --bin rcbench -- span --reduced --check
//! ```
//!
//! Every run conservation-checks *all* captured ledgers — each span's
//! phase durations must sum exactly to its end-to-end latency in integer
//! nanoseconds — and asserts that the free tenant's deliberately
//! unreachable 2 ms p99 objective is flagged by the online SLO monitor
//! (the deterministic injected violation CI relies on). `--out NAME`
//! overrides the artifact basename so CI can byte-diff two
//! identically-seeded span-enabled runs; `--check` additionally asserts
//! coverage: every phase of the taxonomy (including reclaim stalls) was
//! observed, most spans completed, and the ledger counters balance.

use std::collections::BTreeMap;

use rctrace::TraceConfig;
use simcore::span::{Outcome, Phase, SpanBuffer, SpanLedger, NUM_PHASES};
use workload::scenarios::{run_span_tenants, SpanTenantsParams};

use crate::json;

/// Nearest-rank quantile over an already-sorted slice.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Checks every ledger's conservation law: phase durations sum exactly
/// to end-to-end latency.
fn check_conservation(spans: &SpanBuffer) -> Result<(), String> {
    for l in &spans.ledgers {
        let e2e = l.end - l.start;
        if l.total() != e2e {
            return Err(format!(
                "conservation violated: span {} phase sum {} ns != e2e {} ns",
                l.request,
                l.total().as_nanos(),
                e2e.as_nanos()
            ));
        }
    }
    Ok(())
}

/// Prints one tenant's blame table and returns its per-phase totals over
/// the whole run (for the coverage check).
fn report_tenant(label: &str, ledgers: &[&SpanLedger]) -> [u64; NUM_PHASES] {
    let completed: Vec<&&SpanLedger> = ledgers
        .iter()
        .filter(|l| l.outcome == Outcome::Completed)
        .collect();
    let mut e2e: Vec<u64> = completed
        .iter()
        .map(|l| (l.end - l.start).as_nanos())
        .collect();
    e2e.sort_unstable();
    let p99 = nearest_rank(&e2e, 0.99);

    // The slow set: completed requests at or above the p99. Sum their
    // phase ledgers; conservation guarantees the column sums to the
    // slow set's total end-to-end time.
    let mut slow_phases = [0u64; NUM_PHASES];
    let mut slow_total = 0u64;
    let mut slow_n = 0u64;
    for l in &completed {
        if (l.end - l.start).as_nanos() >= p99 && p99 > 0 {
            for (i, p) in l.phases.iter().enumerate() {
                slow_phases[i] += p.as_nanos();
            }
            slow_total += (l.end - l.start).as_nanos();
            slow_n += 1;
        }
    }

    let mut run_phases = [0u64; NUM_PHASES];
    for l in ledgers {
        for (i, p) in l.phases.iter().enumerate() {
            run_phases[i] += p.as_nanos();
        }
    }

    println!(
        "tenant {label}: {} spans ({} completed), p50 {:.2} ms, p99 {:.2} ms",
        ledgers.len(),
        completed.len(),
        nearest_rank(&e2e, 0.50) as f64 / 1e6,
        p99 as f64 / 1e6,
    );
    if slow_total > 0 {
        let mut shares: Vec<(Phase, u64)> = Phase::ALL
            .iter()
            .map(|&p| (p, slow_phases[p.index()]))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        shares.sort_by_key(|&(p, ns)| (std::cmp::Reverse(ns), p.index()));
        println!("  p99 blame ({slow_n} requests):");
        for (p, ns) in shares {
            println!(
                "    {:<13} {:>6.1}%  {:>10.2} ms",
                p.label(),
                100.0 * ns as f64 / slow_total as f64,
                ns as f64 / 1e6,
            );
        }
        let blame_sum: u64 = slow_phases.iter().sum();
        assert_eq!(
            blame_sum, slow_total,
            "blame table does not conserve the slow set's latency"
        );
    }
    run_phases
}

fn run_inner(reduced: bool, check: bool, out: Option<String>) -> Result<(), String> {
    rctrace::start(TraceConfig {
        spans: true,
        ..TraceConfig::default()
    });
    let r = run_span_tenants(SpanTenantsParams {
        clients: if reduced { (4, 8) } else { (6, 12) },
        secs: if reduced { 4 } else { 8 },
        ..SpanTenantsParams::default()
    });
    let session = rctrace::finish().ok_or("no trace session captured")?;
    let spans = session.spans.as_ref().ok_or("session captured no spans")?;
    if spans.ledgers.is_empty() {
        return Err("no span ledgers captured".into());
    }
    check_conservation(spans)?;

    println!(
        "span_tenants: paid {:.0} req/s p99 {:.2} ms | free {:.0} req/s p99 {:.2} ms | \
         {} reclaims | {} spans minted, {} finished, {} evicted",
        r.throughputs[0],
        r.p99_ms[0],
        r.throughputs[1],
        r.p99_ms[1],
        r.reclaims,
        spans.minted,
        spans.finished,
        spans.dropped,
    );

    // Tenant labels come from the registered SLOs: the scenario resolved
    // each tenant's container id by name, so the monitor state is the
    // id -> name map.
    let names: BTreeMap<u64, &str> = session
        .metrics
        .slos
        .iter()
        .map(|s| (s.spec.container, s.spec.label.as_str()))
        .collect();
    let mut by_container: BTreeMap<u64, Vec<&SpanLedger>> = BTreeMap::new();
    for l in &spans.ledgers {
        by_container.entry(l.container).or_default().push(l);
    }
    let mut run_phases = [0u64; NUM_PHASES];
    for (&c, ledgers) in &by_container {
        let label = names.get(&c).copied().unwrap_or("?");
        let t = report_tenant(label, ledgers);
        for (acc, ns) in run_phases.iter_mut().zip(t) {
            *acc += ns;
        }
    }

    // The injected SLO violation: the free tenant's 2 ms p99 objective is
    // unreachable behind a saturated disk, so the online monitor must
    // have flagged it — deterministically, on every run.
    for s in &session.metrics.slos {
        println!(
            "slo {}: p{:.0} <= {:.1} ms -> {} of {} over threshold, {} violations [{}]",
            s.spec.label,
            s.spec.quantile * 100.0,
            s.spec.threshold.as_nanos() as f64 / 1e6,
            s.over,
            s.total,
            s.violations,
            if s.violations == 0 { "met" } else { "VIOLATED" },
        );
    }
    let free = session
        .metrics
        .slos
        .iter()
        .find(|s| s.spec.label == "free")
        .ok_or("free tenant SLO not registered")?;
    if free.violations == 0 {
        return Err("injected SLO violation not flagged".into());
    }

    let chrome = rctrace::chrome_trace_json(&session);
    let metrics = rctrace::metrics_json(&session);

    // Round-trip both artifacts and verify the span-specific sections
    // made it into each before anything touches disk.
    let parsed = json::parse(&chrome).map_err(|e| format!("chrome trace not valid JSON: {e}"))?;
    let n_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .map(|a| a.len())
        .ok_or("chrome trace missing traceEvents array")?;
    if !chrome.contains("\"request\"") {
        return Err("chrome trace contains no request-span events".into());
    }
    if !chrome.contains("SLO violation") {
        return Err("chrome trace contains no SLO-violation instants".into());
    }
    let parsed = json::parse(&metrics).map_err(|e| format!("metrics dump not valid JSON: {e}"))?;
    if parsed.get("spans").is_none() {
        return Err("metrics dump missing spans section".into());
    }
    if parsed.get("slo").is_none() {
        return Err("metrics dump missing slo section".into());
    }

    let base_name = out.unwrap_or_else(|| "span".to_string());
    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    let trace_path = format!("results/{base_name}.json");
    let metrics_path = format!("results/{base_name}_metrics.json");
    std::fs::write(&trace_path, &chrome).map_err(|e| e.to_string())?;
    std::fs::write(&metrics_path, &metrics).map_err(|e| e.to_string())?;
    println!("{trace_path}: {n_events} events; {metrics_path} written");

    if check {
        if spans.minted != spans.finished {
            return Err(format!(
                "ledger counters unbalanced: {} minted vs {} finished",
                spans.minted, spans.finished
            ));
        }
        for p in Phase::ALL {
            if run_phases[p.index()] == 0 {
                return Err(format!("phase {} never observed in any span", p.label()));
            }
        }
        let completed = spans
            .ledgers
            .iter()
            .filter(|l| l.outcome == Outcome::Completed)
            .count();
        if completed * 2 < spans.ledgers.len() {
            return Err(format!(
                "only {completed} of {} spans completed",
                spans.ledgers.len()
            ));
        }
        println!("check ok: full phase coverage with balanced ledgers");
    }
    Ok(())
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut reduced = false;
    let mut check = false;
    let mut out = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(name) => out = Some(name.clone()),
                None => return Err("--out requires a name".into()),
            },
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    run_inner(reduced, check, out)
}
