//! `rcbench trace`: runs a named scenario with kernel-wide tracing
//! enabled and emits both observability artifacts — a Chrome trace-event
//! JSON (loadable in Perfetto / `chrome://tracing`) and a compact
//! metrics dump.
//!
//! ```sh
//! cargo run --release -p rcbench --bin rcbench -- trace disk_tenants
//! cargo run --release -p rcbench --bin rcbench -- trace fig14 --reduced
//! ```
//!
//! Scenarios: `baseline`, `fig11`, `fig14`, `disk_tenants`. The
//! `--reduced` flag shrinks the run for CI smoke tests. Both artifacts
//! are re-parsed before being written; the run fails if either is not
//! well-formed JSON or the trace is empty.

use rctrace::TraceConfig;
use simos::KernelConfig;
use workload::scenarios::{
    run_baseline, run_disk_tenants, run_fig11, run_fig14, BaselineParams, DiskTenantsParams,
    Fig11Params, Fig11System, Fig14Params,
};

use crate::json;

fn run_scenario(name: &str, reduced: bool) -> Result<(), String> {
    rctrace::start(TraceConfig::default());
    match name {
        "baseline" => {
            let r = run_baseline(BaselineParams {
                kernel: KernelConfig::resource_containers(),
                per_request_containers: true,
                clients: if reduced { 8 } else { 24 },
                secs: if reduced { 2 } else { 10 },
                ..BaselineParams::default()
            });
            println!("baseline: {:.0} req/s", r.requests_per_sec);
        }
        "fig11" => {
            let r = run_fig11(Fig11Params {
                system: Fig11System::RcEventApi,
                low_clients: if reduced { 8 } else { 32 },
                secs: if reduced { 2 } else { 10 },
            });
            println!("fig11: t_high {:.2} ms", r.t_high_ms);
        }
        "fig14" => {
            let r = run_fig14(Fig14Params {
                defended: true,
                syn_rate: if reduced { 2_000.0 } else { 20_000.0 },
                clients: if reduced { 8 } else { 24 },
                secs: if reduced { 2 } else { 10 },
            });
            println!("fig14: {:.0} req/s under flood", r.throughput);
        }
        "disk_tenants" => {
            let r = run_disk_tenants(DiskTenantsParams {
                hog_clients: if reduced { 4 } else { 8 },
                victim_clients: if reduced { 4 } else { 8 },
                secs: if reduced { 4 } else { 12 },
                ..DiskTenantsParams::default()
            });
            println!(
                "disk_tenants: split {:.1}%/{:.1}%",
                r.disk_fractions[0] * 100.0,
                r.disk_fractions[1] * 100.0
            );
        }
        other => {
            rctrace::finish();
            return Err(format!(
                "unknown scenario '{other}' \
                 (expected baseline | fig11 | fig14 | disk_tenants)"
            ));
        }
    }
    let session = rctrace::finish().ok_or("no trace session captured")?;

    let chrome = rctrace::chrome_trace_json(&session);
    let metrics = rctrace::metrics_json(&session);

    // Validate both artifacts by round-tripping through the JSON parser
    // before anything touches disk.
    let parsed = json::parse(&chrome).map_err(|e| format!("chrome trace not valid JSON: {e}"))?;
    let n_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .map(|a| a.len())
        .ok_or("chrome trace missing traceEvents array")?;
    if n_events == 0 {
        return Err("chrome trace is empty".into());
    }
    let parsed = json::parse(&metrics).map_err(|e| format!("metrics dump not valid JSON: {e}"))?;
    let n_containers = parsed
        .get("containers")
        .and_then(|v| v.as_array())
        .map(|a| a.len())
        .ok_or("metrics dump missing containers array")?;

    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    let trace_path = format!("results/trace_{name}.json");
    let metrics_path = format!("results/trace_{name}_metrics.json");
    std::fs::write(&trace_path, &chrome).map_err(|e| e.to_string())?;
    std::fs::write(&metrics_path, &metrics).map_err(|e| e.to_string())?;
    println!(
        "{trace_path}: {n_events} events ({} emitted, {} dropped); \
         {metrics_path}: {n_containers} containers",
        session.trace.emitted, session.trace.dropped
    );
    Ok(())
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut name = None;
    let mut reduced = false;
    for a in argv {
        match a.as_str() {
            "--reduced" => reduced = true,
            other if name.is_none() => name = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let name = name.unwrap_or_else(|| "disk_tenants".to_string());
    run_scenario(&name, reduced)
}
