//! The generic driver behind every registry scenario: parse the uniform
//! flag set, run the scenario, print its headline, validate and write
//! its artifacts, and enforce `--check`.
//!
//! The registry ([`workload::ScenarioRegistry`]) stays a pure scenario
//! table; everything filesystem- and JSON-shaped lives here. Artifacts
//! follow the repo-wide convention: `results/<base>.json` (Chrome trace),
//! `results/<base>_metrics.json` (metrics dump), and — for the cluster
//! scenario — `results/<base>_dump.txt` (the deterministic state dump CI
//! byte-diffs) plus `results/<base>_result.json` (the structured result).
//! Both JSON artifacts are round-tripped through the crate's parser and
//! checked for the scenario's marker substrings before anything touches
//! disk.

use workload::{Outcome, ScenarioArgs, ScenarioSpec};

use crate::json;
use crate::Report;

pub fn run(spec: &ScenarioSpec, argv: &[String]) -> Result<(), String> {
    let mut args = ScenarioArgs::default();
    let mut check = false;
    let mut out: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reduced" => args.reduced = true,
            "--check" => check = true,
            "--out" => out = Some(next_value(&mut it, "--out")?),
            "--ncpus" => args.ncpus = Some(next_parsed(&mut it, "--ncpus")?),
            "--seed" => args.seed = Some(next_parsed(&mut it, "--seed")?),
            "--clients" => args.clients = Some(next_parsed(&mut it, "--clients")?),
            "--nodes" => args.nodes = Some(next_parsed(&mut it, "--nodes")?),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let base = out.unwrap_or_else(|| (spec.default_out)(&args));

    let outcome = (spec.run)(&args)?;
    for line in &outcome.headline {
        println!("{line}");
    }

    if let Some(session) = &outcome.session {
        write_session_artifacts(spec, session, &base)?;
    }
    if !outcome.cluster_sessions.is_empty() {
        write_cluster_artifacts(spec, &outcome, &base)?;
    }
    if let Some((_, title, lines)) = &outcome.report {
        let mut report = Report::new(title);
        for l in lines {
            if l.is_empty() {
                report.blank();
            } else {
                report.line(l.clone());
            }
        }
        let _ = std::fs::create_dir_all("results");
        report.emit(&base);
    }

    if check {
        if let Some(failed) = outcome.checks.iter().find(|c| !c.ok) {
            return Err(format!("{} check failed: {}", failed.label, failed.detail));
        }
        println!("check ok: {}", outcome.check_ok);
    }
    Ok(())
}

fn next_value<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn next_parsed<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, String> {
    next_value(it, flag)?
        .parse()
        .map_err(|_| format!("{flag} requires a number"))
}

/// Round-trips a Chrome trace through the JSON parser, requires a
/// non-empty `traceEvents` array, and checks the scenario's marker
/// substrings. Returns the event count.
fn validate_chrome(chrome: &str, markers: &[&str]) -> Result<usize, String> {
    let parsed = json::parse(chrome).map_err(|e| format!("chrome trace not valid JSON: {e}"))?;
    let n_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .map(|a| a.len())
        .ok_or("chrome trace missing traceEvents array")?;
    if n_events == 0 {
        return Err("chrome trace is empty".into());
    }
    for m in markers {
        if !chrome.contains(m) {
            return Err(format!("chrome trace missing expected marker {m:?}"));
        }
    }
    Ok(n_events)
}

/// Round-trips a metrics dump through the JSON parser and checks the
/// scenario's marker substrings.
fn validate_metrics(metrics: &str, markers: &[&str]) -> Result<(), String> {
    json::parse(metrics).map_err(|e| format!("metrics dump not valid JSON: {e}"))?;
    for m in markers {
        if !metrics.contains(m) {
            return Err(format!("metrics dump missing expected marker {m:?}"));
        }
    }
    Ok(())
}

fn write_session_artifacts(
    spec: &ScenarioSpec,
    session: &rctrace::TraceSession,
    base: &str,
) -> Result<(), String> {
    let chrome = rctrace::chrome_trace_json(session);
    let metrics = rctrace::metrics_json(session);
    let n_events = validate_chrome(&chrome, spec.trace_markers)?;
    validate_metrics(&metrics, spec.metrics_markers)?;

    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    let trace_path = format!("results/{base}.json");
    let metrics_path = format!("results/{base}_metrics.json");
    std::fs::write(&trace_path, &chrome).map_err(|e| e.to_string())?;
    std::fs::write(&metrics_path, &metrics).map_err(|e| e.to_string())?;
    println!(
        "{trace_path}: {n_events} events ({} emitted, {} dropped); {metrics_path} written",
        session.trace.emitted, session.trace.dropped
    );
    Ok(())
}

fn write_cluster_artifacts(
    spec: &ScenarioSpec,
    outcome: &Outcome,
    base: &str,
) -> Result<(), String> {
    let chrome = rctrace::cluster_chrome_trace_json(&outcome.cluster_sessions);
    let n_events = validate_chrome(&chrome, spec.trace_markers)?;

    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    let trace_path = format!("results/{base}.json");
    std::fs::write(&trace_path, &chrome).map_err(|e| e.to_string())?;
    println!(
        "{trace_path}: {n_events} events across {} node tracks",
        outcome.cluster_sessions.len()
    );

    if let Some(cluster) = &outcome.cluster {
        let dump_path = format!("results/{base}_dump.txt");
        std::fs::write(&dump_path, &cluster.dump).map_err(|e| e.to_string())?;
        let result_json = json::to_string(cluster)
            .map_err(|e| format!("cluster result not serializable: {e}"))?;
        json::parse(&result_json).map_err(|e| format!("cluster result not valid JSON: {e}"))?;
        json::emit(&format!("{base}_result"), cluster);
        println!("{dump_path}: deterministic state dump; results/{base}_result.json written");
    }
    Ok(())
}
