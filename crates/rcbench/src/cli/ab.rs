//! `rcbench ab`: same-seed policy A/B harness — runs one scenario under
//! k policy arms and prints a structural diff of their metrics dumps.
//!
//! ```sh
//! cargo run --release -p rcbench --bin rcbench -- ab --scenario span --arms decay,edf --check
//! cargo run --release -p rcbench --bin rcbench -- ab --scenario span --arms decay,decay->edf@2s
//! cargo run --release -p rcbench --bin rcbench -- ab --scenario qos --arms fifo,wfq
//! cargo run --release -p rcbench --bin rcbench -- ab --scenario span --arms edf,edf --expect-identical
//! ```
//!
//! Every arm replays the *same* deterministic scenario — same virtual
//! clock, same client arrival schedule, same documents — so any
//! difference between two arms' metrics dumps is attributable to the
//! policy alone. CPU arms are full schedule specs (`decay->edf@2s`
//! swaps the scheduler mid-run through the `rcpolicy` lifecycle); link
//! arms are qdisc names. `--expect-identical` asserts all arms produced
//! byte-identical dumps (run the *same* arm twice to pin determinism);
//! `--check` asserts the EDF arm meets the paid tenant's tight latency
//! SLO where the decay-usage arm violates it — the harness's standing
//! CI claim.

use rcpolicy::{parse_cpu_schedule, parse_link, CpuSchedule};
use rctrace::TraceConfig;
use simos::QdiscKind;
use workload::scenarios::{run_qos_tenants, run_span_tenants, QosTenantsParams, SpanTenantsParams};

use crate::json::{self, Value};

/// One A/B arm: a CPU policy schedule or a link qdisc.
enum Arm {
    Cpu(CpuSchedule),
    Link(QdiscKind),
}

/// What one arm produced: the serialized metrics dump plus the headline
/// numbers the summary table and `--check` read.
struct ArmResult {
    label: String,
    metrics: String,
    /// Per-tenant p99 in ms, scenario order.
    p99_ms: Vec<f64>,
    /// (label, violations, total) per registered SLO.
    slos: Vec<(String, u64, u64)>,
}

/// A filesystem-safe slug for an arm label (`decay-usage->edf` and
/// `lottery:7` contain separator characters).
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
}

/// Recursively diffs two parsed JSON values, pushing one line per
/// differing leaf with its dotted path.
fn diff_values(a: &Value, b: &Value, path: &str, out: &mut Vec<String>) {
    match (a, b) {
        (Value::Object(ma), Value::Object(mb)) => {
            for (k, va) in ma {
                match b.get(k) {
                    Some(vb) => diff_values(va, vb, &format!("{path}.{k}"), out),
                    None => out.push(format!("{path}.{k}: only in first arm")),
                }
            }
            for (k, _) in mb {
                if a.get(k).is_none() {
                    out.push(format!("{path}.{k}: only in second arm"));
                }
            }
        }
        (Value::Array(va), Value::Array(vb)) => {
            if va.len() != vb.len() {
                out.push(format!("{path}: {} vs {} elements", va.len(), vb.len()));
            }
            for (i, (ea, eb)) in va.iter().zip(vb).enumerate() {
                diff_values(ea, eb, &format!("{path}[{i}]"), out);
            }
        }
        (Value::Number(x), Value::Number(y)) if x != y => {
            out.push(format!(
                "{path}: {} vs {}",
                json::f64_string(*x),
                json::f64_string(*y)
            ));
        }
        _ => {
            if a != b {
                out.push(format!("{path}: values differ in kind"));
            }
        }
    }
}

/// Runs one arm of the span scenario: same seed and clients every time,
/// only the CPU policy schedule varies. The paid tenant serves dynamic
/// content (memory-backed documents, 1 ms of per-request parse/render
/// CPU) so its tail is bounded by CPU scheduling — the one resource the
/// arms differ on. Its 3 ms SLO doubles as its EDF latency target; the
/// free tenant's 400 ms target is deliberately loose, so under EDF the
/// paid tenant strictly preempts it (and, when saturating, starves it —
/// EDF buys the deadline, not fairness).
fn run_span_arm(sched: &CpuSchedule, reduced: bool) -> Result<ArmResult, String> {
    rctrace::start(TraceConfig::default());
    let r = run_span_tenants(SpanTenantsParams {
        // Paid stays at 4 clients in both sizes: its 3 ms SLO must be
        // *feasible* under ideal scheduling (4 closed-loop clients at
        // 1 ms parse each), so the full run scales free-side pressure
        // and duration instead.
        clients: if reduced { (4, 8) } else { (4, 16) },
        secs: if reduced { 4 } else { 8 },
        slo_ms: (3, 400),
        paid_cached: true,
        paid_parse_cost: Some(simcore::Nanos::from_millis(1)),
        scheduler: Some(sched.initial),
        cpu_swaps: sched.swaps.clone(),
        ..SpanTenantsParams::default()
    });
    let session = rctrace::finish().ok_or("no trace session captured")?;
    Ok(ArmResult {
        label: sched.label(),
        metrics: rctrace::metrics_json(&session),
        p99_ms: r.p99_ms,
        slos: session
            .metrics
            .slos
            .iter()
            .map(|s| (s.spec.label.clone(), s.violations, s.total))
            .collect(),
    })
}

/// Runs one arm of the qos scenario; only the transmit qdisc varies.
fn run_qos_arm(qdisc: QdiscKind, reduced: bool) -> Result<ArmResult, String> {
    rctrace::start(TraceConfig::default());
    let r = run_qos_tenants(QosTenantsParams {
        blast_clients: if reduced { 12 } else { 18 },
        secs: if reduced { 4 } else { 8 },
        qdisc,
        ..QosTenantsParams::default()
    });
    let session = rctrace::finish().ok_or("no trace session captured")?;
    println!(
        "  {}: gold {:.1}% / blast {:.1}% of wire time, {:.0}% utilized",
        r.qdisc,
        100.0 * r.tx_fractions[0],
        100.0 * r.tx_fractions[1],
        100.0 * r.utilization,
    );
    Ok(ArmResult {
        label: r.qdisc,
        metrics: rctrace::metrics_json(&session),
        p99_ms: Vec::new(),
        slos: Vec::new(),
    })
}

#[allow(clippy::too_many_arguments)]
fn run_inner(
    scenario: &str,
    arm_specs: &[String],
    reduced: bool,
    check: bool,
    expect_identical: bool,
    out: Option<String>,
) -> Result<(), String> {
    if arm_specs.len() < 2 {
        return Err("need at least two arms (--arms A,B)".into());
    }
    let arms: Vec<Arm> = arm_specs
        .iter()
        .map(|s| match scenario {
            "span" => parse_cpu_schedule(s)
                .map(Arm::Cpu)
                .ok_or_else(|| format!("bad CPU schedule '{s}'")),
            "qos" => parse_link(s)
                .map(Arm::Link)
                .ok_or_else(|| format!("bad qdisc '{s}'")),
            other => Err(format!("unknown scenario '{other}' (span|qos)")),
        })
        .collect::<Result<_, _>>()?;

    println!(
        "ab: scenario {scenario}, {} arms, same seed per arm",
        arms.len()
    );
    let mut results = Vec::new();
    for arm in &arms {
        let r = match arm {
            Arm::Cpu(s) => run_span_arm(s, reduced)?,
            Arm::Link(q) => run_qos_arm(*q, reduced)?,
        };
        if !r.p99_ms.is_empty() {
            println!(
                "  {}: paid p99 {:.2} ms, free p99 {:.2} ms",
                r.label, r.p99_ms[0], r.p99_ms[1]
            );
        }
        for (label, violations, total) in &r.slos {
            println!(
                "    slo {label}: {violations} violations over {total} windows [{}]",
                if *violations == 0 { "met" } else { "VIOLATED" },
            );
        }
        results.push(r);
    }

    let base = out.unwrap_or_else(|| format!("ab_{scenario}"));
    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    for (i, r) in results.iter().enumerate() {
        let path = format!("results/{base}_{i}_{}_metrics.json", slug(&r.label));
        std::fs::write(&path, &r.metrics).map_err(|e| e.to_string())?;
        println!("  wrote {path}");
    }

    // Structural diff of every later arm against the first: parse both
    // dumps and walk them together, printing one line per differing
    // leaf (capped — the count is the headline).
    let first = json::parse(&results[0].metrics)
        .map_err(|e| format!("arm '{}' metrics not valid JSON: {e}", results[0].label))?;
    for r in &results[1..] {
        let other = json::parse(&r.metrics)
            .map_err(|e| format!("arm '{}' metrics not valid JSON: {e}", r.label))?;
        let mut lines = Vec::new();
        diff_values(&first, &other, "$", &mut lines);
        println!(
            "diff {} vs {}: {} differing leaves",
            results[0].label,
            r.label,
            lines.len()
        );
        const CAP: usize = 24;
        for line in lines.iter().take(CAP) {
            println!("  {line}");
        }
        if lines.len() > CAP {
            println!("  ... {} more", lines.len() - CAP);
        }
    }

    if expect_identical {
        for r in &results[1..] {
            if r.metrics != results[0].metrics {
                return Err(format!(
                    "arms '{}' and '{}' were expected to be byte-identical but differ",
                    results[0].label, r.label
                ));
            }
        }
        println!(
            "expect-identical ok: all {} arms byte-identical",
            results.len()
        );
    }

    if check {
        if scenario != "span" {
            return Err("--check only applies to the span scenario".into());
        }
        let paid = |r: &ArmResult| {
            r.slos
                .iter()
                .find(|(l, _, _)| l == "paid")
                .map(|&(_, v, _)| v)
        };
        let decay = results
            .iter()
            .find(|r| r.label == "decay-usage")
            .ok_or("--check needs a plain 'decay' arm")?;
        let edf = results
            .iter()
            .find(|r| r.label == "edf")
            .ok_or("--check needs a plain 'edf' arm")?;
        let dv = paid(decay).ok_or("decay arm registered no paid SLO")?;
        let ev = paid(edf).ok_or("edf arm registered no paid SLO")?;
        if dv == 0 {
            return Err(format!(
                "decay-usage was expected to violate the paid tenant's SLO \
                 (p99 {:.2} ms) but met it",
                decay.p99_ms[0]
            ));
        }
        if ev > 0 {
            return Err(format!(
                "edf was expected to meet the paid tenant's SLO but logged \
                 {ev} violations (p99 {:.2} ms)",
                edf.p99_ms[0]
            ));
        }
        println!(
            "check ok: decay-usage violates the paid SLO ({dv} violations, \
             p99 {:.2} ms); edf meets it (p99 {:.2} ms)",
            decay.p99_ms[0], edf.p99_ms[0]
        );
    }
    Ok(())
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut scenario = "span".to_string();
    let mut arm_specs = Vec::new();
    let mut reduced = false;
    let mut check = false;
    let mut expect_identical = false;
    let mut out = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--check" => check = true,
            "--expect-identical" => expect_identical = true,
            "--scenario" => match it.next() {
                Some(s) => scenario = s.clone(),
                None => return Err("--scenario requires a name (span|qos)".into()),
            },
            "--arms" => match it.next() {
                Some(list) => arm_specs.extend(list.split(',').map(str::to_string)),
                None => return Err("--arms requires a comma-separated list".into()),
            },
            "--out" => match it.next() {
                Some(name) => out = Some(name.clone()),
                None => return Err("--out requires a name".into()),
            },
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if arm_specs.is_empty() {
        arm_specs = vec!["decay".to_string(), "edf".to_string()];
    }
    run_inner(&scenario, &arm_specs, reduced, check, expect_identical, out)
}
