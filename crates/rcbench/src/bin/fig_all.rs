//! Regenerates every table and figure in one run (abbreviated sweeps).
//!
//! ```sh
//! cargo run --release -p rcbench --bin fig_all
//! ```
//!
//! For the full sweeps run the dedicated binaries: `baseline`, `fig11`,
//! `fig12_13`, `fig14`, `virtual_servers`, `ablations`.

use rcbench::{vs, Report};
use simcore::Nanos;
use workload::scenarios::{
    run_baseline, run_fig11, run_fig12, run_fig14, run_virtual_servers, BaselineParams,
    Fig11Params, Fig11System, Fig12Params, Fig12System, Fig14Params, VsParams,
};

fn main() {
    let mut rep = Report::new("All experiments (abbreviated sweeps)");

    // §5.3 baseline.
    let b1 = run_baseline(BaselineParams {
        secs: 6,
        ..BaselineParams::default()
    });
    let b2 = run_baseline(BaselineParams {
        persistent: true,
        secs: 6,
        ..BaselineParams::default()
    });
    rep.line("§5.3 baseline:");
    rep.line(format!(
        "  1 conn/request : {}",
        vs(b1.requests_per_sec, 2954.0, " req/s")
    ));
    rep.line(format!(
        "  persistent     : {}",
        vs(b2.requests_per_sec, 9487.0, " req/s")
    ));
    rep.blank();

    // Figure 11 at N = 30.
    rep.line("Figure 11 (T_high at 30 low-priority clients):");
    for system in [
        Fig11System::Unmodified,
        Fig11System::RcSelect,
        Fig11System::RcEventApi,
    ] {
        let r = run_fig11(Fig11Params {
            system,
            low_clients: 30,
            secs: 5,
        });
        rep.line(format!("  {:<26}: {:.3} ms", system.label(), r.t_high_ms));
    }
    rep.blank();

    // Figures 12/13 at n = 4.
    rep.line("Figures 12/13 (4 concurrent CGI requests):");
    for system in [
        Fig12System::Unmodified,
        Fig12System::Lrp,
        Fig12System::Rc { limit: 0.30 },
        Fig12System::Rc { limit: 0.10 },
    ] {
        let r = run_fig12(Fig12Params {
            system,
            cgi_clients: 4,
            static_clients: 16,
            cgi_cpu: Nanos::from_millis(500),
            secs: 12,
        });
        rep.line(format!(
            "  {:<22}: {:>6.0} req/s static, {:>5.1}% CGI CPU",
            system.label(),
            r.static_throughput,
            r.cgi_cpu_share * 100.0
        ));
    }
    rep.blank();

    // Figure 14 at 10k and 50k SYN/s.
    rep.line("Figure 14 (SYN flood):");
    for rate in [10_000.0, 50_000.0] {
        let plain = run_fig14(Fig14Params {
            defended: false,
            syn_rate: rate,
            clients: 16,
            secs: 8,
        });
        let defended = run_fig14(Fig14Params {
            defended: true,
            syn_rate: rate,
            clients: 16,
            secs: 8,
        });
        rep.line(format!(
            "  {:>6.0} SYN/s: unmodified {:>5.0} req/s, defended {:>5.0} req/s",
            rate, plain.throughput, defended.throughput
        ));
    }
    rep.blank();

    // §5.8 virtual servers.
    let r = run_virtual_servers(VsParams {
        shares: vec![0.5, 0.3, 0.2],
        clients_per_guest: vec![12, 12, 12],
        cgi_cpu: None,
        secs: 10,
    });
    rep.line("§5.8 virtual servers (configured vs measured CPU):");
    for g in 0..3 {
        rep.line(format!(
            "  guest-{g}: {:>5.1}% vs {:>5.1}%",
            r.configured[g] * 100.0,
            r.measured[g] * 100.0
        ));
    }

    rep.emit("fig_all");
}
