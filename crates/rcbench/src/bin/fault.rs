//! Thin shim over `rcbench fault`, kept so existing invocations
//! (`cargo run -p rcbench --bin fault`) keep working.

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::shim("fault")
}
