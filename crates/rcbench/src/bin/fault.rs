//! Runs the `synflood_fault` scenario — SYN flood plus seeded fault
//! injection against the defended, admission-controlled kernel — with
//! tracing enabled, and emits the Chrome trace (fault injections show up
//! as instant events in the "fault" category, loadable in Perfetto) plus
//! the compact metrics dump.
//!
//! ```sh
//! cargo run --release -p rcbench --bin fault
//! cargo run --release -p rcbench --bin fault -- --reduced --out fault_a
//! cargo run --release -p rcbench --bin fault -- --reduced --check
//! ```
//!
//! `--reduced` shrinks the run for CI smoke tests; `--out NAME` overrides
//! the artifact basename (default `fault`), which lets CI produce two
//! identically-seeded dumps and diff them — the fault paths must be
//! deterministic down to the byte. `--check` asserts graceful
//! degradation on the run itself: victim throughput within 10% of the
//! fault-free baseline, p99 latency within 2x, and at least 95% of the
//! early-drop charges absorbed by the attacker's isolated container.
//!
//! `--seed N` changes only the fault plan's seed, which perturbs the
//! injections without touching the rest of the simulation's randomness.

use std::process::ExitCode;

use rcbench::json;
use rctrace::TraceConfig;
use workload::scenarios::{run_synflood_fault, SynfloodFaultParams};

fn run(reduced: bool, check: bool, seed: u64, out: Option<String>) -> Result<(), String> {
    let params = SynfloodFaultParams {
        clients: if reduced { 8 } else { 12 },
        fault_seed: seed,
        ..SynfloodFaultParams::default()
    };

    // The fault-free, flood-free baseline first (untraced), then the
    // faulted run under tracing.
    let base = run_synflood_fault(params.baseline());
    rctrace::start(TraceConfig::default());
    let r = run_synflood_fault(params.clone());
    let session = rctrace::finish().ok_or("no trace session captured")?;

    println!(
        "synflood_fault ncpus={} seed={}: {:.0} req/s (baseline {:.0}) | p99 {:.2} ms \
         (baseline {:.2}) | {} net + {} client faults | {} syns, {} early drops, \
         attacker pays {:.1}% | {} isolations",
        params.ncpus,
        params.fault_seed,
        r.throughput,
        base.throughput,
        r.p99_ms,
        base.p99_ms,
        r.net_faults,
        r.client_faults,
        r.syns_sent,
        r.early_drops,
        r.attacker_drop_share * 100.0,
        r.isolations,
    );

    let chrome = rctrace::chrome_trace_json(&session);
    let metrics = rctrace::metrics_json(&session);

    // Validate both artifacts by round-tripping through the JSON parser
    // before anything touches disk.
    let parsed = json::parse(&chrome).map_err(|e| format!("chrome trace not valid JSON: {e}"))?;
    let n_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .map(|a| a.len())
        .ok_or("chrome trace missing traceEvents array")?;
    if n_events == 0 {
        return Err("chrome trace is empty".into());
    }
    if !chrome.contains("\"fault\"") {
        return Err("chrome trace contains no fault-category events".into());
    }
    json::parse(&metrics).map_err(|e| format!("metrics dump not valid JSON: {e}"))?;

    let base_name = out.unwrap_or_else(|| "fault".to_string());
    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    let trace_path = format!("results/{base_name}.json");
    let metrics_path = format!("results/{base_name}_metrics.json");
    std::fs::write(&trace_path, &chrome).map_err(|e| e.to_string())?;
    std::fs::write(&metrics_path, &metrics).map_err(|e| e.to_string())?;
    println!("{trace_path}: {n_events} events; {metrics_path} written");

    if check {
        if r.throughput < 0.9 * base.throughput {
            return Err(format!(
                "degradation check failed: {:.0} req/s under faults vs {:.0} baseline",
                r.throughput, base.throughput
            ));
        }
        if r.p99_ms > 2.0 * base.p99_ms.max(0.5) {
            return Err(format!(
                "latency check failed: p99 {:.2} ms vs baseline {:.2} ms",
                r.p99_ms, base.p99_ms
            ));
        }
        if r.attacker_drop_share < 0.95 {
            return Err(format!(
                "charging check failed: attacker absorbed only {:.1}% of drop charges",
                r.attacker_drop_share * 100.0
            ));
        }
        if r.net_faults == 0 || r.client_faults == 0 {
            return Err("injection check failed: a fault category never fired".into());
        }
        println!("check ok: graceful degradation with attacker-pays charging");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut reduced = false;
    let mut check = false;
    let mut seed = 7u64;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--check" => check = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => {
                    eprintln!("--out requires a name");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(reduced, check, seed, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fault run failed: {e}");
            ExitCode::FAILURE
        }
    }
}
