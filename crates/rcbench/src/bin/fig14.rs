//! Figure 14: server throughput under SYN-flooding, unmodified vs
//! defended (resource containers + filter + priority-zero isolation).
//!
//! ```sh
//! cargo run --release -p rcbench --bin fig14
//! ```

use rcbench::Report;
use workload::scenarios::{run_fig14, Fig14Params};

fn main() {
    let rates = [
        0.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 30_000.0, 50_000.0, 70_000.0,
    ];

    let mut rep = Report::new("Figure 14: useful throughput (req/s) vs SYN-flood rate");
    rep.line(format!(
        "{:<14} {:>18} {:>22} {:>12} {:>12}",
        "SYNs/sec", "unmodified", "with containers", "early drops", "isolations"
    ));
    for &rate in &rates {
        // 16 s runs: the measurement window must sit past the 5 s expiry
        // of the flood's half-open entries (steady state, like the paper).
        let plain = run_fig14(Fig14Params {
            defended: false,
            syn_rate: rate,
            clients: 24,
            secs: 16,
        });
        let defended = run_fig14(Fig14Params {
            defended: true,
            syn_rate: rate,
            clients: 24,
            secs: 16,
        });
        rep.line(format!(
            "{:<14.0} {:>18.0} {:>22.0} {:>12} {:>12}",
            rate, plain.throughput, defended.throughput, defended.early_drops, defended.isolations
        ));
    }
    rep.blank();
    rep.line("paper shape: unmodified falls drastically, effectively zero by ~10k SYN/s;");
    rep.line("the defended server keeps ~73% of maximum even at 70k SYN/s (the residual");
    rep.line("loss is the interrupt cost of demultiplexing and discarding flood SYNs).");
    rep.emit("fig14");
}
