//! Thin shim over `rcbench trace`, kept so existing invocations
//! (`cargo run -p rcbench --bin trace`) keep working.

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::shim("trace")
}
