//! Figures 12 and 13: static throughput and CGI CPU share vs number of
//! concurrent CGI requests, for the four systems.
//!
//! ```sh
//! cargo run --release -p rcbench --bin fig12_13
//! ```

use rcbench::Report;
use simcore::Nanos;
use workload::scenarios::{run_fig12, Fig12Params, Fig12System};

fn main() {
    let systems = [
        Fig12System::Unmodified,
        Fig12System::Lrp,
        Fig12System::Rc { limit: 0.30 },
        Fig12System::Rc { limit: 0.10 },
    ];
    let sweep = [0usize, 1, 2, 3, 4, 5];

    // The paper uses 2 s CGI bursts over multi-minute measurements; we use
    // 0.5 s bursts over 20 s windows — same shapes, tractable runtime.
    let cgi_cpu = Nanos::from_millis(500);
    let secs = 20;

    let mut results = Vec::new();
    for system in systems {
        let mut row = Vec::new();
        for &n in &sweep {
            row.push(run_fig12(Fig12Params {
                system,
                cgi_clients: n,
                static_clients: 20,
                cgi_cpu,
                secs,
            }));
        }
        results.push((system, row));
    }

    let mut rep = Report::new("Figure 12: HTTP throughput (req/s) vs concurrent CGI requests");
    let mut head = format!("{:<22}", "system \\ n");
    for &n in &sweep {
        head.push_str(&format!("{n:>9}"));
    }
    rep.line(head.clone());
    for (system, row) in &results {
        let mut line = format!("{:<22}", system.label());
        for r in row {
            line.push_str(&format!("{:>9.0}", r.static_throughput));
        }
        rep.line(line);
    }
    rep.blank();
    rep.line("paper shape: Unmodified decays (~44% of max at n=4); LRP decays further");
    rep.line("(exact fair share); RC 30% and RC 10% stay flat at ~(1-limit) of max.");
    rep.emit("fig12");

    let mut rep = Report::new("Figure 13: CGI CPU share (%) vs concurrent CGI requests");
    rep.line(head);
    for (system, row) in &results {
        let mut line = format!("{:<22}", system.label());
        for r in row {
            line.push_str(&format!("{:>8.1}%", r.cgi_cpu_share * 100.0));
        }
        rep.line(line);
    }
    rep.blank();
    rep.line("paper shape: LRP tracks n/(n+1); Unmodified runs slightly below it (the");
    rep.line("server's kernel networking is over-credited); RC clamps at 30% / 10%.");
    rep.emit("fig13");
}
