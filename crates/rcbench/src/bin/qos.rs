//! Thin shim over `rcbench qos`, kept so existing invocations
//! (`cargo run -p rcbench --bin qos`) keep working.

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::shim("qos")
}
