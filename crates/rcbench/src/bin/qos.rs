//! Runs the `qos_tenants` scenario — two tenants sharing a finite
//! transmit link under the hierarchical weighted-fair qdisc vs. FIFO —
//! with tracing enabled, and emits the Chrome trace (the link track shows
//! per-packet transmit slices; per-container `tx_charge_ms` counters show
//! the split) plus the compact metrics dump.
//!
//! ```sh
//! cargo run --release -p rcbench --bin qos
//! cargo run --release -p rcbench --bin qos -- --reduced --out qos_a
//! cargo run --release -p rcbench --bin qos -- --reduced --check
//! ```
//!
//! `--reduced` shrinks the run for CI smoke tests; `--out NAME` overrides
//! the artifact basename (default `qos`), which lets CI produce two
//! identically-seeded dumps and diff them — the transmit path must be
//! deterministic down to the byte. `--check` asserts the tentpole
//! property on the run itself: under saturation the WFQ split lands
//! within 5% of the configured 3:1 weights, while FIFO lets the blast
//! tenant crowd the gold tenant off the link.

use std::process::ExitCode;

use rcbench::json;
use rctrace::TraceConfig;
use simos::QdiscKind;
use workload::scenarios::{run_qos_tenants, QosTenantsParams};

fn run(reduced: bool, check: bool, out: Option<String>) -> Result<(), String> {
    let params = QosTenantsParams {
        blast_clients: if reduced { 18 } else { 24 },
        secs: if reduced { 6 } else { 10 },
        ..QosTenantsParams::default()
    };

    // The FIFO ablation first (untraced), then the WFQ run under tracing.
    let fifo = run_qos_tenants(QosTenantsParams {
        qdisc: QdiscKind::Fifo,
        ..params.clone()
    });
    rctrace::start(TraceConfig::default());
    let wfq = run_qos_tenants(params);
    let session = rctrace::finish().ok_or("no trace session captured")?;

    println!(
        "qos_tenants: wfq gold/blast {:.1}%/{:.1}% of wire time (configured \
         {:.0}%/{:.0}%) at {:.0}% utilization | fifo gold/blast {:.1}%/{:.1}% | \
         gold throughput {:.0} req/s under wfq vs {:.0} under fifo",
        wfq.tx_fractions[0] * 100.0,
        wfq.tx_fractions[1] * 100.0,
        wfq.configured[0] * 100.0,
        wfq.configured[1] * 100.0,
        wfq.utilization * 100.0,
        fifo.tx_fractions[0] * 100.0,
        fifo.tx_fractions[1] * 100.0,
        wfq.throughputs[0],
        fifo.throughputs[0],
    );

    let chrome = rctrace::chrome_trace_json(&session);
    let metrics = rctrace::metrics_json(&session);

    // Validate both artifacts by round-tripping through the JSON parser
    // before anything touches disk.
    let parsed = json::parse(&chrome).map_err(|e| format!("chrome trace not valid JSON: {e}"))?;
    let n_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .map(|a| a.len())
        .ok_or("chrome trace missing traceEvents array")?;
    if n_events == 0 {
        return Err("chrome trace is empty".into());
    }
    if !chrome.contains("\"link\"") {
        return Err("chrome trace contains no link-category events".into());
    }
    json::parse(&metrics).map_err(|e| format!("metrics dump not valid JSON: {e}"))?;
    if !metrics.contains("\"link\"") {
        return Err("metrics dump has no link section".into());
    }

    let base_name = out.unwrap_or_else(|| "qos".to_string());
    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    let trace_path = format!("results/{base_name}.json");
    let metrics_path = format!("results/{base_name}_metrics.json");
    std::fs::write(&trace_path, &chrome).map_err(|e| e.to_string())?;
    std::fs::write(&metrics_path, &metrics).map_err(|e| e.to_string())?;
    println!("{trace_path}: {n_events} events; {metrics_path} written");

    if check {
        if wfq.utilization < 0.9 {
            return Err(format!(
                "saturation check failed: link only {:.0}% utilized",
                wfq.utilization * 100.0
            ));
        }
        for (c, m) in wfq.configured.iter().zip(&wfq.tx_fractions) {
            if (c - m).abs() >= 0.05 {
                return Err(format!(
                    "share check failed: configured {:.0}% vs measured {:.1}% under wfq",
                    c * 100.0,
                    m * 100.0
                ));
            }
        }
        if fifo.tx_fractions[0] >= 0.45 {
            return Err(format!(
                "ablation check failed: fifo still gave the gold tenant {:.1}%",
                fifo.tx_fractions[0] * 100.0
            ));
        }
        if wfq.throughputs[0] <= 1.5 * fifo.throughputs[0] {
            return Err(format!(
                "protection check failed: gold {:.0} req/s under wfq vs {:.0} under fifo",
                wfq.throughputs[0], fifo.throughputs[0]
            ));
        }
        println!("check ok: wfq holds the 3:1 split; fifo collapses under the blast tenant");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut reduced = false;
    let mut check = false;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--check" => check = true,
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => {
                    eprintln!("--out requires a name");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(reduced, check, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qos run failed: {e}");
            ExitCode::FAILURE
        }
    }
}
