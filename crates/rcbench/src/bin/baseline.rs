//! §5.3 baseline throughput + §5.4 container-overhead check.
//!
//! ```sh
//! cargo run --release -p rcbench --bin baseline
//! ```

use rcbench::{vs, Report};
use simos::KernelConfig;
use workload::scenarios::{run_baseline, BaselineParams};

fn main() {
    let mut rep = Report::new("Baseline throughput (paper §5.3) and container overhead (§5.4)");

    let per_conn = run_baseline(BaselineParams {
        persistent: false,
        secs: 10,
        ..BaselineParams::default()
    });
    rep.line(format!(
        "connection-per-request : {}",
        vs(per_conn.requests_per_sec, 2954.0, " req/s")
    ));
    rep.line(format!(
        "  per-request CPU      : {}",
        vs(per_conn.cpu_per_request_us, 338.0, " us")
    ));

    let persistent = run_baseline(BaselineParams {
        persistent: true,
        secs: 10,
        ..BaselineParams::default()
    });
    rep.line(format!(
        "persistent connections : {}",
        vs(persistent.requests_per_sec, 9487.0, " req/s")
    ));
    rep.line(format!(
        "  per-request CPU      : {}",
        vs(persistent.cpu_per_request_us, 105.0, " us")
    ));
    rep.blank();

    // §5.4: container per request on the RC kernel.
    let rc_off = run_baseline(BaselineParams {
        kernel: KernelConfig::resource_containers(),
        per_request_containers: false,
        secs: 10,
        ..BaselineParams::default()
    });
    let rc_on = run_baseline(BaselineParams {
        kernel: KernelConfig::resource_containers(),
        per_request_containers: true,
        secs: 10,
        ..BaselineParams::default()
    });
    rep.line(format!(
        "RC kernel, shared containers   : {:.0} req/s",
        rc_off.requests_per_sec
    ));
    rep.line(format!(
        "RC kernel, container/request   : {:.0} req/s ({:+.1}%)",
        rc_on.requests_per_sec,
        (rc_on.requests_per_sec / rc_off.requests_per_sec - 1.0) * 100.0
    ));
    rep.line("paper: \"The throughput of the system remained effectively unchanged.\"");

    rep.emit("baseline");
}
