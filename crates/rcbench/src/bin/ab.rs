//! Thin shim over `rcbench ab`, kept so existing invocations
//! (`cargo run -p rcbench --bin ab`) keep working.

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::shim("ab")
}
