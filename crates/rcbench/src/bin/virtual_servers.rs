//! §5.8: isolation of virtual servers (Rent-A-Server).
//!
//! ```sh
//! cargo run --release -p rcbench --bin virtual_servers
//! ```

use rcbench::Report;
use simcore::Nanos;
use workload::scenarios::{run_virtual_servers, VsParams};

fn main() {
    let mut rep = Report::new("§5.8: guest-server CPU isolation under fixed shares");

    // Static-only loads.
    let r = run_virtual_servers(VsParams {
        shares: vec![0.5, 0.3, 0.2],
        clients_per_guest: vec![16, 16, 16],
        cgi_cpu: None,
        secs: 15,
    });
    rep.line("static-only load:");
    rep.line(format!(
        "{:<10} {:>12} {:>12} {:>14}",
        "guest", "configured", "measured", "static req/s"
    ));
    for g in 0..3 {
        rep.line(format!(
            "guest-{g:<4} {:>11.1}% {:>11.1}% {:>14.0}",
            r.configured[g] * 100.0,
            r.measured[g] * 100.0,
            r.throughputs[g]
        ));
    }
    rep.blank();

    // Mixed static + CGI, uneven client loads ("varying request loads").
    let r = run_virtual_servers(VsParams {
        shares: vec![0.5, 0.3, 0.2],
        clients_per_guest: vec![24, 12, 8],
        cgi_cpu: Some(Nanos::from_millis(300)),
        secs: 15,
    });
    rep.line("mixed static+CGI, uneven loads:");
    rep.line(format!(
        "{:<10} {:>12} {:>12} {:>14}",
        "guest", "configured", "measured", "static req/s"
    ));
    for g in 0..3 {
        rep.line(format!(
            "guest-{g:<4} {:>11.1}% {:>11.1}% {:>14.0}",
            r.configured[g] * 100.0,
            r.measured[g] * 100.0,
            r.throughputs[g]
        ));
    }
    rep.blank();
    rep.line("paper: \"the total CPU time consumed by each guest server exactly matched");
    rep.line("its allocation\"; each guest subdivides its own share internally.");
    rep.emit("virtual_servers");
}
