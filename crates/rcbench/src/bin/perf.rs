//! Simulator self-benchmark: how fast does the simulator itself run?
//!
//! Executes a named scenario untraced, times it on the wall clock, and
//! reports kernel events per wall-second, the virtual-time/wall-time
//! ratio, and peak RSS. The result is written as `BENCH_<scenario>.json`
//! in the working directory; the checked-in copy at the repo root is the
//! baseline future PRs compare against.
//!
//! ```sh
//! cargo run --release -p rcbench --bin perf
//! cargo run --release -p rcbench --bin perf -- baseline --floor 50000
//! cargo run --release -p rcbench --bin perf -- span_tenants --reduced
//! ```
//!
//! `--floor N` exits nonzero below N events per wall-second — the CI
//! regression tripwire. `--reduced` shrinks the run for smoke tests.
//! Wall-clock numbers are inherently noisy; the floor should sit well
//! below (~5-10x) the typical release-build rate.

use std::process::ExitCode;
use std::time::Instant;

use rcbench::json;
use workload::scenarios::{run_baseline, run_span_tenants, BaselineParams, SpanTenantsParams};

#[derive(serde::Serialize)]
struct BenchResult {
    scenario: String,
    sim_events: u64,
    sim_secs: f64,
    wall_secs: f64,
    events_per_sec: f64,
    sim_wall_ratio: f64,
    peak_rss_kib: u64,
    requests_completed: u64,
}

/// Peak resident set size in KiB, from `VmHWM` in `/proc/self/status`
/// (0 where procfs is unavailable).
fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn run(scenario: &str, reduced: bool, floor: Option<f64>) -> Result<(), String> {
    let start = Instant::now();
    let (sim_events, sim_secs, completed) = match scenario {
        "baseline" => {
            let secs = if reduced { 3 } else { 10 };
            let r = run_baseline(BaselineParams {
                clients: if reduced { 12 } else { 24 },
                secs,
                ..BaselineParams::default()
            });
            (r.sim_events, secs as f64, r.completed)
        }
        "span_tenants" => {
            let secs = if reduced { 4 } else { 8 };
            let r = run_span_tenants(SpanTenantsParams {
                clients: if reduced { (4, 8) } else { (6, 12) },
                secs,
                ..SpanTenantsParams::default()
            });
            let completed = (r.throughputs.iter().sum::<f64>() * sim_window(secs)) as u64;
            (r.sim_events, secs as f64, completed)
        }
        other => {
            return Err(format!(
                "unknown scenario '{other}' (expected baseline | span_tenants)"
            ));
        }
    };
    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);

    let result = BenchResult {
        scenario: scenario.to_string(),
        sim_events,
        sim_secs,
        wall_secs,
        events_per_sec: sim_events as f64 / wall_secs,
        sim_wall_ratio: sim_secs / wall_secs,
        peak_rss_kib: peak_rss_kib(),
        requests_completed: completed,
    };
    println!(
        "perf {scenario}: {} events in {:.2} s wall -> {:.0} events/s, \
         {:.1}x realtime, peak RSS {} KiB",
        result.sim_events,
        result.wall_secs,
        result.events_per_sec,
        result.sim_wall_ratio,
        result.peak_rss_kib,
    );

    let out = json::to_string(&result).map_err(|e| e.to_string())?;
    json::parse(&out).map_err(|e| format!("bench result not valid JSON: {e}"))?;
    let path = format!("BENCH_{scenario}.json");
    std::fs::write(&path, format!("{out}\n")).map_err(|e| e.to_string())?;
    println!("{path} written");

    if let Some(floor) = floor {
        if result.events_per_sec < floor {
            return Err(format!(
                "perf floor failed: {:.0} events/s < {floor:.0}",
                result.events_per_sec
            ));
        }
        println!(
            "floor ok: {:.0} >= {floor:.0} events/s",
            result.events_per_sec
        );
    }
    Ok(())
}

/// Measurement-window length the scenarios use (run minus warmup), for
/// converting windowed throughput back to a request count.
fn sim_window(secs: u64) -> f64 {
    (secs as f64 - 2.0).max(secs as f64 * 0.75)
}

fn main() -> ExitCode {
    let mut scenario = None;
    let mut reduced = false;
    let mut floor = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--floor" => match args.next().and_then(|v| v.parse().ok()) {
                Some(f) => floor = Some(f),
                None => {
                    eprintln!("--floor requires a number");
                    return ExitCode::FAILURE;
                }
            },
            other if scenario.is_none() => scenario = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let scenario = scenario.unwrap_or_else(|| "baseline".to_string());
    match run(&scenario, reduced, floor) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perf run failed: {e}");
            ExitCode::FAILURE
        }
    }
}
