//! Thin shim over `rcbench perf`, kept so existing invocations
//! (`cargo run -p rcbench --bin perf`) keep working.

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::shim("perf")
}
