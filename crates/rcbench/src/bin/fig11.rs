//! Figure 11: response time of the high-priority client vs the number of
//! concurrent low-priority clients, for the three systems.
//!
//! ```sh
//! cargo run --release -p rcbench --bin fig11
//! ```

use rcbench::Report;
use workload::scenarios::{run_fig11, Fig11Params, Fig11System};

fn main() {
    let sweep: Vec<usize> = vec![0, 5, 10, 15, 20, 25, 30, 35];
    let systems = [
        Fig11System::Unmodified,
        Fig11System::RcSelect,
        Fig11System::RcEventApi,
    ];

    let mut rep = Report::new("Figure 11: T_high (ms) vs concurrent low-priority clients");
    rep.line(format!(
        "{:<6} {:>22} {:>22} {:>24}",
        "N", "without containers", "containers+select()", "containers+event API"
    ));
    for &n in &sweep {
        let mut row = format!("{n:<6}");
        for system in systems {
            let r = run_fig11(Fig11Params {
                system,
                low_clients: n,
                secs: 6,
            });
            row.push_str(&format!("{:>22.3}", r.t_high_ms));
        }
        rep.line(row);
    }
    rep.blank();
    rep.line("paper shape: the unmodified curve rises sharply toward ~8-9 ms at N=35;");
    rep.line("containers+select() rises mildly (select scan cost); containers+event API");
    rep.line("stays nearly flat (only interrupt-level demux of low-priority packets).");
    rep.emit("fig11");
}
