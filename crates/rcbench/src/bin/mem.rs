//! Thin shim over `rcbench mem`, kept so existing invocations
//! (`cargo run -p rcbench --bin mem`) keep working.

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::shim("mem")
}
