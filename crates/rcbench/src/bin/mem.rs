//! Runs the `memhog_tenants` scenario — a guaranteed tenant whose working
//! set lives in the buffer cache next to a tenant that leaks pinned kernel
//! memory under a small `mem_limit` — with tracing enabled, and emits the
//! Chrome trace (per-container `mem_*_bytes` counter tracks plus `mem`
//! instants for reclaim, pressure, and OOM kills) and the compact metrics
//! dump with its `mem` section.
//!
//! ```sh
//! cargo run --release -p rcbench --bin mem
//! cargo run --release -p rcbench --bin mem -- --reduced --out mem_a
//! cargo run --release -p rcbench --bin mem -- --reduced --check
//! ```
//!
//! `--reduced` shrinks the run for CI smoke tests; `--out NAME` overrides
//! the artifact basename (default `mem`), which lets CI produce two
//! identically-seeded dumps and diff them — memory accounting, reclaim,
//! and OOM targeting must be deterministic down to the byte. `--check`
//! asserts the tentpole property on the run itself: the hog gets
//! reclaimed and OOM-killed while the guaranteed tenant's cache hit rate
//! and p99 stay within 5% of its solo baseline.

use std::process::ExitCode;

use rcbench::json;
use rctrace::TraceConfig;
use workload::scenarios::{run_memhog_tenants, MemhogTenantsParams};

fn run(reduced: bool, check: bool, out: Option<String>) -> Result<(), String> {
    let params = MemhogTenantsParams {
        secs: if reduced { 6 } else { 12 },
        ..MemhogTenantsParams::default()
    };

    rctrace::start(TraceConfig::default());
    let r = run_memhog_tenants(params);
    let session = rctrace::finish().ok_or("no trace session captured")?;

    println!(
        "memhog_tenants: guaranteed hit rate {:.1}% shared vs {:.1}% solo | \
         p99 {:.2} ms shared vs {:.2} ms solo | {:.0} req/s shared vs {:.0} solo | \
         hog: {} reclaims ({} KiB), {} oom kills, {} refusals, {} pressure events",
        r.shared.cache_hit_rate * 100.0,
        r.solo.cache_hit_rate * 100.0,
        r.shared.p99_ms,
        r.solo.p99_ms,
        r.shared.throughput,
        r.solo.throughput,
        r.mem.reclaims,
        r.mem.reclaimed_bytes / 1024,
        r.mem.oom_kills,
        r.mem.refusals,
        r.mem.pressure_events,
    );

    let chrome = rctrace::chrome_trace_json(&session);
    let metrics = rctrace::metrics_json(&session);

    // Validate both artifacts by round-tripping through the JSON parser
    // before anything touches disk.
    let parsed = json::parse(&chrome).map_err(|e| format!("chrome trace not valid JSON: {e}"))?;
    let n_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .map(|a| a.len())
        .ok_or("chrome trace missing traceEvents array")?;
    if n_events == 0 {
        return Err("chrome trace is empty".into());
    }
    if !chrome.contains("mem_bytes") {
        return Err("chrome trace contains no memory counter track".into());
    }
    json::parse(&metrics).map_err(|e| format!("metrics dump not valid JSON: {e}"))?;
    if !metrics.contains("\"mem\"") {
        return Err("metrics dump has no mem section".into());
    }

    let base_name = out.unwrap_or_else(|| "mem".to_string());
    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    let trace_path = format!("results/{base_name}.json");
    let metrics_path = format!("results/{base_name}_metrics.json");
    std::fs::write(&trace_path, &chrome).map_err(|e| e.to_string())?;
    std::fs::write(&metrics_path, &metrics).map_err(|e| e.to_string())?;
    println!("{trace_path}: {n_events} events; {metrics_path} written");

    if check {
        if r.mem.reclaims == 0 {
            return Err("reclaim check failed: hog never lost a cache page".into());
        }
        if r.mem.oom_kills == 0 {
            return Err("oom check failed: hog never OOM-killed".into());
        }
        if r.solo.cache_hit_rate <= 0.9 {
            return Err(format!(
                "baseline check failed: solo hit rate only {:.1}%",
                r.solo.cache_hit_rate * 100.0
            ));
        }
        if r.shared.cache_hit_rate < 0.95 * r.solo.cache_hit_rate {
            return Err(format!(
                "isolation check failed: hit rate fell {:.1}% → {:.1}%",
                r.solo.cache_hit_rate * 100.0,
                r.shared.cache_hit_rate * 100.0
            ));
        }
        if r.shared.p99_ms > 1.05 * r.solo.p99_ms.max(0.01) {
            return Err(format!(
                "isolation check failed: p99 grew {:.2} ms → {:.2} ms",
                r.solo.p99_ms, r.shared.p99_ms
            ));
        }
        println!("check ok: hog reclaimed and OOM-killed; guaranteed tenant within 5% of solo");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut reduced = false;
    let mut check = false;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--check" => check = true,
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => {
                    eprintln!("--out requires a name");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(reduced, check, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mem run failed: {e}");
            ExitCode::FAILURE
        }
    }
}
