//! Thin shim over `rcbench span`, kept so existing invocations
//! (`cargo run -p rcbench --bin span`) keep working.

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::shim("span")
}
