//! §7 extension: disk-bandwidth isolation between two fixed-share tenants.
//!
//! ```sh
//! cargo run --release -p rcbench --bin fig_disk
//! ```
//!
//! A disk-hog tenant (70% share, large files) and a small-file tenant (30%
//! share) contend for the simulated disk. Under the FIFO I/O scheduler —
//! the unmodified-kernel ablation — the victim's throughput collapses as
//! the hog's client count grows; under the container-share scheduler the
//! disk's busy time splits 70/30 and the victim's throughput stays flat.

use rcbench::Report;
use simos::DiskSchedKind;
use workload::scenarios::{run_disk_tenants, DiskTenantsParams, DiskTenantsResult};

fn run(sched: DiskSchedKind, hog_clients: usize) -> DiskTenantsResult {
    run_disk_tenants(DiskTenantsParams {
        hog_clients,
        secs: 12,
        sched,
        ..DiskTenantsParams::default()
    })
}

fn main() {
    let mut rep = Report::new("disk-bandwidth isolation: 70/30 fixed-share tenants");

    rep.line("disk-time split at 8 hog clients:");
    rep.line(format!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "sched", "hog conf", "hog meas", "victim conf", "victim meas", "disk%"
    ));
    for sched in [DiskSchedKind::Fifo, DiskSchedKind::Share] {
        let r = run(sched, 8);
        rep.line(format!(
            "{:<8} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}% {:>7.1}%",
            r.sched,
            r.configured[0] * 100.0,
            r.disk_fractions[0] * 100.0,
            r.configured[1] * 100.0,
            r.disk_fractions[1] * 100.0,
            r.utilization * 100.0,
        ));
    }
    rep.blank();

    rep.line("victim throughput vs hog load:");
    rep.line(format!(
        "{:<14} {:>10} {:>16} {:>16}",
        "hog clients", "sched", "victim req/s", "victim ms"
    ));
    for &hogs in &[2usize, 4, 8, 16] {
        for sched in [DiskSchedKind::Fifo, DiskSchedKind::Share] {
            let r = run(sched, hogs);
            rep.line(format!(
                "{:<14} {:>10} {:>16.1} {:>16.1}",
                hogs, r.sched, r.throughputs[1], r.latencies_ms[1]
            ));
        }
    }
    rep.blank();
    rep.line("paper §7: \"the container mechanism is general enough to encompass");
    rep.line("other system resources, such as disk bandwidth\"; the share-aware");
    rep.line("I/O scheduler holds the victim's service flat under any hog load.");
    rep.emit("fig_disk");
}
