//! Thin shim over `rcbench disk`, kept so existing invocations
//! (`cargo run -p rcbench --bin fig_disk`) keep working.

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::shim("disk")
}
