//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! ```sh
//! cargo run --release -p rcbench --bin ablations
//! ```
//!
//! 1. Scheduler-binding pruning (§4.3) on/off.
//! 2. Lazy (container) vs eager (interrupt) protocol processing under
//!    overload.
//! 3. Share-enforcement policy: hierarchical stride (multi-level) vs flat
//!    stride vs lottery.
//! 4. `select()` vs the scalable event API at increasing connection counts.
//! 5. Early-demultiplexing cost sensitivity of the SYN-flood defense.

use rcbench::Report;
use rescon::{Attributes, ContainerTable};
use sched::{CoreScheduler, LotteryScheduler, MultiLevelScheduler, StrideScheduler, TaskId};
use simcore::Nanos;
use simos::KernelConfig;
use workload::scenarios::{run_fig11, run_fig14, Fig11Params, Fig11System, Fig14Params};

fn main() {
    ablation_prune();
    ablation_lazy_vs_eager();
    ablation_share_policy();
    ablation_event_api();
    ablation_demux_cost();
}

/// 1. Scheduler-binding pruning: with pruning disabled, a multiplexed
///    thread keeps every container it ever served in its scheduler binding.
fn ablation_prune() {
    let mut rep = Report::new("Ablation 1: scheduler-binding pruning (§4.3)");
    // The RC kernel prunes every second by default; compare against a
    // kernel that never prunes by toggling the config through a custom
    // fig11-style run. (run_fig11 uses the default config; we measure the
    // binding growth indirectly through tail latency.)
    for (label, prune) in [("pruning on (1s)", true), ("pruning off", false)] {
        let mut cfg = KernelConfig::resource_containers();
        if !prune {
            cfg.sched.prune_interval = Nanos::ZERO;
        }
        // Piggyback on fig11's high/low setup at N=25 via a manual run:
        // reuse run_fig11 for the pruned default, and report that the
        // numbers match; for the unpruned variant we run the same scenario
        // with the modified kernel through the baseline helper.
        let r = workload::scenarios::baseline::run_baseline(workload::scenarios::BaselineParams {
            kernel: cfg,
            per_request_containers: true,
            clients: 30,
            secs: 6,
            persistent: false,
        });
        rep.line(format!(
            "  {label:<18}: {:>6.0} req/s, {:>5.1} us/request",
            r.requests_per_sec, r.cpu_per_request_us
        ));
    }
    rep.line("finding: identical — because this kernel also weeds *destroyed*");
    rep.line("containers from a binding at every rebind (DESIGN.md §9.4), periodic");
    rep.line("pruning only matters for live-but-idle containers (e.g. a dormant");
    rep.line("class a thread once served); with per-request containers the churn");
    rep.line("is fully absorbed by rebind weeding.");
    rep.emit("ablation_prune");
}

/// 2. Lazy vs eager protocol processing under overload (receive livelock).
fn ablation_lazy_vs_eager() {
    let mut rep = Report::new("Ablation 2: lazy (LRP/container) vs eager (interrupt) processing");
    for (label, defended) in [("eager interrupt", false), ("lazy containers", true)] {
        let r = run_fig14(Fig14Params {
            defended,
            syn_rate: 20_000.0,
            clients: 16,
            secs: 16,
        });
        rep.line(format!(
            "  {label:<18}: {:>6.0} req/s useful throughput under 20k SYN/s",
            r.throughput
        ));
    }
    rep.line("eager processing spends the whole CPU at interrupt level under flood");
    rep.line("(receive livelock); lazy classification drops excess traffic early.");
    rep.emit("ablation_lazy");
}

/// 3. Share enforcement: hierarchical stride vs flat stride vs lottery,
///    measured directly against the scheduler APIs.
fn ablation_share_policy() {
    let mut rep = Report::new("Ablation 3: fixed-share enforcement policy (70/30 target)");
    let run = |sched: &mut dyn CoreScheduler| -> f64 {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::fixed_share(0.7)).unwrap();
        let b = table.create(None, Attributes::fixed_share(0.3)).unwrap();
        let ca = table.create(Some(a), Attributes::time_shared(10)).unwrap();
        let cb = table.create(Some(b), Attributes::time_shared(10)).unwrap();
        sched.add_task(TaskId(1), &[ca], Nanos::ZERO);
        sched.add_task(TaskId(2), &[cb], Nanos::ZERO);
        sched.set_runnable(TaskId(1), true, Nanos::ZERO);
        sched.set_runnable(TaskId(2), true, Nanos::ZERO);
        let mut now = Nanos::ZERO;
        let mut cpu1 = Nanos::ZERO;
        let mut total = Nanos::ZERO;
        while now < Nanos::from_secs(2) {
            let Some(p) = sched.pick(&table, now) else {
                now += Nanos::from_millis(1);
                continue;
            };
            let dt = p.slice;
            let c = if p.task == TaskId(1) { ca } else { cb };
            table.charge_cpu(c, dt).unwrap();
            sched.charge(p.task, c, dt, &table, now + dt);
            if p.task == TaskId(1) {
                cpu1 += dt;
            }
            total += dt;
            now += dt;
        }
        cpu1.ratio(total)
    };
    let mut ml = MultiLevelScheduler::new();
    let mut st = StrideScheduler::new();
    let mut lo = LotteryScheduler::new(42);
    rep.line(format!(
        "  multi-level (hierarchical stride): {:.1}% (target 70.0%)",
        run(&mut ml) * 100.0
    ));
    rep.line(format!(
        "  flat stride (share->tickets)     : {:.1}%",
        run(&mut st) * 100.0
    ));
    rep.line(format!(
        "  lottery (share->tickets)         : {:.1}%",
        run(&mut lo) * 100.0
    ));
    rep.line("flat policies approximate the ratio via tickets but cannot honor");
    rep.line("nesting or CPU limits; the hierarchy-aware scheduler enforces both.");
    rep.emit("ablation_share_policy");
}

/// 4. select() vs scalable event API as connections grow (Figure 11's
///    residual slope).
fn ablation_event_api() {
    let mut rep = Report::new("Ablation 4: select() vs scalable event API (T_high, ms)");
    rep.line(format!("{:<6} {:>16} {:>16}", "N", "select()", "event API"));
    for n in [5usize, 15, 25, 35] {
        let sel = run_fig11(Fig11Params {
            system: Fig11System::RcSelect,
            low_clients: n,
            secs: 5,
        });
        let ev = run_fig11(Fig11Params {
            system: Fig11System::RcEventApi,
            low_clients: n,
            secs: 5,
        });
        rep.line(format!(
            "{n:<6} {:>16.3} {:>16.3}",
            sel.t_high_ms, ev.t_high_ms
        ));
    }
    rep.line("the select() slope is the per-descriptor scan cost (§5.5).");
    rep.emit("ablation_event_api");
}

/// 5. Demux-cost sensitivity of the flood defense: the residual throughput
///    loss at high SYN rates is the per-packet interrupt cost.
fn ablation_demux_cost() {
    let mut rep = Report::new("Ablation 5: early-demux cost vs defended flood throughput");
    rep.line(format!(
        "{:<14} {:>22}",
        "demux cost", "throughput @50k SYN/s"
    ));
    for demux_us in [2.0f64, 3.9, 8.0] {
        // Note: run_fig14 builds its own kernel; we emulate the sweep by
        // scaling the rate instead (cost x rate is what matters), keeping
        // the public scenario API unchanged: rate' = rate * (cost/3.9).
        let eq_rate = 50_000.0 * (demux_us / 3.9);
        let r = run_fig14(Fig14Params {
            defended: true,
            syn_rate: eq_rate,
            clients: 16,
            secs: 8,
        });
        rep.line(format!(
            "{:>10.1} us {:>18.0} req/s (modeled as {:.0} SYN/s at 3.9 us)",
            demux_us, r.throughput, eq_rate
        ));
    }
    rep.line("the product (demux cost x SYN rate) determines the stolen interrupt");
    rep.line("CPU and therefore the residual degradation (~27% at 70k in the paper).");
    rep.emit("ablation_demux_cost");
}
