//! The unified benchmark CLI: `rcbench <subcommand> [flags]`.
//!
//! ```sh
//! cargo run --release -p rcbench --bin rcbench -- help
//! cargo run --release -p rcbench --bin rcbench -- cluster --reduced --check
//! cargo run --release -p rcbench --bin rcbench -- ab --scenario span --arms decay,edf
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::main()
}
