//! Runs the SMP tenant scenario with kernel-wide tracing enabled and
//! emits the Chrome trace (per-CPU tracks + migration arrows, loadable in
//! Perfetto) plus the compact metrics dump.
//!
//! ```sh
//! cargo run --release -p rcbench --bin smp -- --ncpus 4
//! cargo run --release -p rcbench --bin smp -- --ncpus 1 --reduced --out smp_base
//! cargo run --release -p rcbench --bin smp -- --ncpus 4 --reduced --check
//! ```
//!
//! `--reduced` shrinks the run for CI smoke tests; `--out NAME` overrides
//! the artifact basename (default `smp_ncpus{N}`), which lets CI produce
//! two `--ncpus 1` dumps and diff them — the single-CPU run must be
//! deterministic down to the byte. `--check` asserts the paper's global
//! guarantee on the run itself: every tenant's measured CPU fraction
//! within 5 percentage points of its configured share (and, above one
//! CPU, that the balancer actually migrated threads).

use std::process::ExitCode;

use rcbench::json;
use rctrace::TraceConfig;
use simcore::Nanos;
use workload::scenarios::{run_smp_tenants, SmpTenantsParams};

fn run(ncpus: u32, reduced: bool, check: bool, out: Option<String>) -> Result<(), String> {
    let params = SmpTenantsParams {
        ncpus,
        clients_per_tenant: if reduced { 16 } else { 24 },
        parse_cost: Nanos::from_micros(200),
        secs: if reduced { 4 } else { 10 },
        ..SmpTenantsParams::default()
    };

    rctrace::start(TraceConfig::default());
    let r = run_smp_tenants(params);
    let session = rctrace::finish().ok_or("no trace session captured")?;

    println!(
        "smp_tenants ncpus={}: shares {} | {:.0} req/s total | {} migrations | busy {}",
        r.ncpus,
        r.configured
            .iter()
            .zip(&r.measured)
            .map(|(c, m)| format!("{:.0}%->{:.1}%", c * 100.0, m * 100.0))
            .collect::<Vec<_>>()
            .join(" "),
        r.total_throughput,
        r.migrations,
        r.busy_fraction
            .iter()
            .map(|b| format!("{:.0}%", b * 100.0))
            .collect::<Vec<_>>()
            .join("/"),
    );

    let chrome = rctrace::chrome_trace_json(&session);
    let metrics = rctrace::metrics_json(&session);

    // Validate both artifacts by round-tripping through the JSON parser
    // before anything touches disk.
    let parsed = json::parse(&chrome).map_err(|e| format!("chrome trace not valid JSON: {e}"))?;
    let n_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .map(|a| a.len())
        .ok_or("chrome trace missing traceEvents array")?;
    if n_events == 0 {
        return Err("chrome trace is empty".into());
    }
    json::parse(&metrics).map_err(|e| format!("metrics dump not valid JSON: {e}"))?;

    let base = out.unwrap_or_else(|| format!("smp_ncpus{ncpus}"));
    std::fs::create_dir_all("results").map_err(|e| e.to_string())?;
    let trace_path = format!("results/{base}.json");
    let metrics_path = format!("results/{base}_metrics.json");
    std::fs::write(&trace_path, &chrome).map_err(|e| e.to_string())?;
    std::fs::write(&metrics_path, &metrics).map_err(|e| e.to_string())?;
    println!("{trace_path}: {n_events} events; {metrics_path} written");

    if check {
        for (c, m) in r.configured.iter().zip(&r.measured) {
            if (c - m).abs() >= 0.05 {
                return Err(format!(
                    "share check failed: configured {:.0}% but measured {:.1}%",
                    c * 100.0,
                    m * 100.0
                ));
            }
        }
        if ncpus > 1 && r.migrations == 0 {
            return Err("share check failed: balancer never migrated a thread".into());
        }
        if ncpus == 1 && r.migrations != 0 {
            return Err("uniprocessor run migrated threads".into());
        }
        println!("check ok: every tenant within 5 points of its share");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut ncpus = 4u32;
    let mut reduced = false;
    let mut check = false;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--check" => check = true,
            "--ncpus" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => ncpus = n,
                None => {
                    eprintln!("--ncpus requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => {
                    eprintln!("--out requires a name");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(ncpus, reduced, check, out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("smp run failed: {e}");
            ExitCode::FAILURE
        }
    }
}
