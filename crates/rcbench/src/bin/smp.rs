//! Thin shim over `rcbench smp`, kept so existing invocations
//! (`cargo run -p rcbench --bin smp`) keep working.

use std::process::ExitCode;

fn main() -> ExitCode {
    rcbench::cli::shim("smp")
}
