//! A minimal JSON serializer over `serde::Serialize`.
//!
//! The workspace's offline dependency set includes `serde` but not
//! `serde_json`, so this module implements just enough of
//! [`serde::Serializer`] to dump experiment-result structs (numbers,
//! strings, booleans, options, sequences, maps with string keys, structs)
//! as JSON for the `results/` directory. It is not a general-purpose JSON
//! library: unsupported shapes (byte strings, non-string map keys) return
//! an error instead of guessing.

use std::fmt::Write as _;

use serde::ser::{self, Serialize};

/// Serialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes a value to a JSON string.
///
/// # Examples
///
/// ```
/// #[derive(serde::Serialize)]
/// struct Point {
///     x: f64,
///     label: String,
/// }
/// let json = rcbench::json::to_string(&Point {
///     x: 1.5,
///     label: "a".into(),
/// })
/// .unwrap();
/// assert_eq!(json, r#"{"x":1.5,"label":"a"}"#);
/// ```
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(Json { out: &mut out })?;
    Ok(out)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Json<'a> {
    out: &'a mut String,
}

/// Compound serializer state: tracks whether a separator is needed.
struct Compound<'a> {
    out: &'a mut String,
    first: bool,
    close: char,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for Json<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        self.serialize_f64(v as f64)
    }
    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), Error> {
        escape_into(self.out, &v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), Error> {
        escape_into(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<(), Error> {
        Err(ser::Error::custom("bytes unsupported"))
    }
    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(Json { out: self.out })
    }
    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        escape_into(self.out, variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(Json { out: self.out })
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(Json { out: self.out })?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('[');
        Ok(Compound {
            out: self.out,
            first: true,
            close: ']',
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            out: self.out,
            first: true,
            close: ']', // Note: trailing '}' appended in `end` via close2.
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            close: '}',
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            close: '}',
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            out: self.out,
            first: true,
            close: '}',
        })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.sep();
        value.serialize(Json { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(']');
        self.out.push('}');
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        self.sep();
        // Keys must serialize as strings; enforce by probing.
        let mut probe = String::new();
        key.serialize(Json { out: &mut probe })?;
        if !probe.starts_with('"') {
            return Err(ser::Error::custom("non-string map key"));
        }
        self.out.push_str(&probe);
        self.out.push(':');
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        value.serialize(Json { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.sep();
        escape_into(self.out, key);
        self.out.push(':');
        value.serialize(Json { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), Error> {
        self.out.push('}');
        self.out.push('}');
        Ok(())
    }
}

/// Writes a serialized value to `results/<name>.json` if `results/`
/// exists.
pub fn emit<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if !dir.is_dir() {
        return;
    }
    match to_string(value) {
        Ok(json) => {
            let _ = std::fs::write(dir.join(format!("{name}.json")), json);
        }
        Err(e) => eprintln!("json emit failed for {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[derive(serde::Serialize)]
    struct Nested {
        name: String,
        values: Vec<f64>,
        flag: bool,
        opt: Option<u32>,
        none: Option<u32>,
    }

    #[test]
    fn struct_roundtrip_shape() {
        let v = Nested {
            name: "hi \"there\"\n".into(),
            values: vec![1.0, 2.5],
            flag: true,
            opt: Some(7),
            none: None,
        };
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"name":"hi \"there\"\n","values":[1,2.5],"flag":true,"opt":7,"none":null}"#
        );
    }

    #[test]
    fn primitives() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&()).unwrap(), "null");
        assert_eq!(to_string(&'x').unwrap(), "\"x\"");
    }

    #[test]
    fn maps_with_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1);
        m.insert("b".to_string(), 2);
        assert_eq!(to_string(&m).unwrap(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn non_string_map_keys_rejected() {
        let mut m = BTreeMap::new();
        m.insert(1u32, 2u32);
        assert!(to_string(&m).is_err());
    }

    #[test]
    fn enums() {
        #[derive(serde::Serialize)]
        enum E {
            Unit,
            New(u32),
            Tuple(u32, u32),
            Struct { x: u32 },
        }
        assert_eq!(to_string(&E::Unit).unwrap(), "\"Unit\"");
        assert_eq!(to_string(&E::New(1)).unwrap(), r#"{"New":1}"#);
        assert_eq!(to_string(&E::Tuple(1, 2)).unwrap(), r#"{"Tuple":[1,2]}"#);
        assert_eq!(
            to_string(&E::Struct { x: 3 }).unwrap(),
            r#"{"Struct":{"x":3}}"#
        );
    }

    #[test]
    fn control_chars_escaped() {
        let s = to_string(&"\u{1}").unwrap();
        assert_eq!(s, "\"\\u0001\"");
    }
}
