//! A minimal JSON serializer over `serde::Serialize`.
//!
//! The workspace's offline dependency set includes `serde` but not
//! `serde_json`, so this module implements just enough of
//! [`serde::Serializer`] to dump experiment-result structs (numbers,
//! strings, booleans, options, sequences, maps with string keys, structs)
//! as JSON for the `results/` directory. It is not a general-purpose JSON
//! library: unsupported shapes (byte strings, non-string map keys) return
//! an error instead of guessing.

use std::fmt::Write as _;

use serde::ser::{self, Serialize};

/// Serialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes a value to a JSON string.
///
/// # Examples
///
/// ```
/// #[derive(serde::Serialize)]
/// struct Point {
///     x: f64,
///     label: String,
/// }
/// let json = rcbench::json::to_string(&Point {
///     x: 1.5,
///     label: "a".into(),
/// })
/// .unwrap();
/// assert_eq!(json, r#"{"x":1.5,"label":"a"}"#);
/// ```
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(Json { out: &mut out })?;
    Ok(out)
}

/// Writes an `f64` in the crate's canonical JSON form: Rust's
/// shortest-roundtrip decimal for finite values, `null` for NaN and
/// infinities (which JSON cannot represent). Every float this crate
/// emits — serializer output and diff/report text alike — funnels
/// through here, so artifacts agree on formatting byte-for-byte.
///
/// # Examples
///
/// ```
/// let mut s = String::new();
/// rcbench::json::write_f64(&mut s, 1.25);
/// rcbench::json::write_f64(&mut s, f64::NAN);
/// assert_eq!(s, "1.25null");
/// ```
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// [`write_f64`] into a fresh string — for formatting a float into
/// report or diff text with the same canonical form as the artifacts.
pub fn f64_string(v: f64) -> String {
    let mut s = String::new();
    write_f64(&mut s, v);
    s
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Json<'a> {
    out: &'a mut String,
}

/// Compound serializer state: tracks whether a separator is needed.
struct Compound<'a> {
    out: &'a mut String,
    first: bool,
    close: char,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for Json<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        self.serialize_f64(v as f64)
    }
    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        write_f64(self.out, v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), Error> {
        escape_into(self.out, &v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), Error> {
        escape_into(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<(), Error> {
        Err(ser::Error::custom("bytes unsupported"))
    }
    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(Json { out: self.out })
    }
    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        escape_into(self.out, variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(Json { out: self.out })
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(Json { out: self.out })?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('[');
        Ok(Compound {
            out: self.out,
            first: true,
            close: ']',
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            out: self.out,
            first: true,
            close: ']', // Note: trailing '}' appended in `end` via close2.
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            close: '}',
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            close: '}',
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            out: self.out,
            first: true,
            close: '}',
        })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.sep();
        value.serialize(Json { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(']');
        self.out.push('}');
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        self.sep();
        // Keys must serialize as strings; enforce by probing.
        let mut probe = String::new();
        key.serialize(Json { out: &mut probe })?;
        if !probe.starts_with('"') {
            return Err(ser::Error::custom("non-string map key"));
        }
        self.out.push_str(&probe);
        self.out.push(':');
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        value.serialize(Json { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.sep();
        escape_into(self.out, key);
        self.out.push(':');
        value.serialize(Json { out: self.out })
    }
    fn end(self) -> Result<(), Error> {
        self.out.push(self.close);
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), Error> {
        self.out.push('}');
        self.out.push('}');
        Ok(())
    }
}

/// A parsed JSON value.
///
/// The complement of [`to_string`]: just enough of a parser to validate
/// that emitted artifacts (experiment results, trace exports) are
/// well-formed JSON and to probe their structure in tests. Objects keep
/// their key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (one value plus trailing whitespace).
///
/// # Examples
///
/// ```
/// use rcbench::json::{parse, Value};
///
/// let v = parse(r#"{"a":[1,true,"x"]}"#).unwrap();
/// assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
/// assert_eq!(parse("1e3").unwrap(), Value::Number(1000.0));
/// assert!(parse("{").is_err());
/// ```
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            out.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 character. The input is
                    // a &str, so the sequence is valid; decode only its
                    // own bytes (validating the whole remaining input here
                    // would make string parsing quadratic).
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(Error("lone high surrogate".into()));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(Error("bad low surrogate".into()));
            }
            let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            char::from_u32(c).ok_or_else(|| Error("bad surrogate pair".into()))
        } else if (0xdc00..0xe000).contains(&hi) {
            Err(Error("lone low surrogate".into()))
        } else {
            char::from_u32(hi).ok_or_else(|| Error("bad \\u escape".into()))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(Error(format!("bad number at byte {start}")));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(Error(format!("bad number at byte {start}")));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(Error(format!("bad number at byte {start}")));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error(e.to_string()))
    }
}

/// Writes a serialized value to `results/<name>.json` if `results/`
/// exists.
pub fn emit<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if !dir.is_dir() {
        return;
    }
    match to_string(value) {
        Ok(json) => {
            let _ = std::fs::write(dir.join(format!("{name}.json")), json);
        }
        Err(e) => eprintln!("json emit failed for {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[derive(serde::Serialize)]
    struct Nested {
        name: String,
        values: Vec<f64>,
        flag: bool,
        opt: Option<u32>,
        none: Option<u32>,
    }

    #[test]
    fn struct_roundtrip_shape() {
        let v = Nested {
            name: "hi \"there\"\n".into(),
            values: vec![1.0, 2.5],
            flag: true,
            opt: Some(7),
            none: None,
        };
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"name":"hi \"there\"\n","values":[1,2.5],"flag":true,"opt":7,"none":null}"#
        );
    }

    #[test]
    fn primitives() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&()).unwrap(), "null");
        assert_eq!(to_string(&'x').unwrap(), "\"x\"");
    }

    #[test]
    fn maps_with_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1);
        m.insert("b".to_string(), 2);
        assert_eq!(to_string(&m).unwrap(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn non_string_map_keys_rejected() {
        let mut m = BTreeMap::new();
        m.insert(1u32, 2u32);
        assert!(to_string(&m).is_err());
    }

    #[test]
    fn enums() {
        #[derive(serde::Serialize)]
        enum E {
            Unit,
            New(u32),
            Tuple(u32, u32),
            Struct { x: u32 },
        }
        assert_eq!(to_string(&E::Unit).unwrap(), "\"Unit\"");
        assert_eq!(to_string(&E::New(1)).unwrap(), r#"{"New":1}"#);
        assert_eq!(to_string(&E::Tuple(1, 2)).unwrap(), r#"{"Tuple":[1,2]}"#);
        assert_eq!(
            to_string(&E::Struct { x: 3 }).unwrap(),
            r#"{"Struct":{"x":3}}"#
        );
    }

    #[test]
    fn control_chars_escaped() {
        let s = to_string(&"\u{1}").unwrap();
        assert_eq!(s, "\"\\u0001\"");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::String("a\nb".into()));
        assert_eq!(parse(r#""\u0041""#).unwrap(), Value::String("A".into()));
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "01x", "\"\\q\"", "tru", "1 2", "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_nested_and_lookup() {
        let v = parse(r#"{"xs":[{"n":1},{"n":2}],"s":"hi"}"#).unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[1].get("n").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn serializer_output_round_trips() {
        let v = Nested {
            name: "q\"\u{1}\u{7f}".into(),
            values: vec![0.125, -3.0],
            flag: false,
            opt: Some(9),
            none: None,
        };
        let s = to_string(&v).unwrap();
        let parsed = parse(&s).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("q\"\u{1}\u{7f}"));
        assert_eq!(
            parsed.get("values").unwrap().as_array().unwrap()[0].as_f64(),
            Some(0.125)
        );
        assert_eq!(parsed.get("none"), Some(&Value::Null));
    }
}
