//! Shared report formatting for the benchmark binaries, plus the
//! unified [`cli`] every experiment runs behind.
//!
//! Every `rcbench` binary regenerates one table or figure from the paper's
//! evaluation and prints it as an aligned text table with the paper's
//! reported values alongside, then appends the same text to
//! `results/<name>.txt` when a `results/` directory exists.
//!
//! The `rcbench` multiplexer binary dispatches subcommands through
//! [`cli::dispatch`]; the historical per-experiment binaries are
//! one-line shims over [`cli::shim`].

pub mod cli;
pub mod json;

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Report {
    title: String,
    lines: Vec<String>,
}

impl Report {
    /// Creates a report with a title block.
    pub fn new(title: &str) -> Self {
        Report {
            title: title.to_string(),
            lines: Vec::new(),
        }
    }

    /// Adds one preformatted line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Adds a blank line.
    pub fn blank(&mut self) {
        self.lines.push(String::new());
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let bar = "=".repeat(self.title.len());
        let _ = writeln!(out, "{}\n{}", self.title, bar);
        for l in &self.lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }

    /// Prints to stdout and, if `results/` exists, writes
    /// `results/<name>.txt`.
    pub fn emit(&self, name: &str) {
        let text = self.render();
        println!("{text}");
        let dir = Path::new("results");
        if dir.is_dir() {
            let _ = std::fs::write(dir.join(format!("{name}.txt")), &text);
        }
    }
}

/// Formats a measured-vs-paper pair with the ratio.
pub fn vs(measured: f64, paper: f64, unit: &str) -> String {
    if paper == 0.0 {
        return format!("{measured:.1}{unit} (paper: n/a)");
    }
    format!(
        "{measured:.1}{unit} (paper {paper:.1}{unit}, ratio {:.2})",
        measured / paper
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_title_and_lines() {
        let mut r = Report::new("Table 1");
        r.line("a | b");
        r.blank();
        r.line("c");
        let s = r.render();
        assert!(s.contains("Table 1"));
        assert!(s.contains("a | b"));
        assert!(s.ends_with("c\n"));
    }

    #[test]
    fn vs_formats_ratio() {
        let s = vs(300.0, 150.0, "us");
        assert!(s.contains("ratio 2.00"), "{s}");
        assert!(vs(1.0, 0.0, "x").contains("n/a"));
    }
}
