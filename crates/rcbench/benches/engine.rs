//! Simulation-engine benchmarks: wall-clock cost of simulating a loaded
//! server for 100 ms of virtual time under each kernel configuration.
//!
//! These are not paper results; they track the performance of the
//! simulator itself (scheduler pick paths, event queue, network glue) so
//! regressions in the substrate show up.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use httpsim::stats::shared_stats;
use httpsim::{EventDrivenServer, ServerConfig};
use rescon::Attributes;
use simcore::Nanos;
use simnet::IpAddr;
use simos::{Kernel, KernelConfig};
use workload::{ClientSpec, HttpClients};

fn simulate(cfg: KernelConfig, clients: usize, virtual_ms: u64) -> u64 {
    let stats = shared_stats();
    let mut k = Kernel::new(cfg);
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let specs: Vec<ClientSpec> = (0..clients)
        .map(|i| ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i as u8), 0))
        .collect();
    let mut world = HttpClients::new(specs, Nanos::ZERO, Nanos::from_millis(virtual_ms));
    world.arm(&mut k);
    k.run(&mut world, Nanos::from_millis(virtual_ms));
    let served = stats.borrow().static_served;
    served
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("unmodified_100ms_8clients", |b| {
        b.iter(|| black_box(simulate(KernelConfig::unmodified(), 8, 100)))
    });
    g.bench_function("lrp_100ms_8clients", |b| {
        b.iter(|| black_box(simulate(KernelConfig::lrp(), 8, 100)))
    });
    g.bench_function("rc_100ms_8clients", |b| {
        b.iter(|| black_box(simulate(KernelConfig::resource_containers(), 8, 100)))
    });
    g.finish();
}

criterion_group!(engine, bench_kernels);
criterion_main!(engine);
