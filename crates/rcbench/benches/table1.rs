//! Table 1: cost of resource container primitives.
//!
//! The paper measured, on a 500 MHz Alpha (microseconds):
//!
//! | operation                         | cost (µs) |
//! |-----------------------------------|-----------|
//! | create resource container         | 2.36      |
//! | destroy resource container        | 2.10      |
//! | change thread's resource binding  | 1.04      |
//! | obtain container resource usage   | 2.04      |
//! | set/get container attributes      | 2.10      |
//! | move container between processes  | 3.15      |
//! | obtain handle for existing cont.  | 1.90      |
//!
//! This bench measures our actual Rust implementations of the same
//! primitives on the host. Absolute numbers differ (different machine and
//! substrate); the property that must hold — and did in §5.4 — is that
//! every primitive costs far less than one HTTP transaction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rescon::{Attributes, ContainerTable, DescriptorTable, SchedulerBinding};
use simcore::Nanos;

fn bench_create_destroy(c: &mut Criterion) {
    c.bench_function("table1/create+destroy_container", |b| {
        let mut t = ContainerTable::new();
        b.iter(|| {
            let id = t.create(None, Attributes::time_shared(10)).expect("create");
            black_box(t.drop_descriptor_ref(id).expect("destroy"));
        });
    });
}

fn bench_change_binding(c: &mut Criterion) {
    c.bench_function("table1/change_thread_resource_binding", |b| {
        let mut t = ContainerTable::new();
        let a = t.create(None, Attributes::time_shared(1)).unwrap();
        let bb = t.create(None, Attributes::time_shared(2)).unwrap();
        let mut sb = SchedulerBinding::new();
        let mut now = Nanos::ZERO;
        let mut flip = false;
        b.iter(|| {
            let target = if flip { a } else { bb };
            flip = !flip;
            // A binding change = refcount move + scheduler-binding touch.
            t.bind_thread(target).expect("bind");
            sb.touch(target, now);
            now += Nanos::from_nanos(1);
            t.unbind_thread(target).expect("unbind");
            black_box(&sb);
        });
    });
}

fn bench_usage_query(c: &mut Criterion) {
    c.bench_function("table1/obtain_container_usage", |b| {
        let mut t = ContainerTable::new();
        let id = t.create(None, Attributes::time_shared(1)).unwrap();
        t.charge_cpu(id, Nanos::from_micros(100)).unwrap();
        b.iter(|| black_box(t.usage(id).expect("usage")));
    });
}

fn bench_attrs(c: &mut Criterion) {
    c.bench_function("table1/set_get_attributes", |b| {
        let mut t = ContainerTable::new();
        let id = t.create(None, Attributes::time_shared(1)).unwrap();
        let mut prio = 1;
        b.iter(|| {
            prio = (prio % 30) + 1;
            t.set_attrs(id, Attributes::time_shared(prio)).expect("set");
            black_box(t.attrs(id).expect("get"));
        });
    });
}

fn bench_pass_between_processes(c: &mut Criterion) {
    c.bench_function("table1/move_container_between_processes", |b| {
        let mut t = ContainerTable::new();
        let id = t.create(None, Attributes::time_shared(1)).unwrap();
        let sender = {
            let mut d = DescriptorTable::new();
            d.adopt(id);
            d
        };
        let fd = rescon::ContainerFd(0);
        b.iter(|| {
            let mut receiver = DescriptorTable::new();
            let rfd = sender.pass_to(fd, &mut receiver, &mut t).expect("pass");
            black_box(receiver.close(rfd, &mut t).expect("close"));
        });
    });
}

fn bench_obtain_handle(c: &mut Criterion) {
    c.bench_function("table1/obtain_handle_for_existing", |b| {
        let mut t = ContainerTable::new();
        let id = t.create(None, Attributes::time_shared(1)).unwrap();
        let mut d = DescriptorTable::new();
        b.iter(|| {
            let fd = d.open(id, &mut t).expect("open");
            black_box(d.close(fd, &mut t).expect("close"));
        });
    });
}

criterion_group!(
    table1,
    bench_create_destroy,
    bench_change_binding,
    bench_usage_query,
    bench_attrs,
    bench_pass_between_processes,
    bench_obtain_handle
);
criterion_main!(table1);
