//! Substrate benchmarks: the hot paths the simulated kernel leans on.
//!
//! Not paper results — these guard the building blocks: the container
//! charge path at various hierarchy depths, multi-level scheduler picks at
//! realistic container counts, pending-queue operations, and a full
//! simulated TCP handshake through the socket table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rescon::{Attributes, ContainerId, ContainerTable};
use sched::{CoreScheduler, MultiLevelScheduler, TaskId};
use simcore::Nanos;
use simnet::{CidrFilter, FlowKey, IpAddr, NetStack, Packet, PacketKind, PendingQueues};

fn bench_charge_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("rescon/charge_cpu");
    for depth in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut t = ContainerTable::new();
            let mut parent = None;
            for _ in 0..depth {
                parent = Some(
                    t.create(parent, Attributes::fixed_share(0.5))
                        .expect("chain"),
                );
            }
            let leaf = t.create(parent, Attributes::time_shared(10)).expect("leaf");
            b.iter(|| {
                t.charge_cpu(black_box(leaf), Nanos::from_micros(1))
                    .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_multilevel_pick(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched/multilevel_pick");
    for containers in [4usize, 40, 400] {
        g.bench_with_input(
            BenchmarkId::from_parameter(containers),
            &containers,
            |b, &n| {
                let mut t = ContainerTable::new();
                let conns: Vec<ContainerId> = (0..n)
                    .map(|_| t.create(None, Attributes::time_shared(10)).unwrap())
                    .collect();
                let mut s = MultiLevelScheduler::new();
                // One multiplexed server thread bound to everything, plus a
                // kthread bound to a few.
                s.add_task(TaskId(1), &conns, Nanos::ZERO);
                s.add_task(TaskId(2), &conns[..n.min(4)], Nanos::ZERO);
                s.set_runnable(TaskId(1), true, Nanos::ZERO);
                s.set_runnable(TaskId(2), true, Nanos::ZERO);
                let mut now = Nanos::ZERO;
                b.iter(|| {
                    now += Nanos::from_micros(10);
                    let p = s.pick(&t, now).expect("pick");
                    s.charge(p.task, conns[0], Nanos::from_micros(10), &t, now);
                    black_box(p.task)
                });
            },
        );
    }
    g.finish();
}

fn bench_pending_queues(c: &mut Criterion) {
    c.bench_function("simnet/pending_push_pop", |b| {
        let mut q: PendingQueues<u32> = PendingQueues::new(256);
        let pkt = Packet::new(
            FlowKey::new(IpAddr::new(1, 2, 3, 4), 99, 80),
            PacketKind::Data { bytes: 512 },
        );
        for p in 0..16u32 {
            q.push(p, pkt);
        }
        b.iter(|| {
            q.push(3, pkt);
            black_box(q.pop_highest(|p| p % 4).expect("pop"))
        });
    });
}

fn bench_handshake(c: &mut Criterion) {
    c.bench_function("simnet/full_handshake_request_close", |b| {
        let mut stack = NetStack::new(Nanos::from_secs(5));
        let l = stack.listen(80, CidrFilter::any(), None, 1024, 1024, false);
        let mut port = 1000u16;
        b.iter(|| {
            port = port.wrapping_add(1).max(1000);
            let f = FlowKey::new(IpAddr::new(10, 0, 0, 1), port, 80);
            let now = Nanos::from_micros(port as u64);
            stack.handle_packet(Packet::new(f, PacketKind::Syn), now);
            stack.handle_packet(Packet::new(f, PacketKind::Ack), now);
            let conn = stack.accept(l).expect("conn");
            stack.handle_packet(Packet::new(f, PacketKind::Data { bytes: 200 }), now);
            let _ = stack.read(conn);
            let _ = stack.send(conn, 1024);
            black_box(stack.close(conn));
        });
    });
}

criterion_group!(
    substrate,
    bench_charge_depth,
    bench_multilevel_pick,
    bench_pending_queues,
    bench_handshake
);
criterion_main!(substrate);
