//! Property tests for the schedulers: proportional-share error bounds,
//! limit enforcement, and starvation rules under randomized
//! configurations.

use proptest::prelude::*;
use rescon::{Attributes, ContainerId, ContainerTable};
use sched::{CoreScheduler, MultiLevelScheduler, StrideScheduler, TaskId};
use simcore::Nanos;

/// Runs a scheduler with one always-runnable task per container and
/// returns each task's CPU fraction.
fn run_shares(
    sched: &mut dyn CoreScheduler,
    table: &mut ContainerTable,
    leaves: &[ContainerId],
    duration: Nanos,
) -> Vec<f64> {
    for (i, &c) in leaves.iter().enumerate() {
        sched.add_task(TaskId(i as u32), &[c], Nanos::ZERO);
        sched.set_runnable(TaskId(i as u32), true, Nanos::ZERO);
    }
    let mut consumed = vec![Nanos::ZERO; leaves.len()];
    let mut now = Nanos::ZERO;
    while now < duration {
        match sched.pick(table, now) {
            Some(p) => {
                let dt = p.slice;
                let c = leaves[p.task.0 as usize];
                table.charge_cpu(c, dt).unwrap();
                sched.charge(p.task, c, dt, table, now + dt);
                consumed[p.task.0 as usize] += dt;
                now += dt;
            }
            None => {
                let next = sched
                    .next_release_time(table, now)
                    .unwrap_or(now + Nanos::from_millis(1));
                now = next.max(now + Nanos::from_micros(100));
            }
        }
    }
    let total: Nanos = consumed.iter().copied().sum();
    consumed.iter().map(|&c| c.ratio(total)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The multi-level scheduler honors arbitrary fixed-share splits to
    /// within a few percent over a two-second run.
    #[test]
    fn multilevel_fixed_shares_converge(
        raw in prop::collection::vec(1u32..10, 2..5)
    ) {
        let total: u32 = raw.iter().sum();
        let shares: Vec<f64> = raw.iter().map(|&r| r as f64 / total as f64).collect();
        let mut table = ContainerTable::new();
        let leaves: Vec<ContainerId> = shares
            .iter()
            .map(|&s| {
                let parent = table
                    .create(None, Attributes::fixed_share(s))
                    .expect("fs parent");
                table
                    .create(Some(parent), Attributes::time_shared(10))
                    .expect("ts leaf")
            })
            .collect();
        let mut s = MultiLevelScheduler::new();
        let got = run_shares(&mut s, &mut table, &leaves, Nanos::from_secs(2));
        for (want, got) in shares.iter().zip(&got) {
            prop_assert!(
                (want - got).abs() < 0.04,
                "want {want:.3} got {got:.3} (all: {got:?})"
            );
        }
    }

    /// The flat stride scheduler allocates proportionally to priorities+1.
    #[test]
    fn stride_proportional_to_tickets(
        prios in prop::collection::vec(0u32..8, 2..5)
    ) {
        let mut table = ContainerTable::new();
        let leaves: Vec<ContainerId> = prios
            .iter()
            .map(|&p| table.create(None, Attributes::time_shared(p)).unwrap())
            .collect();
        let mut s = StrideScheduler::new();
        let got = run_shares(&mut s, &mut table, &leaves, Nanos::from_secs(1));
        let tickets: Vec<f64> = prios.iter().map(|&p| (p + 1) as f64).collect();
        let tsum: f64 = tickets.iter().sum();
        for (t, got) in tickets.iter().zip(&got) {
            let want = t / tsum;
            prop_assert!(
                (want - got).abs() < 0.02,
                "want {want:.3} got {got:.3}"
            );
        }
    }

    /// A CPU limit is an upper bound no matter what share the container
    /// also holds, and the leftover goes to the unlimited competitor.
    #[test]
    fn limits_upper_bound_consumption(
        limit_pct in 5u32..60,
    ) {
        let limit = limit_pct as f64 / 100.0;
        let mut table = ContainerTable::new();
        let capped_parent = table
            .create(
                None,
                Attributes::fixed_share(0.9).with_cpu_limit(limit, Nanos::from_millis(100)),
            )
            .unwrap();
        let capped = table
            .create(Some(capped_parent), Attributes::time_shared(10))
            .unwrap();
        let free = table.create(None, Attributes::time_shared(10)).unwrap();
        let mut s = MultiLevelScheduler::new();
        let got = run_shares(&mut s, &mut table, &[capped, free], Nanos::from_secs(2));
        prop_assert!(
            got[0] < limit + 0.03,
            "capped at {limit} but consumed {}",
            got[0]
        );
        prop_assert!(got[1] > 1.0 - limit - 0.05, "free got {}", got[1]);
    }

    /// Priority-zero work never runs while any positive-priority work is
    /// runnable, for arbitrary interleavings of blocking/waking.
    #[test]
    fn starvable_never_preempts(
        wake_pattern in prop::collection::vec(any::<bool>(), 8..64)
    ) {
        let mut table = ContainerTable::new();
        let bg = table.create(None, Attributes::time_shared(0)).unwrap();
        let fg = table.create(None, Attributes::time_shared(5)).unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(0), &[bg], Nanos::ZERO);
        s.add_task(TaskId(1), &[fg], Nanos::ZERO);
        s.set_runnable(TaskId(0), true, Nanos::ZERO);
        let mut now = Nanos::ZERO;
        for fg_runnable in wake_pattern {
            s.set_runnable(TaskId(1), fg_runnable, now);
            if let Some(p) = s.pick(&table, now) {
                if fg_runnable {
                    prop_assert_eq!(p.task, TaskId(1));
                }
                let c = if p.task == TaskId(0) { bg } else { fg };
                table.charge_cpu(c, p.slice).unwrap();
                s.charge(p.task, c, p.slice, &table, now + p.slice);
                now += p.slice;
            }
        }
    }
}
