//! A flat lottery scheduler (Waldspurger & Weihl, OSDI '94), used as an
//! ablation: probabilistic proportional share over tasks, with tickets
//! derived from container bindings exactly as in the stride scheduler.

use std::collections::HashMap;

use rescon::{ContainerId, ContainerTable};
use simcore::trace::{self, TraceEventKind};
use simcore::{Nanos, SimRng};

use crate::api::{CoreScheduler, Pick, TaskId};
use crate::stride::StrideScheduler;

#[derive(Debug)]
struct LotteryTask {
    binding: Vec<ContainerId>,
    runnable: bool,
}

/// A lottery scheduler: each pick draws a winner with probability
/// proportional to its tickets.
///
/// Deterministic for a fixed seed, like everything else in the simulation.
///
/// # Examples
///
/// ```
/// use rescon::{Attributes, ContainerTable};
/// use sched::{CoreScheduler, LotteryScheduler, TaskId};
/// use simcore::Nanos;
///
/// let mut table = ContainerTable::new();
/// let c = table.create(None, Attributes::time_shared(1)).unwrap();
/// let mut s = LotteryScheduler::new(42);
/// s.add_task(TaskId(1), &[c], Nanos::ZERO);
/// s.set_runnable(TaskId(1), true, Nanos::ZERO);
/// assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(1));
/// ```
pub struct LotteryScheduler {
    tasks: HashMap<TaskId, LotteryTask>,
    /// Sorted task order for deterministic iteration.
    order: Vec<TaskId>,
    rng: SimRng,
    quantum: Nanos,
}

impl LotteryScheduler {
    /// Creates a lottery scheduler seeded with `seed`, 1 ms quantum.
    pub fn new(seed: u64) -> Self {
        LotteryScheduler {
            tasks: HashMap::new(),
            order: Vec::new(),
            rng: SimRng::seed_from(seed),
            quantum: Nanos::from_millis(1),
        }
    }
}

impl CoreScheduler for LotteryScheduler {
    fn add_task(&mut self, task: TaskId, binding: &[ContainerId], _now: Nanos) {
        self.tasks.insert(
            task,
            LotteryTask {
                binding: binding.to_vec(),
                runnable: false,
            },
        );
        if let Err(pos) = self.order.binary_search(&task) {
            self.order.insert(pos, task);
        }
    }

    fn remove_task(&mut self, task: TaskId) {
        self.tasks.remove(&task);
        self.order.retain(|&t| t != task);
    }

    fn set_binding(&mut self, task: TaskId, binding: &[ContainerId], _now: Nanos) {
        if let Some(t) = self.tasks.get_mut(&task) {
            t.binding = binding.to_vec();
        }
    }

    fn set_runnable(&mut self, task: TaskId, runnable: bool, now: Nanos) {
        if let Some(t) = self.tasks.get_mut(&task) {
            if t.runnable != runnable {
                trace::emit_at(now, || TraceEventKind::ThreadState {
                    task: task.0,
                    runnable,
                });
            }
            t.runnable = runnable;
        }
    }

    fn is_runnable(&self, task: TaskId) -> bool {
        self.tasks.get(&task).map(|t| t.runnable).unwrap_or(false)
    }

    fn pick(&mut self, table: &ContainerTable, now: Nanos) -> Option<Pick> {
        let mut total = 0.0;
        let mut entries: Vec<(TaskId, f64)> = Vec::new();
        for &id in &self.order {
            let t = &self.tasks[&id];
            if !t.runnable {
                continue;
            }
            let tickets = StrideScheduler::tickets(table, &t.binding);
            total += tickets;
            entries.push((id, tickets));
        }
        if entries.is_empty() {
            return None;
        }
        let draw = self.rng.uniform_f64() * total;
        let mut acc = 0.0;
        // Floating-point edge: fall back to the last entry.
        let mut winner = entries.last().map(|&(id, _)| id)?;
        for (id, tickets) in &entries {
            acc += tickets;
            if draw < acc {
                winner = *id;
                break;
            }
        }
        trace::emit_at(now, || TraceEventKind::SchedPick {
            task: winner.0,
            slice: self.quantum,
        });
        Some(Pick {
            task: winner,
            slice: self.quantum,
        })
    }

    fn charge(
        &mut self,
        _task: TaskId,
        _container: ContainerId,
        _dt: Nanos,
        _table: &ContainerTable,
        _now: Nanos,
    ) {
        // Lottery scheduling is memoryless.
    }

    fn next_release_time(&mut self, _table: &ContainerTable, _now: Nanos) -> Option<Nanos> {
        None
    }

    fn name(&self) -> &'static str {
        "lottery"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescon::Attributes;

    #[test]
    fn proportions_converge_to_tickets() {
        let mut table = ContainerTable::new();
        let c3 = table.create(None, Attributes::time_shared(2)).unwrap();
        let c1 = table.create(None, Attributes::time_shared(0)).unwrap();
        let mut s = LotteryScheduler::new(7);
        s.add_task(TaskId(1), &[c3], Nanos::ZERO);
        s.add_task(TaskId(2), &[c1], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        let mut wins = [0u32; 3];
        for _ in 0..20_000 {
            let p = s.pick(&table, Nanos::ZERO).unwrap();
            wins[p.task.0 as usize] += 1;
        }
        let r = wins[1] as f64 / (wins[1] + wins[2]) as f64;
        assert!((r - 0.75).abs() < 0.02, "r = {r}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut table = ContainerTable::new();
        let c = table.create(None, Attributes::time_shared(1)).unwrap();
        let mk = |seed| {
            let mut s = LotteryScheduler::new(seed);
            for i in 0..4 {
                s.add_task(TaskId(i), &[c], Nanos::ZERO);
                s.set_runnable(TaskId(i), true, Nanos::ZERO);
            }
            (0..64)
                .map(|_| s.pick(&table, Nanos::ZERO).unwrap().task)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }

    #[test]
    fn no_runnable_tasks_is_none() {
        let table = ContainerTable::new();
        let mut s = LotteryScheduler::new(1);
        s.add_task(TaskId(1), &[], Nanos::ZERO);
        assert!(s.pick(&table, Nanos::ZERO).is_none());
    }
}
