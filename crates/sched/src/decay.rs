//! The baseline decay-usage time-sharing scheduler ("unmodified system").
//!
//! This models the classic 4.3BSD/Digital UNIX scheduler the paper compares
//! against: the resource principal is the *process*, recent CPU usage
//! decays a process's precedence, and the minimum-usage runnable entity
//! runs next. In the simulated kernel a process is represented by its
//! default container, so usage is keyed by the first container of a task's
//! binding: a process's application thread and its LRP kernel network
//! thread share one usage accumulator, exactly as LRP charges protocol
//! processing to the receiving process. Tasks registered with no binding
//! (unit tests, bare tasks) fall back to per-task accounting.

use std::collections::HashMap;

use rescon::{ContainerId, ContainerTable};
use simcore::slab::IdSlab;
use simcore::trace::{self, TraceEventKind};
use simcore::Nanos;

use crate::api::{CoreScheduler, Pick, TaskId};
use crate::usage_decay::UsageDecay;

/// The accounting key: the process's container, or the task itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum UsageKey {
    Principal(ContainerId),
    Bare(TaskId),
}

/// Per-task scheduler state.
#[derive(Debug)]
struct TaskState {
    runnable: bool,
    key: UsageKey,
    /// Index of the task's accumulator in `usages` — the hot `charge` and
    /// `pick` paths go straight to the slot without hashing the key.
    usage: u32,
    last_scheduled: Nanos,
}

/// One usage accumulator. Slots are append-only: a retired slot (its last
/// sharing task removed) goes dead but its index is never reused, so the
/// `usage` indices cached in [`TaskState`] can never dangle.
#[derive(Debug)]
struct UsageSlot {
    decay: UsageDecay,
}

/// A classic decay-usage time-sharing scheduler over processes.
///
/// Among continuously runnable principals, minimum-decayed-usage selection
/// equalizes long-run *charged* CPU rates; principals that block often (an
/// event-driven server at moderate load) keep low usage and therefore get
/// scheduled promptly on wake-up — the textbook interactive preference.
///
/// # Examples
///
/// ```
/// use rescon::ContainerTable;
/// use sched::{CoreScheduler, DecayUsageScheduler, TaskId};
/// use simcore::Nanos;
///
/// let table = ContainerTable::new();
/// let mut s = DecayUsageScheduler::new();
/// s.add_task(TaskId(1), &[], Nanos::ZERO);
/// s.set_runnable(TaskId(1), true, Nanos::ZERO);
/// let pick = s.pick(&table, Nanos::ZERO).unwrap();
/// assert_eq!(pick.task, TaskId(1));
/// ```
pub struct DecayUsageScheduler {
    tasks: IdSlab<TaskId, TaskState>,
    /// Accumulator storage; `index` maps a live key to its slot. Only
    /// task add/remove/re-bind touches the map — `charge` and `pick` use
    /// the index cached per task.
    usages: Vec<UsageSlot>,
    index: HashMap<UsageKey, u32>,
    quantum: Nanos,
    half_life: Nanos,
}

impl Default for DecayUsageScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl DecayUsageScheduler {
    /// Creates a scheduler with a 10 ms quantum and 500 ms usage
    /// half-life (typical UNIX time-sharing constants).
    pub fn new() -> Self {
        Self::with_params(Nanos::from_millis(10), Nanos::from_millis(500))
    }

    /// Creates a scheduler with explicit quantum and usage half-life.
    pub fn with_params(quantum: Nanos, half_life: Nanos) -> Self {
        DecayUsageScheduler {
            tasks: IdSlab::new(),
            usages: Vec::new(),
            index: HashMap::new(),
            quantum,
            half_life,
        }
    }

    fn key_for(task: TaskId, binding: &[ContainerId]) -> UsageKey {
        match binding.first() {
            Some(&c) => UsageKey::Principal(c),
            None => UsageKey::Bare(task),
        }
    }

    fn usage_of(&self, key: UsageKey, now: Nanos) -> f64 {
        self.index
            .get(&key)
            .map(|&i| self.usages[i as usize].decay.peek(now))
            .unwrap_or(0.0)
    }

    /// Returns the slot index for `key`, appending a fresh accumulator if
    /// the key has none.
    fn slot_for(&mut self, key: UsageKey, decay: UsageDecay) -> u32 {
        match self.index.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.usages.len() as u32;
                self.usages.push(UsageSlot { decay });
                self.index.insert(key, i);
                i
            }
        }
    }

    /// Returns the decayed usage charged against a task's principal, for
    /// tests and reports.
    pub fn task_usage(&self, task: TaskId, now: Nanos) -> Option<f64> {
        self.tasks
            .get(task)
            .map(|t| self.usages[t.usage as usize].decay.peek(now))
    }
}

impl CoreScheduler for DecayUsageScheduler {
    fn add_task(&mut self, task: TaskId, binding: &[ContainerId], now: Nanos) {
        let key = Self::key_for(task, binding);
        let usage = if !self.index.contains_key(&key) {
            // BSD semantics: a forked child inherits its parent's estimated
            // CPU usage (`p_estcpu`), so spawning fresh processes is not a
            // way to jump the scheduling queue. New principals start at
            // the mean decayed usage of the currently runnable ones.
            let runnable: Vec<f64> = self
                .tasks
                .values()
                .filter(|t| t.runnable)
                .map(|t| self.usage_of(t.key, now))
                .collect();
            let mut usage = UsageDecay::new(self.half_life);
            if !runnable.is_empty() {
                let mean = runnable.iter().sum::<f64>() / runnable.len() as f64;
                usage.charge(Nanos::from_nanos((mean * 1e9) as u64), now);
            }
            self.slot_for(key, usage)
        } else {
            self.index[&key]
        };
        self.tasks.insert(
            task,
            TaskState {
                runnable: false,
                key,
                usage,
                last_scheduled: now,
            },
        );
    }

    fn remove_task(&mut self, task: TaskId) {
        if let Some(t) = self.tasks.remove(task) {
            // Retire the accumulator only when no other task shares it.
            // The slot itself stays (dead) so cached indices never shift;
            // a later task re-using the key gets a fresh slot, exactly as
            // a map removal plus re-insert used to.
            let shared = self.tasks.values().any(|x| x.key == t.key);
            if !shared {
                self.index.remove(&t.key);
            }
        }
    }

    fn set_binding(&mut self, task: TaskId, binding: &[ContainerId], now: Nanos) {
        // The baseline scheduler does not understand container *sets*; it
        // only re-derives the task's principal.
        let key = Self::key_for(task, binding);
        let fresh = UsageDecay::new(self.half_life);
        if self.tasks.get(task).is_some_and(|t| t.key != key) {
            let usage = self.slot_for(key, fresh);
            if let Some(t) = self.tasks.get_mut(task) {
                t.key = key;
                t.usage = usage;
            }
            let _ = now;
        }
    }

    fn set_runnable(&mut self, task: TaskId, runnable: bool, now: Nanos) {
        if let Some(t) = self.tasks.get_mut(task) {
            if t.runnable != runnable {
                trace::emit_at(now, || TraceEventKind::ThreadState {
                    task: task.0,
                    runnable,
                });
            }
            t.runnable = runnable;
        }
    }

    fn is_runnable(&self, task: TaskId) -> bool {
        self.tasks.get(task).map(|t| t.runnable).unwrap_or(false)
    }

    fn pick(&mut self, _table: &ContainerTable, now: Nanos) -> Option<Pick> {
        // Fast path: with a single runnable task the minimum is that task
        // regardless of its decayed usage, so the `powf` behind
        // [`Self::usage_of`] (side-effect free) can be skipped entirely.
        // An event-driven server at moderate load spends most picks here.
        let mut runnable = 0usize;
        let mut only: Option<TaskId> = None;
        for (id, t) in self.tasks.iter() {
            if t.runnable {
                runnable += 1;
                only = Some(id);
                if runnable > 1 {
                    break;
                }
            }
        }
        let task = match (runnable, only) {
            (0, _) => return None,
            (1, Some(id)) => id,
            _ => {
                let mut best: Option<(f64, Nanos, TaskId)> = None;
                for (id, t) in self.tasks.iter() {
                    if !t.runnable {
                        continue;
                    }
                    let usage = self.usages[t.usage as usize].decay.peek(now);
                    let key = (usage, t.last_scheduled, id);
                    match best {
                        None => best = Some(key),
                        Some(b) if (key.0, key.1, key.2) < b => best = Some(key),
                        _ => {}
                    }
                }
                best.expect("at least two runnable tasks").2
            }
        };
        self.tasks
            .get_mut(task)
            .expect("picked task exists")
            .last_scheduled = now;
        trace::emit_at(now, || TraceEventKind::SchedPick {
            task: task.0,
            slice: self.quantum,
        });
        Some(Pick {
            task,
            slice: self.quantum,
        })
    }

    fn charge(
        &mut self,
        task: TaskId,
        _container: ContainerId,
        dt: Nanos,
        _table: &ContainerTable,
        now: Nanos,
    ) {
        if let Some(t) = self.tasks.get(task) {
            self.usages[t.usage as usize].decay.charge(dt, now);
        }
    }

    fn next_release_time(&mut self, _table: &ContainerTable, _now: Nanos) -> Option<Nanos> {
        None
    }

    fn name(&self) -> &'static str {
        "decay-usage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: u32) -> (ContainerTable, DecayUsageScheduler) {
        let table = ContainerTable::new();
        let mut s = DecayUsageScheduler::new();
        for i in 0..n {
            s.add_task(TaskId(i), &[], Nanos::ZERO);
            s.set_runnable(TaskId(i), true, Nanos::ZERO);
        }
        (table, s)
    }

    #[test]
    fn empty_pick_is_none() {
        let table = ContainerTable::new();
        let mut s = DecayUsageScheduler::new();
        assert!(s.pick(&table, Nanos::ZERO).is_none());
    }

    #[test]
    fn blocked_tasks_not_picked() {
        let (table, mut s) = setup(2);
        s.set_runnable(TaskId(0), false, Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(1));
        assert!(!s.is_runnable(TaskId(0)));
        assert!(s.is_runnable(TaskId(1)));
    }

    #[test]
    fn min_usage_wins() {
        let (table, mut s) = setup(2);
        let root = table.root();
        s.charge(TaskId(0), root, Nanos::from_millis(50), &table, Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(1));
    }

    #[test]
    fn equal_usage_round_robins_by_last_scheduled() {
        let (table, mut s) = setup(2);
        let first = s.pick(&table, Nanos::from_micros(1)).unwrap().task;
        // Without charging, the other task (older last_scheduled) goes next.
        let second = s.pick(&table, Nanos::from_micros(2)).unwrap().task;
        assert_ne!(first, second);
    }

    #[test]
    fn long_run_shares_equalize() {
        // Two always-runnable CPU hogs must converge to ~equal CPU.
        let (table, mut s) = setup(2);
        let root = table.root();
        let mut now = Nanos::ZERO;
        let mut cpu = [Nanos::ZERO; 2];
        for _ in 0..20_000 {
            let p = s.pick(&table, now).unwrap();
            let dt = p.slice.min(Nanos::from_millis(1));
            s.charge(p.task, root, dt, &table, now + dt);
            cpu[p.task.0 as usize] += dt;
            now += dt;
        }
        let ratio = cpu[0].ratio(cpu[0] + cpu[1]);
        assert!((ratio - 0.5).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn light_user_vs_hog_gets_priority_on_wake() {
        // A task that uses 1% duty cycle must be picked immediately when it
        // wakes even though a hog is runnable.
        let (table, mut s) = setup(2);
        let root = table.root();
        let mut now = Nanos::ZERO;
        // Hog accumulates usage.
        for _ in 0..100 {
            s.charge(TaskId(0), root, Nanos::from_millis(1), &table, now);
            now += Nanos::from_millis(1);
        }
        // Light task wakes.
        s.set_runnable(TaskId(1), true, now);
        assert_eq!(s.pick(&table, now).unwrap().task, TaskId(1));
    }

    #[test]
    fn remove_task_forgets_it() {
        let (table, mut s) = setup(1);
        s.remove_task(TaskId(0));
        assert!(s.pick(&table, Nanos::ZERO).is_none());
        assert!(!s.is_runnable(TaskId(0)));
    }

    #[test]
    fn threads_of_one_principal_share_usage() {
        // Two tasks bound to the same container (a process's app thread
        // and its kernel network thread) must be charged as one principal,
        // competing as one unit against an independent hog.
        let mut table = ContainerTable::new();
        let proc_a = table
            .create(None, rescon::Attributes::time_shared(10))
            .unwrap();
        let proc_b = table
            .create(None, rescon::Attributes::time_shared(10))
            .unwrap();
        let mut s = DecayUsageScheduler::new();
        s.add_task(TaskId(1), &[proc_a], Nanos::ZERO); // A's app thread
        s.add_task(TaskId(2), &[proc_a], Nanos::ZERO); // A's kthread
        s.add_task(TaskId(3), &[proc_b], Nanos::ZERO); // B
        for t in 1..=3 {
            s.set_runnable(TaskId(t), true, Nanos::ZERO);
        }
        let mut now = Nanos::ZERO;
        let mut a_cpu = Nanos::ZERO;
        let mut total = Nanos::ZERO;
        for _ in 0..20_000 {
            let p = s.pick(&table, now).unwrap();
            let dt = Nanos::from_millis(1);
            let c = if p.task == TaskId(3) { proc_b } else { proc_a };
            s.charge(p.task, c, dt, &table, now + dt);
            if p.task != TaskId(3) {
                a_cpu += dt;
            }
            total += dt;
            now += dt;
        }
        // Process A (two tasks) and process B (one task) split ~50/50.
        let share = a_cpu.ratio(total);
        assert!((share - 0.5).abs() < 0.05, "A share = {share}");
    }

    #[test]
    fn fresh_principal_inherits_mean_usage() {
        let (table, mut s) = setup(2);
        let root = table.root();
        let mut now = Nanos::ZERO;
        for _ in 0..100 {
            s.charge(TaskId(0), root, Nanos::from_millis(2), &table, now);
            s.charge(TaskId(1), root, Nanos::from_millis(2), &table, now);
            now += Nanos::from_millis(4);
        }
        // A newcomer must NOT undercut the incumbents.
        s.add_task(TaskId(9), &[], now);
        s.set_runnable(TaskId(9), true, now);
        let incumbent = s.task_usage(TaskId(0), now).unwrap();
        let newcomer = s.task_usage(TaskId(9), now).unwrap();
        assert!(
            newcomer > incumbent * 0.5,
            "newcomer {newcomer} vs incumbent {incumbent}"
        );
    }
}
