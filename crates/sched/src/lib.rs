//! CPU schedulers that treat resource containers as their resource
//! principals (paper §4.3, §5.1).
//!
//! Four scheduling policies are provided behind one [`CoreScheduler`]
//! trait, each managing a single CPU's run queue:
//!
//! - [`DecayUsageScheduler`]: a classic 4.3BSD-style decay-usage
//!   time-sharing scheduler whose principals are *tasks* (threads/
//!   processes). This models the **unmodified** Digital UNIX scheduler used
//!   as the paper's baseline: it knows nothing about containers.
//! - [`MultiLevelScheduler`]: the paper's prototype scheduler (§5.1). The
//!   container hierarchy is interpreted directly: fixed-share containers
//!   receive guaranteed CPU fractions (enforced by stride scheduling with
//!   idle-credit revocation), time-shared siblings share the remainder at
//!   strict numeric priority levels with decay-usage fairness within a
//!   level, priority 0 is starvable, and per-container CPU *limits* are
//!   enforced with token buckets (the "resource sandbox" of §5.6).
//! - [`StrideScheduler`] and [`LotteryScheduler`]: flat proportional-share
//!   schedulers (Waldspurger & Weihl) used as ablations; they demonstrate
//!   that the container abstraction composes with other scheduling
//!   policies (§4.4: "resource containers are just a mechanism").
//! - [`EdfScheduler`]: earliest-deadline-first over per-container latency
//!   targets ([`rescon::Attributes::with_deadline`]); work bound to a
//!   container with a tight declared target preempts best-effort work the
//!   moment it wakes.
//!
//! The kernel drives schedulers through the SMP-aware [`Scheduler`]
//! trait: register tasks on a CPU with their scheduler bindings, flip
//! runnability, ask [`Scheduler::pick`] what a given CPU should run and
//! for how long, report consumed CPU via [`Scheduler::charge`], and
//! migrate tasks between CPUs. [`PerCpu`] lifts any `CoreScheduler`
//! policy into that surface by instantiating one core per simulated CPU.
//! All container bookkeeping (usage, hierarchy) lives in
//! [`rescon::ContainerTable`]; schedulers keep only policy state.

pub mod api;
pub mod bucket;
pub mod decay;
pub mod edf;
pub mod lottery;
pub mod multilevel;
pub mod smp;
pub mod stride;
pub mod usage_decay;

pub use api::{CoreScheduler, CpuId, Pick, Scheduler, TaskId, TaskSnapshot};
pub use bucket::TokenBucket;
pub use decay::DecayUsageScheduler;
pub use edf::EdfScheduler;
pub use lottery::LotteryScheduler;
pub use multilevel::MultiLevelScheduler;
pub use smp::PerCpu;
pub use stride::StrideScheduler;
pub use usage_decay::UsageDecay;
