//! [`PerCpu`]: lifts any single-CPU [`CoreScheduler`] policy into the
//! SMP-aware [`Scheduler`] surface the kernel drives.
//!
//! One policy instance ("core") is created per simulated CPU; each core
//! owns its run queue and never learns about the others. `PerCpu` keeps
//! the task → home-CPU map plus a cache of each task's binding and
//! runnable flag so a migration can unregister the task from its old
//! core and re-register it — binding and runnable state intact — on the
//! new one. With one CPU the wrapper is a pure pass-through: the call
//! sequence a core observes is identical to what the policy saw before
//! the SMP refactor, which is what keeps single-CPU runs byte-identical.

use rescon::{ContainerId, ContainerTable};
use simcore::slab::IdSlab;
use simcore::Nanos;

use crate::api::{CoreScheduler, CpuId, Pick, Scheduler, TaskId, TaskSnapshot};

struct TaskMeta {
    cpu: u32,
    binding: Vec<ContainerId>,
    runnable: bool,
}

/// An SMP scheduler built from one [`CoreScheduler`] instance per CPU.
pub struct PerCpu<P: CoreScheduler> {
    cores: Vec<P>,
    tasks: IdSlab<TaskId, TaskMeta>,
}

impl<P: CoreScheduler> PerCpu<P> {
    /// Builds the wrapper from pre-constructed cores, one per CPU.
    /// Panics if `cores` is empty.
    pub fn new(cores: Vec<P>) -> Self {
        assert!(!cores.is_empty(), "PerCpu requires at least one core");
        Self {
            cores,
            tasks: IdSlab::new(),
        }
    }

    fn core_of(&self, task: TaskId) -> Option<u32> {
        self.tasks.get(task).map(|m| m.cpu)
    }
}

impl<P: CoreScheduler> Scheduler for PerCpu<P> {
    fn add_task(&mut self, task: TaskId, binding: &[ContainerId], cpu: CpuId, now: Nanos) {
        let cpu = cpu.0.min(self.cores.len() as u32 - 1);
        self.tasks.insert(
            task,
            TaskMeta {
                cpu,
                binding: binding.to_vec(),
                runnable: false,
            },
        );
        self.cores[cpu as usize].add_task(task, binding, now);
    }

    fn remove_task(&mut self, task: TaskId) {
        if let Some(meta) = self.tasks.remove(task) {
            self.cores[meta.cpu as usize].remove_task(task);
        }
    }

    fn set_binding(&mut self, task: TaskId, binding: &[ContainerId], now: Nanos) {
        if let Some(meta) = self.tasks.get_mut(task) {
            meta.binding.clear();
            meta.binding.extend_from_slice(binding);
            self.cores[meta.cpu as usize].set_binding(task, binding, now);
        }
    }

    fn set_runnable(&mut self, task: TaskId, runnable: bool, now: Nanos) {
        if let Some(meta) = self.tasks.get_mut(task) {
            meta.runnable = runnable;
            self.cores[meta.cpu as usize].set_runnable(task, runnable, now);
        }
    }

    fn is_runnable(&self, task: TaskId) -> bool {
        match self.core_of(task) {
            Some(cpu) => self.cores[cpu as usize].is_runnable(task),
            None => false,
        }
    }

    fn cpu_of(&self, task: TaskId) -> Option<CpuId> {
        self.core_of(task).map(CpuId)
    }

    fn migrate(&mut self, task: TaskId, to: CpuId, now: Nanos) -> bool {
        if to.0 as usize >= self.cores.len() {
            return false;
        }
        let Some(meta) = self.tasks.get_mut(task) else {
            return false;
        };
        if meta.cpu == to.0 {
            return false;
        }
        let from = meta.cpu;
        meta.cpu = to.0;
        let binding = meta.binding.clone();
        let runnable = meta.runnable;
        self.cores[from as usize].remove_task(task);
        self.cores[to.0 as usize].add_task(task, &binding, now);
        if runnable {
            self.cores[to.0 as usize].set_runnable(task, true, now);
        }
        true
    }

    fn pick(&mut self, cpu: CpuId, table: &ContainerTable, now: Nanos) -> Option<Pick> {
        self.cores[cpu.0 as usize].pick(table, now)
    }

    fn charge(
        &mut self,
        task: TaskId,
        container: ContainerId,
        dt: Nanos,
        table: &ContainerTable,
        now: Nanos,
    ) {
        if let Some(cpu) = self.core_of(task) {
            self.cores[cpu as usize].charge(task, container, dt, table, now);
        }
    }

    fn next_release_time(
        &mut self,
        cpu: CpuId,
        table: &ContainerTable,
        now: Nanos,
    ) -> Option<Nanos> {
        self.cores[cpu.0 as usize].next_release_time(table, now)
    }

    fn ncpus(&self) -> u32 {
        self.cores.len() as u32
    }

    fn name(&self) -> &'static str {
        self.cores[0].name()
    }

    fn export_tasks(&self) -> Vec<TaskSnapshot> {
        // The task-meta cache holds exactly the policy-neutral state;
        // sorting by task id makes the replay order deterministic
        // regardless of HashMap iteration order.
        let mut out: Vec<TaskSnapshot> = self
            .tasks
            .iter()
            .map(|(task, meta)| TaskSnapshot {
                task,
                cpu: CpuId(meta.cpu),
                binding: meta.binding.clone(),
                runnable: meta.runnable,
            })
            .collect();
        out.sort_by_key(|t| t.task);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrideScheduler;
    use rescon::{Attributes, ContainerTable};

    fn two_cpu() -> (PerCpu<StrideScheduler>, ContainerTable, ContainerId) {
        let mut table = ContainerTable::new();
        let c = table
            .create(Some(table.root()), Attributes::time_shared(10))
            .unwrap();
        let pc = PerCpu::new(vec![StrideScheduler::new(), StrideScheduler::new()]);
        (pc, table, c)
    }

    #[test]
    fn tasks_stay_on_their_home_cpu() {
        let (mut pc, table, c) = two_cpu();
        pc.add_task(TaskId(1), &[c], CpuId(0), Nanos::ZERO);
        pc.add_task(TaskId(2), &[c], CpuId(1), Nanos::ZERO);
        pc.set_runnable(TaskId(1), true, Nanos::ZERO);
        pc.set_runnable(TaskId(2), true, Nanos::ZERO);
        assert_eq!(pc.cpu_of(TaskId(1)), Some(CpuId(0)));
        assert_eq!(pc.cpu_of(TaskId(2)), Some(CpuId(1)));
        let p0 = pc.pick(CpuId(0), &table, Nanos::ZERO).unwrap();
        let p1 = pc.pick(CpuId(1), &table, Nanos::ZERO).unwrap();
        assert_eq!(p0.task, TaskId(1));
        assert_eq!(p1.task, TaskId(2));
    }

    #[test]
    fn migrate_preserves_binding_and_runnable_state() {
        let (mut pc, table, c) = two_cpu();
        pc.add_task(TaskId(1), &[c], CpuId(0), Nanos::ZERO);
        pc.set_runnable(TaskId(1), true, Nanos::ZERO);
        assert!(pc.migrate(TaskId(1), CpuId(1), Nanos::ZERO));
        assert_eq!(pc.cpu_of(TaskId(1)), Some(CpuId(1)));
        assert!(pc.is_runnable(TaskId(1)));
        assert!(pc.pick(CpuId(0), &table, Nanos::ZERO).is_none());
        let p = pc.pick(CpuId(1), &table, Nanos::ZERO).unwrap();
        assert_eq!(p.task, TaskId(1));
    }

    #[test]
    fn migrate_rejects_unknown_noop_and_out_of_range() {
        let (mut pc, _table, c) = two_cpu();
        pc.add_task(TaskId(1), &[c], CpuId(0), Nanos::ZERO);
        assert!(!pc.migrate(TaskId(9), CpuId(1), Nanos::ZERO));
        assert!(!pc.migrate(TaskId(1), CpuId(0), Nanos::ZERO));
        assert!(!pc.migrate(TaskId(1), CpuId(7), Nanos::ZERO));
        assert_eq!(pc.cpu_of(TaskId(1)), Some(CpuId(0)));
    }

    #[test]
    fn ncpus_and_name_reflect_cores() {
        let (pc, _, _) = two_cpu();
        assert_eq!(pc.ncpus(), 2);
        assert_eq!(pc.name(), "stride");
    }
}
