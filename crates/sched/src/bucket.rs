//! Token buckets used to enforce per-container CPU limits (paper §5.6:
//! "This CGI-parent container was restricted to a maximum fraction of the
//! CPU ... Figure 13 shows that the CPU limits are enforced almost
//! exactly").

use simcore::Nanos;

/// A token bucket metering CPU time.
///
/// Tokens are nanoseconds of CPU; they refill continuously at
/// `fraction` ns per elapsed ns, capped at `fraction × window`. Consumption
/// may drive the level negative (a task cannot be preempted mid-slice at
/// nanosecond granularity); a negative level simply delays eligibility
/// until refill catches up, so long-run consumption converges to the
/// configured fraction.
///
/// # Examples
///
/// ```
/// use sched::TokenBucket;
/// use simcore::Nanos;
///
/// // 30% of the CPU over a 100 ms window.
/// let mut b = TokenBucket::new(0.3, Nanos::from_millis(100));
/// assert!(b.eligible(Nanos::ZERO));
/// b.consume(Nanos::from_millis(40), Nanos::ZERO);
/// assert!(!b.eligible(Nanos::ZERO)); // 30 ms capacity - 40 ms = -10 ms
/// // After enough wall time the refill restores eligibility.
/// assert!(b.eligible(Nanos::from_millis(40)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    /// Allowed CPU fraction in `(0, 1]`.
    fraction: f64,
    /// Current level in nanoseconds (may be negative).
    level: f64,
    /// Maximum level.
    capacity: f64,
    /// Last refill time.
    last: Nanos,
}

impl TokenBucket {
    /// Creates a full bucket enforcing `fraction` of the CPU over `window`.
    pub fn new(fraction: f64, window: Nanos) -> Self {
        let fraction = fraction.clamp(1e-6, 1.0);
        let capacity = fraction * window.as_nanos() as f64;
        TokenBucket {
            fraction,
            level: capacity,
            capacity,
            last: Nanos::ZERO,
        }
    }

    fn refill(&mut self, now: Nanos) {
        if now <= self.last {
            return;
        }
        let dt = (now - self.last).as_nanos() as f64;
        self.level = (self.level + dt * self.fraction).min(self.capacity);
        self.last = now;
    }

    /// Consumes `dt` of CPU ending at `now`.
    pub fn consume(&mut self, dt: Nanos, now: Nanos) {
        self.refill(now);
        self.level -= dt.as_nanos() as f64;
    }

    /// Returns `true` if the principal may run at `now` (level positive).
    pub fn eligible(&mut self, now: Nanos) -> bool {
        self.refill(now);
        self.level > 0.0
    }

    /// Returns the current level in nanoseconds (possibly negative).
    pub fn level(&mut self, now: Nanos) -> f64 {
        self.refill(now);
        self.level
    }

    /// Returns the earliest time at which the bucket becomes eligible.
    pub fn release_time(&mut self, now: Nanos) -> Nanos {
        self.refill(now);
        if self.level > 0.0 {
            return now;
        }
        let deficit_ns = -self.level;
        let wait = deficit_ns / self.fraction;
        now + Nanos::from_nanos(wait.ceil() as u64 + 1)
    }

    /// Returns the configured fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_eligible() {
        let mut b = TokenBucket::new(0.5, Nanos::from_millis(10));
        assert!(b.eligible(Nanos::ZERO));
        assert!((b.level(Nanos::ZERO) - 5e6).abs() < 1.0);
    }

    #[test]
    fn consume_past_zero_throttles() {
        let mut b = TokenBucket::new(0.1, Nanos::from_millis(100));
        b.consume(Nanos::from_millis(20), Nanos::ZERO); // capacity 10 ms
        assert!(!b.eligible(Nanos::ZERO));
        assert!(b.level(Nanos::ZERO) < 0.0);
    }

    #[test]
    fn refill_rate_matches_fraction() {
        let mut b = TokenBucket::new(0.25, Nanos::from_millis(100));
        b.consume(Nanos::from_millis(50), Nanos::ZERO); // level = 25ms-50ms = -25 ms
        let release = b.release_time(Nanos::ZERO);
        // Deficit 25 ms at 0.25/s refill -> 100 ms.
        let expected = Nanos::from_millis(100);
        let diff = release
            .saturating_sub(expected)
            .max(expected.saturating_sub(release));
        assert!(diff < Nanos::from_micros(10), "release = {release}");
        assert!(b.eligible(release));
    }

    #[test]
    fn level_caps_at_capacity() {
        let mut b = TokenBucket::new(0.3, Nanos::from_millis(10));
        let cap = b.level(Nanos::ZERO);
        assert!((b.level(Nanos::from_secs(10)) - cap).abs() < 1.0);
    }

    #[test]
    fn long_run_rate_converges_to_fraction() {
        let mut b = TokenBucket::new(0.3, Nanos::from_millis(50));
        let mut consumed = Nanos::ZERO;
        let mut now = Nanos::ZERO;
        let step = Nanos::from_micros(500);
        // Greedy consumer: consume whenever eligible.
        for _ in 0..200_000 {
            if b.eligible(now) {
                b.consume(step, now);
                consumed += step;
            }
            now += step;
        }
        let rate = consumed.ratio(now);
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn release_time_when_eligible_is_now() {
        let mut b = TokenBucket::new(0.5, Nanos::from_millis(10));
        assert_eq!(b.release_time(Nanos::from_millis(3)), Nanos::from_millis(3));
    }

    #[test]
    fn extreme_fractions_clamped() {
        let mut b = TokenBucket::new(0.0, Nanos::from_millis(10));
        assert!(b.fraction() > 0.0);
        let mut c = TokenBucket::new(5.0, Nanos::from_millis(10));
        assert_eq!(c.fraction(), 1.0);
        assert!(b.eligible(Nanos::ZERO) || !b.eligible(Nanos::ZERO)); // no NaN panic
        assert!(c.eligible(Nanos::ZERO));
    }
}
