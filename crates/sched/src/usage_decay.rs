//! Exponentially decayed CPU-usage estimator.
//!
//! Both the baseline decay-usage scheduler and the multi-level scheduler
//! use this estimator: recent CPU consumption counts fully, older
//! consumption decays with a configurable half-life. A feedback scheduler
//! that picks the minimum decayed usage equalizes the long-run charged CPU
//! rates of continuously runnable competitors — which is exactly the
//! behaviour the paper's Figure 12/13 baseline depends on.

use simcore::Nanos;

/// A decayed CPU-usage accumulator.
///
/// The value is held in seconds of CPU and decays by half every
/// `half_life`. Decay is applied lazily on access, so updates are O(1).
///
/// # Examples
///
/// ```
/// use sched::UsageDecay;
/// use simcore::Nanos;
///
/// let mut u = UsageDecay::new(Nanos::from_secs(1));
/// u.charge(Nanos::from_millis(100), Nanos::ZERO);
/// // One half-life later, the sample has halved.
/// let v = u.value(Nanos::from_secs(1));
/// assert!((v - 0.05).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct UsageDecay {
    value: f64,
    last: Nanos,
    half_life: Nanos,
    // One-entry memo for `0.5^halves`: charge intervals repeat heavily in
    // steady state (periodic quanta, per-request event cycles), and a
    // repeated exponent must produce the identical factor anyway, so the
    // memo saves the `powf` without any change in results.
    memo_halves: f64,
    memo_factor: f64,
}

impl UsageDecay {
    /// Creates an estimator with the given half-life.
    pub fn new(half_life: Nanos) -> Self {
        UsageDecay {
            value: 0.0,
            last: Nanos::ZERO,
            half_life: if half_life.is_zero() {
                Nanos::from_millis(1)
            } else {
                half_life
            },
            memo_halves: f64::NAN,
            memo_factor: 1.0,
        }
    }

    #[inline]
    fn factor(&mut self, halves: f64) -> f64 {
        if halves == self.memo_halves {
            return self.memo_factor;
        }
        let f = 0.5f64.powf(halves);
        self.memo_halves = halves;
        self.memo_factor = f;
        f
    }

    fn decay_to(&mut self, now: Nanos) {
        if now <= self.last {
            return;
        }
        let dt = now - self.last;
        let halves = dt.as_secs_f64() / self.half_life.as_secs_f64();
        self.value *= self.factor(halves);
        self.last = now;
    }

    /// Adds `dt` of CPU consumed ending at time `now`.
    pub fn charge(&mut self, dt: Nanos, now: Nanos) {
        self.decay_to(now);
        self.value += dt.as_secs_f64();
    }

    /// Returns the decayed usage (in seconds) as of `now`.
    pub fn value(&mut self, now: Nanos) -> f64 {
        self.decay_to(now);
        self.value
    }

    /// Returns the decayed usage without updating the decay timestamp.
    pub fn peek(&self, now: Nanos) -> f64 {
        if now <= self.last {
            return self.value;
        }
        let dt = now - self.last;
        let halves = dt.as_secs_f64() / self.half_life.as_secs_f64();
        let factor = if halves == self.memo_halves {
            self.memo_factor
        } else {
            0.5f64.powf(halves)
        };
        self.value * factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut u = UsageDecay::new(Nanos::from_secs(1));
        u.charge(Nanos::from_millis(10), Nanos::ZERO);
        u.charge(Nanos::from_millis(10), Nanos::ZERO);
        assert!((u.value(Nanos::ZERO) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn decays_by_half_life() {
        let mut u = UsageDecay::new(Nanos::from_millis(500));
        u.charge(Nanos::from_millis(100), Nanos::ZERO);
        let v = u.value(Nanos::from_millis(1500)); // 3 half-lives
        assert!((v - 0.1 / 8.0).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut u = UsageDecay::new(Nanos::from_secs(1));
        u.charge(Nanos::from_millis(100), Nanos::ZERO);
        let p1 = u.peek(Nanos::from_secs(1));
        let p2 = u.peek(Nanos::from_secs(1));
        assert_eq!(p1, p2);
        assert!((u.value(Nanos::from_secs(1)) - p1).abs() < 1e-12);
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let mut u = UsageDecay::new(Nanos::from_secs(1));
        u.charge(Nanos::from_millis(10), Nanos::from_secs(5));
        let v_before = u.peek(Nanos::from_secs(5));
        assert_eq!(u.peek(Nanos::from_secs(4)), v_before);
    }

    #[test]
    fn zero_half_life_clamped() {
        let mut u = UsageDecay::new(Nanos::ZERO);
        u.charge(Nanos::from_millis(1), Nanos::ZERO);
        // Must not divide by zero or produce NaN.
        assert!(u.value(Nanos::from_secs(1)).is_finite());
    }
}
