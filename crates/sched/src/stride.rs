//! A flat stride scheduler (Waldspurger '95) over tasks, used as an
//! ablation against the multi-level scheduler.
//!
//! Each task receives tickets equal to the sum of `priority + 1` over its
//! scheduler binding (fixed-share containers contribute
//! `share × 100` tickets). Stride scheduling then allocates CPU
//! proportionally to tickets with deterministic O(log n)-style behaviour —
//! here O(n) per pick, which is fine at simulation scale.

use std::collections::HashMap;

use rescon::{ContainerId, ContainerTable, SchedPolicy};
use simcore::trace::{self, TraceEventKind};
use simcore::Nanos;

use crate::api::{CoreScheduler, Pick, TaskId};

#[derive(Debug)]
struct StrideTask {
    binding: Vec<ContainerId>,
    runnable: bool,
    /// Virtual pass value; lowest runs next.
    pass: f64,
}

/// A flat proportional-share stride scheduler over tasks.
///
/// # Examples
///
/// ```
/// use rescon::{Attributes, ContainerTable};
/// use sched::{CoreScheduler, StrideScheduler, TaskId};
/// use simcore::Nanos;
///
/// let mut table = ContainerTable::new();
/// let c = table.create(None, Attributes::time_shared(9)).unwrap();
/// let mut s = StrideScheduler::new();
/// s.add_task(TaskId(1), &[c], Nanos::ZERO);
/// s.set_runnable(TaskId(1), true, Nanos::ZERO);
/// assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(1));
/// ```
pub struct StrideScheduler {
    tasks: HashMap<TaskId, StrideTask>,
    quantum: Nanos,
    /// Global virtual time: max pass ever charged; wakers join here.
    vtime: f64,
}

impl Default for StrideScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl StrideScheduler {
    /// Creates a stride scheduler with a 1 ms quantum.
    pub fn new() -> Self {
        Self::with_quantum(Nanos::from_millis(1))
    }

    /// Creates a stride scheduler with an explicit quantum.
    pub fn with_quantum(quantum: Nanos) -> Self {
        StrideScheduler {
            tasks: HashMap::new(),
            quantum,
            vtime: 0.0,
        }
    }

    /// Tickets for a binding: priorities + 1, or `share × 100` for
    /// fixed-share containers; at least 1.
    pub fn tickets(table: &ContainerTable, binding: &[ContainerId]) -> f64 {
        let mut t = 0.0;
        for &c in binding {
            match table.policy(c) {
                Ok(SchedPolicy::TimeShared { priority }) => t += (priority + 1) as f64,
                Ok(SchedPolicy::FixedShare { share }) => t += share * 100.0,
                Err(_) => {}
            }
        }
        t.max(1.0)
    }
}

impl CoreScheduler for StrideScheduler {
    fn add_task(&mut self, task: TaskId, binding: &[ContainerId], _now: Nanos) {
        self.tasks.insert(
            task,
            StrideTask {
                binding: binding.to_vec(),
                runnable: false,
                pass: self.vtime,
            },
        );
    }

    fn remove_task(&mut self, task: TaskId) {
        self.tasks.remove(&task);
    }

    fn set_binding(&mut self, task: TaskId, binding: &[ContainerId], _now: Nanos) {
        if let Some(t) = self.tasks.get_mut(&task) {
            t.binding = binding.to_vec();
        }
    }

    fn set_runnable(&mut self, task: TaskId, runnable: bool, now: Nanos) {
        let vt = self.vtime;
        if let Some(t) = self.tasks.get_mut(&task) {
            if runnable && !t.runnable {
                // Idle-credit revocation: a waking task joins at the
                // current virtual time rather than cashing in idle time.
                t.pass = t.pass.max(vt);
            }
            if t.runnable != runnable {
                trace::emit_at(now, || TraceEventKind::ThreadState {
                    task: task.0,
                    runnable,
                });
            }
            t.runnable = runnable;
        }
    }

    fn is_runnable(&self, task: TaskId) -> bool {
        self.tasks.get(&task).map(|t| t.runnable).unwrap_or(false)
    }

    fn pick(&mut self, _table: &ContainerTable, now: Nanos) -> Option<Pick> {
        let mut best: Option<(f64, TaskId)> = None;
        for (&id, t) in &self.tasks {
            if !t.runnable {
                continue;
            }
            let better = match best {
                None => true,
                Some((bp, bt)) => t.pass < bp || (t.pass == bp && id < bt),
            };
            if better {
                best = Some((t.pass, id));
            }
        }
        let (_, task) = best?;
        trace::emit_at(now, || TraceEventKind::SchedPick {
            task: task.0,
            slice: self.quantum,
        });
        Some(Pick {
            task,
            slice: self.quantum,
        })
    }

    fn charge(
        &mut self,
        task: TaskId,
        _container: ContainerId,
        dt: Nanos,
        table: &ContainerTable,
        _now: Nanos,
    ) {
        let Some(t) = self.tasks.get(&task) else {
            return;
        };
        let tickets = Self::tickets(table, &t.binding);
        let t = self.tasks.get_mut(&task).expect("task exists");
        t.pass += dt.as_secs_f64() / tickets;
        if t.pass > self.vtime {
            self.vtime = t.pass;
        }
    }

    fn next_release_time(&mut self, _table: &ContainerTable, _now: Nanos) -> Option<Nanos> {
        None
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescon::Attributes;

    #[test]
    fn proportional_to_tickets() {
        let mut table = ContainerTable::new();
        let c3 = table.create(None, Attributes::time_shared(2)).unwrap(); // 3 tickets
        let c1 = table.create(None, Attributes::time_shared(0)).unwrap(); // 1 ticket
        let mut s = StrideScheduler::new();
        s.add_task(TaskId(1), &[c3], Nanos::ZERO);
        s.add_task(TaskId(2), &[c1], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        let mut cpu = [Nanos::ZERO; 3];
        let mut now = Nanos::ZERO;
        for _ in 0..4000 {
            let p = s.pick(&table, now).unwrap();
            s.charge(p.task, c3, p.slice, &table, now);
            cpu[p.task.0 as usize] += p.slice;
            now += p.slice;
        }
        let r = cpu[1].ratio(cpu[1] + cpu[2]);
        assert!((r - 0.75).abs() < 0.01, "r = {r}");
    }

    #[test]
    fn waker_joins_at_current_vtime() {
        let mut table = ContainerTable::new();
        let c = table.create(None, Attributes::time_shared(1)).unwrap();
        let mut s = StrideScheduler::new();
        s.add_task(TaskId(1), &[c], Nanos::ZERO);
        s.add_task(TaskId(2), &[c], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        // Task 1 runs alone for a while.
        for _ in 0..100 {
            let p = s.pick(&table, Nanos::ZERO).unwrap();
            s.charge(p.task, c, p.slice, &table, Nanos::ZERO);
        }
        // Task 2 wakes; it must not monopolize to "catch up".
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        let mut t2_run = 0;
        for _ in 0..100 {
            let p = s.pick(&table, Nanos::ZERO).unwrap();
            s.charge(p.task, c, p.slice, &table, Nanos::ZERO);
            if p.task == TaskId(2) {
                t2_run += 1;
            }
        }
        assert!((40..=60).contains(&t2_run), "t2_run = {t2_run}");
    }

    #[test]
    fn tickets_floor_is_one() {
        let table = ContainerTable::new();
        assert_eq!(StrideScheduler::tickets(&table, &[]), 1.0);
    }

    #[test]
    fn fixed_share_binding_weighs_by_share() {
        let mut table = ContainerTable::new();
        let f = table.create(None, Attributes::fixed_share(0.5)).unwrap();
        assert_eq!(StrideScheduler::tickets(&table, &[f]), 50.0);
    }

    #[test]
    fn empty_pick_none() {
        let table = ContainerTable::new();
        let mut s = StrideScheduler::new();
        assert!(s.pick(&table, Nanos::ZERO).is_none());
    }
}
