//! The scheduler protocol: how the kernel talks to a CPU scheduler.

use rescon::{ContainerId, ContainerTable};
use simcore::Nanos;

/// Identifier of a schedulable task (a thread in the simulated kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The outcome of a scheduling decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pick {
    /// The task to run next.
    pub task: TaskId,
    /// Maximum uninterrupted slice before the kernel must call
    /// [`Scheduler::pick`] again (the quantum).
    pub slice: Nanos,
}

/// A CPU scheduler whose resource principals are containers.
///
/// The kernel:
///
/// 1. registers each thread with [`Scheduler::add_task`], giving its
///    scheduler binding (the containers it serves, paper §4.3);
/// 2. keeps the binding current via [`Scheduler::set_binding`] as the
///    thread's resource binding moves between containers;
/// 3. flips [`Scheduler::set_runnable`] as the thread blocks and wakes;
/// 4. calls [`Scheduler::pick`] whenever the CPU is free or an event may
///    have changed the best choice, runs the picked task for at most
///    `slice`, and then
/// 5. reports the CPU actually consumed — and which container it was
///    charged to — via [`Scheduler::charge`].
///
/// Implementations must be deterministic given the same call sequence.
pub trait Scheduler {
    /// Registers a task with its initial scheduler binding. The task starts
    /// not runnable.
    fn add_task(&mut self, task: TaskId, binding: &[ContainerId], now: Nanos);

    /// Unregisters a task (thread exit).
    fn remove_task(&mut self, task: TaskId);

    /// Replaces the task's scheduler binding (paper §4.3: the set of
    /// containers a multiplexed thread currently serves).
    fn set_binding(&mut self, task: TaskId, binding: &[ContainerId], now: Nanos);

    /// Marks the task runnable or blocked.
    fn set_runnable(&mut self, task: TaskId, runnable: bool, now: Nanos);

    /// Returns `true` if the task is currently marked runnable.
    fn is_runnable(&self, task: TaskId) -> bool;

    /// Chooses the next task to run, or `None` if no runnable task may run
    /// now (all blocked, or all throttled by CPU limits).
    fn pick(&mut self, table: &ContainerTable, now: Nanos) -> Option<Pick>;

    /// Accounts `dt` of CPU consumed by `task` while resource-bound to
    /// `container`. The kernel has already charged the container table;
    /// this call updates policy state (decayed usage, stride passes,
    /// limit buckets).
    fn charge(
        &mut self,
        task: TaskId,
        container: ContainerId,
        dt: Nanos,
        table: &ContainerTable,
        now: Nanos,
    );

    /// If every runnable task is throttled by a CPU limit, returns the
    /// earliest time at which one becomes eligible again; otherwise `None`.
    fn next_release_time(&mut self, table: &ContainerTable, now: Nanos) -> Option<Nanos>;

    /// A short policy name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(7).to_string(), "t7");
    }

    #[test]
    fn task_id_ordering() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(TaskId(3), TaskId(3));
    }
}
