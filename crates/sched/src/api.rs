//! The scheduler protocol: how the kernel talks to a CPU scheduler.
//!
//! Two layers:
//!
//! - [`CoreScheduler`] is the per-CPU policy protocol. Every policy in
//!   this crate (stride, decay, lottery, multilevel) implements it and
//!   manages exactly one run queue; policies are entirely unaware of
//!   multiprocessing.
//! - [`Scheduler`] is the SMP-aware surface the kernel drives. It routes
//!   every call to the right per-CPU core and supports migrating tasks
//!   between cores. [`PerCpu`] lifts any `CoreScheduler` into a
//!   `Scheduler` by instantiating one core per CPU.

use rescon::{ContainerId, ContainerTable};
use simcore::Nanos;

/// Identifier of a schedulable task (a thread in the simulated kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl simcore::slab::SlabKey for TaskId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        TaskId(i as u32)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a simulated CPU, dense from zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(pub u32);

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// The outcome of a scheduling decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pick {
    /// The task to run next.
    pub task: TaskId,
    /// Maximum uninterrupted slice before the kernel must call
    /// [`Scheduler::pick`] again (the quantum).
    pub slice: Nanos,
}

/// The policy-neutral state of one registered task: everything the kernel
/// told the scheduler, nothing the policy invented.
///
/// A mid-run policy swap exports one snapshot per task from the detaching
/// scheduler and replays them into the freshly built replacement
/// ([`Scheduler::export_tasks`] / [`Scheduler::import_tasks`]). Policy
/// ledgers — decayed usage, stride passes, limit buckets — deliberately do
/// *not* cross the swap: the new policy starts every principal at its own
/// notion of "just joined", which is the repo-wide sleeper-rejoin rule
/// (no banked credit) applied to the whole machine at once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSnapshot {
    /// The registered task.
    pub task: TaskId,
    /// Its home CPU.
    pub cpu: CpuId,
    /// Its current scheduler binding (paper §4.3).
    pub binding: Vec<ContainerId>,
    /// Whether it was runnable at export time.
    pub runnable: bool,
}

/// A single-CPU scheduling policy whose resource principals are
/// containers.
///
/// The kernel (through the [`Scheduler`] layer):
///
/// 1. registers each thread with [`CoreScheduler::add_task`], giving its
///    scheduler binding (the containers it serves, paper §4.3);
/// 2. keeps the binding current via [`CoreScheduler::set_binding`] as the
///    thread's resource binding moves between containers;
/// 3. flips [`CoreScheduler::set_runnable`] as the thread blocks and
///    wakes;
/// 4. calls [`CoreScheduler::pick`] whenever the CPU is free or an event
///    may have changed the best choice, runs the picked task for at most
///    `slice`, and then
/// 5. reports the CPU actually consumed — and which container it was
///    charged to — via [`CoreScheduler::charge`].
///
/// Implementations must be deterministic given the same call sequence.
pub trait CoreScheduler {
    /// Registers a task with its initial scheduler binding. The task starts
    /// not runnable.
    fn add_task(&mut self, task: TaskId, binding: &[ContainerId], now: Nanos);

    /// Unregisters a task (thread exit).
    fn remove_task(&mut self, task: TaskId);

    /// Replaces the task's scheduler binding (paper §4.3: the set of
    /// containers a multiplexed thread currently serves).
    fn set_binding(&mut self, task: TaskId, binding: &[ContainerId], now: Nanos);

    /// Marks the task runnable or blocked.
    fn set_runnable(&mut self, task: TaskId, runnable: bool, now: Nanos);

    /// Returns `true` if the task is currently marked runnable.
    fn is_runnable(&self, task: TaskId) -> bool;

    /// Chooses the next task to run, or `None` if no runnable task may run
    /// now (all blocked, or all throttled by CPU limits).
    fn pick(&mut self, table: &ContainerTable, now: Nanos) -> Option<Pick>;

    /// Accounts `dt` of CPU consumed by `task` while resource-bound to
    /// `container`. The kernel has already charged the container table;
    /// this call updates policy state (decayed usage, stride passes,
    /// limit buckets).
    fn charge(
        &mut self,
        task: TaskId,
        container: ContainerId,
        dt: Nanos,
        table: &ContainerTable,
        now: Nanos,
    );

    /// If every runnable task is throttled by a CPU limit, returns the
    /// earliest time at which one becomes eligible again; otherwise `None`.
    fn next_release_time(&mut self, table: &ContainerTable, now: Nanos) -> Option<Nanos>;

    /// A short policy name for reports.
    fn name(&self) -> &'static str;
}

/// The SMP scheduler surface the kernel drives: per-CPU run queues with
/// task-to-CPU placement and migration.
///
/// Calls that identify the CPU explicitly ([`Scheduler::add_task`],
/// [`Scheduler::pick`], [`Scheduler::next_release_time`]) address a
/// specific core; the rest resolve the owning core from the task's
/// current home CPU.
pub trait Scheduler {
    /// Registers a task on `cpu` with its initial scheduler binding. The
    /// task starts not runnable.
    fn add_task(&mut self, task: TaskId, binding: &[ContainerId], cpu: CpuId, now: Nanos);

    /// Unregisters a task (thread exit).
    fn remove_task(&mut self, task: TaskId);

    /// Replaces the task's scheduler binding on its home CPU.
    fn set_binding(&mut self, task: TaskId, binding: &[ContainerId], now: Nanos);

    /// Marks the task runnable or blocked on its home CPU.
    fn set_runnable(&mut self, task: TaskId, runnable: bool, now: Nanos);

    /// Returns `true` if the task is currently marked runnable.
    fn is_runnable(&self, task: TaskId) -> bool;

    /// Returns the task's current home CPU, if registered.
    fn cpu_of(&self, task: TaskId) -> Option<CpuId>;

    /// Moves a task to `to`, preserving its binding and runnable state.
    /// Returns `false` if the task is unknown or already homed there.
    fn migrate(&mut self, task: TaskId, to: CpuId, now: Nanos) -> bool;

    /// Chooses the next task to run on `cpu`.
    fn pick(&mut self, cpu: CpuId, table: &ContainerTable, now: Nanos) -> Option<Pick>;

    /// Accounts `dt` of CPU consumed by `task` (on its home CPU).
    fn charge(
        &mut self,
        task: TaskId,
        container: ContainerId,
        dt: Nanos,
        table: &ContainerTable,
        now: Nanos,
    );

    /// If every runnable task on `cpu` is throttled by a CPU limit,
    /// returns the earliest time one becomes eligible again.
    fn next_release_time(
        &mut self,
        cpu: CpuId,
        table: &ContainerTable,
        now: Nanos,
    ) -> Option<Nanos>;

    /// Number of simulated CPUs.
    fn ncpus(&self) -> u32;

    /// A short policy name for reports.
    fn name(&self) -> &'static str;

    /// Exports every registered task as a policy-neutral
    /// [`TaskSnapshot`], sorted by task id so the export order — and
    /// therefore the replay order on import — is deterministic.
    fn export_tasks(&self) -> Vec<TaskSnapshot>;

    /// Replays exported task snapshots into this (freshly built)
    /// scheduler: registration, home CPU, binding, and runnable state are
    /// restored; policy-internal ledgers start fresh.
    fn import_tasks(&mut self, tasks: &[TaskSnapshot], now: Nanos) {
        for t in tasks {
            self.add_task(t.task, &t.binding, t.cpu, now);
            if t.runnable {
                self.set_runnable(t.task, true, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(7).to_string(), "t7");
    }

    #[test]
    fn task_id_ordering() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(TaskId(3), TaskId(3));
    }

    #[test]
    fn cpu_id_display_and_ordering() {
        assert_eq!(CpuId(2).to_string(), "cpu2");
        assert!(CpuId(0) < CpuId(1));
    }
}
