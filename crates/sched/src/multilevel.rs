//! The paper's prototype multi-level scheduler (§5.1): resource containers
//! as resource principals.
//!
//! The container hierarchy is interpreted directly:
//!
//! - **Fixed-share** containers are guaranteed their fraction of the
//!   parent's CPU, enforced by stride scheduling with idle-credit
//!   revocation (an idle child accrues no credit, so guarantees hold over
//!   scheduling-relevant timescales but the scheduler stays
//!   work-conserving).
//! - **Time-shared** siblings share the parent's *remaining* CPU at strict
//!   numeric priority levels; within a level, the runnable task with the
//!   lowest combined decayed usage of its scheduler binding runs (paper
//!   §4.3: "the combined numeric priorities ... possibly taking into
//!   account the recent resource consumption of this set of containers").
//! - Priority **0** is starvable: such work runs only when nothing else in
//!   the system wants the CPU (used by the SYN-flood defense of §5.7).
//! - **CPU limits** are enforced with per-container token buckets over the
//!   limit's window; a container whose chain has an exhausted bucket is
//!   ineligible until it refills (the "resource sandbox" of §5.6).
//!
//! A task's scheduler binding may span several containers — for an
//! event-driven server's thread it usually does — and may even span
//! subtrees; the task is then eligible wherever any of its containers is,
//! and the CPU it consumes is charged to whichever container its *resource
//! binding* names at the time.

use std::collections::HashMap;

use rescon::{ContainerId, ContainerTable, SchedPolicy};
use simcore::trace::{self, TraceEventKind};
use simcore::Nanos;

use crate::api::{CoreScheduler, Pick, TaskId};
use crate::bucket::TokenBucket;
use crate::usage_decay::UsageDecay;

#[derive(Debug)]
struct MlTask {
    binding: Vec<ContainerId>,
    runnable: bool,
}

/// The container-aware multi-level scheduler (paper §5.1).
///
/// # Examples
///
/// ```
/// use rescon::{Attributes, ContainerTable};
/// use sched::{CoreScheduler, MultiLevelScheduler, TaskId};
/// use simcore::Nanos;
///
/// let mut table = ContainerTable::new();
/// let high = table.create(None, Attributes::time_shared(20)).unwrap();
/// let low = table.create(None, Attributes::time_shared(10)).unwrap();
///
/// let mut s = MultiLevelScheduler::new();
/// s.add_task(TaskId(1), &[low], Nanos::ZERO);
/// s.add_task(TaskId(2), &[high], Nanos::ZERO);
/// s.set_runnable(TaskId(1), true, Nanos::ZERO);
/// s.set_runnable(TaskId(2), true, Nanos::ZERO);
///
/// // The higher-priority container's task runs first.
/// assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(2));
/// ```
pub struct MultiLevelScheduler {
    tasks: HashMap<TaskId, MlTask>,
    /// Tasks eligible at each container (via their scheduler binding).
    container_tasks: HashMap<ContainerId, Vec<TaskId>>,
    /// Stride pass per fixed-share container, in virtual seconds.
    passes: HashMap<ContainerId, f64>,
    /// Stride pass of the time-share pool at each node.
    pool_passes: HashMap<ContainerId, f64>,
    /// Per-node virtual time: the largest pass charged below the node.
    vtimes: HashMap<ContainerId, f64>,
    /// Token buckets for containers with CPU limits.
    buckets: HashMap<ContainerId, TokenBucket>,
    /// Decayed CPU usage per container.
    cusage: HashMap<ContainerId, UsageDecay>,
    quantum: Nanos,
    half_life: Nanos,
}

impl Default for MultiLevelScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl MultiLevelScheduler {
    /// Creates a scheduler with a 1 ms quantum and a 500 ms usage
    /// half-life.
    pub fn new() -> Self {
        Self::with_params(Nanos::from_millis(1), Nanos::from_millis(500))
    }

    /// Creates a scheduler with explicit quantum and usage half-life.
    pub fn with_params(quantum: Nanos, half_life: Nanos) -> Self {
        MultiLevelScheduler {
            tasks: HashMap::new(),
            container_tasks: HashMap::new(),
            passes: HashMap::new(),
            pool_passes: HashMap::new(),
            vtimes: HashMap::new(),
            buckets: HashMap::new(),
            cusage: HashMap::new(),
            quantum,
            half_life,
        }
    }

    fn detach_binding(&mut self, task: TaskId) {
        if let Some(t) = self.tasks.get(&task) {
            for c in t.binding.clone() {
                if let Some(v) = self.container_tasks.get_mut(&c) {
                    v.retain(|&x| x != task);
                }
            }
        }
    }

    fn attach_binding(&mut self, task: TaskId, binding: &[ContainerId]) {
        for &c in binding {
            let v = self.container_tasks.entry(c).or_default();
            if !v.contains(&task) {
                v.push(task);
            }
        }
        if let Some(t) = self.tasks.get_mut(&task) {
            t.binding = binding.to_vec();
        }
    }

    /// Returns the children of `node` for scheduling purposes; at the root
    /// this includes floating orphans.
    fn node_children(table: &ContainerTable, node: ContainerId) -> Vec<ContainerId> {
        let mut v: Vec<ContainerId> = table.children(node).map(|c| c.to_vec()).unwrap_or_default();
        if node == table.root() {
            v.extend_from_slice(table.floating());
        }
        v
    }

    /// Refreshes every configured CPU-limit bucket and returns the
    /// containers whose bucket is exhausted. Computed once per pick so the
    /// rest of the decision can run without mutable borrows; in the common
    /// case (no limits configured, or none exhausted) the result is empty
    /// and all throttle checks short-circuit.
    fn compute_throttled(&mut self, table: &ContainerTable, now: Nanos) -> Vec<ContainerId> {
        let mut out = Vec::new();
        for (id, c) in table.iter() {
            if let Some(limit) = c.attrs().cpu_limit {
                let eligible = self
                    .buckets
                    .entry(id)
                    .or_insert_with(|| TokenBucket::new(limit.fraction, limit.window))
                    .eligible(now);
                if !eligible {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Returns `true` if `c` or any ancestor has an exhausted CPU-limit
    /// bucket (per the precomputed `throttled` set).
    fn is_throttled(table: &ContainerTable, throttled: &[ContainerId], c: ContainerId) -> bool {
        if throttled.is_empty() {
            return false;
        }
        let mut cursor = Some(c);
        while let Some(cur) = cursor {
            if throttled.contains(&cur) {
                return true;
            }
            cursor = table.parent(cur).ok().flatten();
        }
        false
    }

    /// The numeric priority a task presents within a pool: the maximum
    /// priority among its bound, live, unthrottled containers.
    fn task_priority(
        &self,
        table: &ContainerTable,
        throttled: &[ContainerId],
        task: TaskId,
    ) -> Option<u32> {
        let binding = &self.tasks.get(&task)?.binding;
        let mut best: Option<u32> = None;
        for &c in binding {
            if !table.contains(c) || Self::is_throttled(table, throttled, c) {
                continue;
            }
            let prio = match table.policy(c).ok()? {
                SchedPolicy::TimeShared { priority } => priority,
                SchedPolicy::FixedShare { .. } => 10,
            };
            best = Some(best.map_or(prio, |b: u32| b.max(prio)));
        }
        best
    }

    /// Combined decayed usage of the task's scheduler binding (§4.3).
    fn task_combined_usage(&self, task: TaskId, now: Nanos) -> f64 {
        let binding = match self.tasks.get(&task) {
            Some(t) => &t.binding,
            None => return 0.0,
        };
        binding
            .iter()
            .map(|c| self.cusage.get(c).map(|u| u.peek(now)).unwrap_or(0.0))
            .sum()
    }

    /// Gathers the runnable tasks whose binding touches `c` or (for
    /// time-shared subtrees in the general model) any descendant.
    fn gather_pool_tasks(&self, table: &ContainerTable, c: ContainerId, out: &mut Vec<TaskId>) {
        if let Some(list) = self.container_tasks.get(&c) {
            for &t in list {
                if self.tasks.get(&t).map(|x| x.runnable).unwrap_or(false) && !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        // General-model (non-strict) time-shared subtrees fold into the
        // nearest fixed-share pool.
        if let Ok(children) = table.children(c) {
            for &ch in children.to_vec().iter() {
                if matches!(table.policy(ch), Ok(SchedPolicy::TimeShared { .. })) {
                    self.gather_pool_tasks(table, ch, out);
                }
            }
        }
    }

    /// Returns `true` if the subtree rooted at `c` contains any runnable,
    /// locally-unthrottled work acceptable under the starvation rule.
    fn subtree_has_work(
        &self,
        table: &ContainerTable,
        throttled: &[ContainerId],
        c: ContainerId,
        allow_starvable: bool,
    ) -> bool {
        if throttled.contains(&c) {
            return false;
        }
        if let Some(list) = self.container_tasks.get(&c) {
            for &t in list {
                if !self.tasks.get(&t).map(|x| x.runnable).unwrap_or(false) {
                    continue;
                }
                if allow_starvable {
                    return true;
                }
                if self.task_priority(table, throttled, t).unwrap_or(0) >= 1 {
                    return true;
                }
            }
        }
        if let Ok(children) = table.children(c) {
            for &ch in children {
                if self.subtree_has_work(table, throttled, ch, allow_starvable) {
                    return true;
                }
            }
        }
        false
    }

    /// Picks within the time-share pool `candidates`: strict priority
    /// levels, then minimum combined decayed usage, then lowest id.
    fn pick_from_pool(
        &self,
        table: &ContainerTable,
        throttled: &[ContainerId],
        candidates: &[TaskId],
        now: Nanos,
        allow_starvable: bool,
    ) -> Option<TaskId> {
        let mut best: Option<(u32, f64, TaskId)> = None;
        for &t in candidates {
            let prio = match self.task_priority(table, throttled, t) {
                Some(p) => p,
                None => continue,
            };
            if prio == 0 && !allow_starvable {
                continue;
            }
            let usage = self.task_combined_usage(t, now);
            let better = match best {
                None => true,
                Some((bp, bu, bt)) => {
                    (prio > bp) || (prio == bp && (usage < bu || (usage == bu && t < bt)))
                }
            };
            if better {
                best = Some((prio, usage, t));
            }
        }
        best.map(|(_, _, t)| t)
    }

    /// Recursive pick at a fixed-share node.
    fn pick_node(
        &mut self,
        table: &ContainerTable,
        throttled: &[ContainerId],
        node: ContainerId,
        now: Nanos,
        allow_starvable: bool,
    ) -> Option<TaskId> {
        let children = Self::node_children(table, node);
        let mut fs_with_work: Vec<(ContainerId, f64)> = Vec::new();
        let mut fs_share_total = 0.0;
        let mut pool: Vec<TaskId> = Vec::new();

        // Tasks bound directly to this node join its pool.
        if let Some(list) = self.container_tasks.get(&node) {
            for &t in list {
                if self.tasks.get(&t).map(|x| x.runnable).unwrap_or(false) && !pool.contains(&t) {
                    pool.push(t);
                }
            }
        }
        for ch in children {
            match table.policy(ch) {
                Ok(SchedPolicy::FixedShare { share }) => {
                    fs_share_total += share;
                    if self.subtree_has_work(table, throttled, ch, allow_starvable) {
                        fs_with_work.push((ch, share));
                    }
                }
                Ok(SchedPolicy::TimeShared { .. }) => {
                    self.gather_pool_tasks(table, ch, &mut pool);
                }
                Err(_) => {}
            }
        }
        // Filter pool: keep tasks that may run under the starvation rule
        // and are not fully throttled.
        let pool: Vec<TaskId> = pool
            .into_iter()
            .filter(|&t| match self.task_priority(table, throttled, t) {
                Some(0) => allow_starvable,
                Some(_) => true,
                None => false,
            })
            .collect();

        let pool_share = (1.0 - fs_share_total).max(0.0);
        let vt = *self.vtimes.get(&node).unwrap_or(&0.0);

        // Decide between fixed-share children and the time-share pool using
        // stride: lowest (clamped) pass runs. A pool with zero share runs
        // only as leftover.
        #[derive(Clone, Copy, PartialEq)]
        enum Choice {
            Fs(ContainerId),
            Pool,
        }
        let mut best: Option<(f64, u8, Choice)> = None;
        for &(ch, share) in &fs_with_work {
            let pass = self.passes.entry(ch).or_insert(vt);
            if *pass < vt {
                *pass = vt;
            }
            let key = (*pass, 0u8, Choice::Fs(ch));
            let better = match best {
                None => true,
                Some((bp, bo, _)) => key.0 < bp || (key.0 == bp && key.1 < bo),
            };
            if better {
                best = Some(key);
            }
            let _ = share;
            // (share is used at charge time, not selection time)
        }
        if !pool.is_empty() {
            if pool_share > 0.0 {
                let pass = self.pool_passes.entry(node).or_insert(vt);
                if *pass < vt {
                    *pass = vt;
                }
                let key = (*pass, 1u8, Choice::Pool);
                let better = match best {
                    None => true,
                    Some((bp, bo, _)) => key.0 < bp || (key.0 == bp && key.1 < bo),
                };
                if better {
                    best = Some(key);
                }
            } else if best.is_none() {
                // Leftover-only pool: runs when no fixed-share child wants
                // the CPU.
                best = Some((vt, 1, Choice::Pool));
            }
        }
        let (sel_pass, _, choice) = best?;
        // The node's virtual time follows the pass of the selected child:
        // children waking from idle join here instead of cashing in credit.
        self.vtimes.insert(node, sel_pass);
        match choice {
            Choice::Fs(ch) => self
                .pick_node(table, throttled, ch, now, allow_starvable)
                .or_else(|| self.pick_from_pool(table, throttled, &pool, now, allow_starvable)),
            Choice::Pool => self.pick_from_pool(table, throttled, &pool, now, allow_starvable),
        }
    }

    /// Returns the decayed usage recorded for a container, for tests.
    pub fn container_usage(&self, c: ContainerId, now: Nanos) -> f64 {
        self.cusage.get(&c).map(|u| u.peek(now)).unwrap_or(0.0)
    }
}

impl CoreScheduler for MultiLevelScheduler {
    fn add_task(&mut self, task: TaskId, binding: &[ContainerId], _now: Nanos) {
        self.tasks.insert(
            task,
            MlTask {
                binding: Vec::new(),
                runnable: false,
            },
        );
        self.attach_binding(task, binding);
    }

    fn remove_task(&mut self, task: TaskId) {
        self.detach_binding(task);
        self.tasks.remove(&task);
    }

    fn set_binding(&mut self, task: TaskId, binding: &[ContainerId], _now: Nanos) {
        self.detach_binding(task);
        self.attach_binding(task, binding);
    }

    fn set_runnable(&mut self, task: TaskId, runnable: bool, now: Nanos) {
        if let Some(t) = self.tasks.get_mut(&task) {
            if t.runnable != runnable {
                trace::emit_at(now, || TraceEventKind::ThreadState {
                    task: task.0,
                    runnable,
                });
            }
            t.runnable = runnable;
        }
    }

    fn is_runnable(&self, task: TaskId) -> bool {
        self.tasks.get(&task).map(|t| t.runnable).unwrap_or(false)
    }

    fn pick(&mut self, table: &ContainerTable, now: Nanos) -> Option<Pick> {
        let root = table.root();
        let throttled = self.compute_throttled(table, now);
        let task = self
            .pick_node(table, &throttled, root, now, false)
            .or_else(|| self.pick_node(table, &throttled, root, now, true))?;
        trace::emit_at(now, || TraceEventKind::SchedPick {
            task: task.0,
            slice: self.quantum,
        });
        Some(Pick {
            task,
            slice: self.quantum,
        })
    }

    fn charge(
        &mut self,
        _task: TaskId,
        container: ContainerId,
        dt: Nanos,
        table: &ContainerTable,
        now: Nanos,
    ) {
        let dt_sec = dt.as_secs_f64();
        self.cusage
            .entry(container)
            .or_insert_with(|| UsageDecay::new(self.half_life))
            .charge(dt, now);

        // Walk the chain from the charged container to the root, advancing
        // stride passes and draining limit buckets.
        let mut cur = container;
        loop {
            if let Some(limit) = table.attrs(cur).ok().and_then(|a| a.cpu_limit) {
                self.buckets
                    .entry(cur)
                    .or_insert_with(|| TokenBucket::new(limit.fraction, limit.window))
                    .consume(dt, now);
            }
            let parent = match table.parent(cur) {
                Ok(Some(p)) => p,
                // Floating containers charge against the root's level.
                Ok(None) if cur != table.root() => table.root(),
                _ => break,
            };
            match table.policy(cur) {
                Ok(SchedPolicy::FixedShare { share }) => {
                    let pass = self.passes.entry(cur).or_insert(0.0);
                    *pass += dt_sec / share.max(1e-6);
                }
                Ok(SchedPolicy::TimeShared { .. }) => {
                    // Time-shared work charges the pool of its nearest
                    // fixed-share ancestor (strict mode: the direct parent).
                    let is_parent_pool =
                        !matches!(table.policy(parent), Ok(SchedPolicy::TimeShared { .. }));
                    if is_parent_pool {
                        let children = table
                            .children(parent)
                            .map(|c| c.to_vec())
                            .unwrap_or_default();
                        let fs_sum: f64 = children
                            .iter()
                            .filter_map(|&c| table.policy(c).ok().and_then(|p| p.share()))
                            .sum();
                        let pool_share = (1.0 - fs_sum).max(0.0);
                        if pool_share > 0.0 {
                            let pass = self.pool_passes.entry(parent).or_insert(0.0);
                            *pass += dt_sec / pool_share;
                        }
                    }
                }
                Err(_) => {}
            }
            cur = parent;
        }
    }

    fn next_release_time(&mut self, table: &ContainerTable, now: Nanos) -> Option<Nanos> {
        let any_runnable = self.tasks.values().any(|t| t.runnable);
        if !any_runnable {
            return None;
        }
        let mut earliest: Option<Nanos> = None;
        let ids: Vec<ContainerId> = self.buckets.keys().copied().collect();
        for c in ids {
            if !table.contains(c) {
                continue;
            }
            let b = self.buckets.get_mut(&c).expect("bucket exists");
            if !b.eligible(now) {
                let r = b.release_time(now);
                earliest = Some(earliest.map_or(r, |e: Nanos| e.min(r)));
            }
        }
        earliest
    }

    fn name(&self) -> &'static str {
        "multilevel-rc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescon::Attributes;

    fn run_shares(
        table: &mut ContainerTable,
        s: &mut MultiLevelScheduler,
        bindings: &[(TaskId, ContainerId)],
        total: Nanos,
    ) -> HashMap<TaskId, Nanos> {
        let mut consumed: HashMap<TaskId, Nanos> = HashMap::new();
        let mut now = Nanos::ZERO;
        while now < total {
            match s.pick(table, now) {
                Some(p) => {
                    let dt = p.slice;
                    let c = bindings
                        .iter()
                        .find(|&&(t, _)| t == p.task)
                        .map(|&(_, c)| c)
                        .expect("binding known");
                    table.charge_cpu(c, dt).unwrap();
                    s.charge(p.task, c, dt, table, now + dt);
                    *consumed.entry(p.task).or_insert(Nanos::ZERO) += dt;
                    now += dt;
                }
                None => {
                    let next = s
                        .next_release_time(table, now)
                        .unwrap_or(now + Nanos::from_millis(1));
                    now = next.max(now + Nanos::from_micros(10));
                }
            }
        }
        consumed
    }

    #[test]
    fn strict_priority_between_timeshare_containers() {
        let mut table = ContainerTable::new();
        let hi = table.create(None, Attributes::time_shared(20)).unwrap();
        let lo = table.create(None, Attributes::time_shared(10)).unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(1), &[lo], Nanos::ZERO);
        s.add_task(TaskId(2), &[hi], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        for _ in 0..5 {
            assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(2));
        }
        s.set_runnable(TaskId(2), false, Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(1));
    }

    #[test]
    fn priority_zero_is_starvable() {
        let mut table = ContainerTable::new();
        let bg = table.create(None, Attributes::time_shared(0)).unwrap();
        let fg = table.create(None, Attributes::time_shared(1)).unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(1), &[bg], Nanos::ZERO);
        s.add_task(TaskId(2), &[fg], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(2));
        // Only when the foreground blocks does the starvable task run.
        s.set_runnable(TaskId(2), false, Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(1));
    }

    #[test]
    fn fixed_shares_are_respected() {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::fixed_share(0.7)).unwrap();
        let b = table.create(None, Attributes::fixed_share(0.3)).unwrap();
        let ca = table.create(Some(a), Attributes::time_shared(10)).unwrap();
        let cb = table.create(Some(b), Attributes::time_shared(10)).unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(1), &[ca], Nanos::ZERO);
        s.add_task(TaskId(2), &[cb], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        let got = run_shares(
            &mut table,
            &mut s,
            &[(TaskId(1), ca), (TaskId(2), cb)],
            Nanos::from_secs(2),
        );
        let total = got[&TaskId(1)] + got[&TaskId(2)];
        let share_a = got[&TaskId(1)].ratio(total);
        assert!((share_a - 0.7).abs() < 0.03, "share_a = {share_a}");
    }

    #[test]
    fn work_conserving_when_one_side_idle() {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::fixed_share(0.1)).unwrap();
        let ca = table.create(Some(a), Attributes::time_shared(10)).unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(1), &[ca], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        // Only a 10%-share container is active; it still gets the whole CPU.
        let got = run_shares(
            &mut table,
            &mut s,
            &[(TaskId(1), ca)],
            Nanos::from_millis(100),
        );
        assert_eq!(got[&TaskId(1)], Nanos::from_millis(100));
    }

    #[test]
    fn cpu_limit_throttles_subtree() {
        let mut table = ContainerTable::new();
        let limited = table
            .create(
                None,
                Attributes::fixed_share(0.3).with_cpu_limit(0.3, Nanos::from_millis(100)),
            )
            .unwrap();
        let cl = table
            .create(Some(limited), Attributes::time_shared(10))
            .unwrap();
        let free = table.create(None, Attributes::time_shared(10)).unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(1), &[cl], Nanos::ZERO);
        s.add_task(TaskId(2), &[free], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        let got = run_shares(
            &mut table,
            &mut s,
            &[(TaskId(1), cl), (TaskId(2), free)],
            Nanos::from_secs(2),
        );
        let total = got[&TaskId(1)] + got[&TaskId(2)];
        let limited_share = got[&TaskId(1)].ratio(total);
        assert!(
            (limited_share - 0.3).abs() < 0.03,
            "limited share = {limited_share}"
        );
    }

    #[test]
    fn cpu_limit_binds_even_when_alone() {
        // §5.6: the sandbox holds even with no competing work... the CPU
        // just idles. A lone task limited to 10% gets ~10%.
        let mut table = ContainerTable::new();
        let limited = table
            .create(
                None,
                Attributes::fixed_share(0.5).with_cpu_limit(0.1, Nanos::from_millis(50)),
            )
            .unwrap();
        let cl = table
            .create(Some(limited), Attributes::time_shared(10))
            .unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(1), &[cl], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        let got = run_shares(&mut table, &mut s, &[(TaskId(1), cl)], Nanos::from_secs(1));
        let share = got[&TaskId(1)].ratio(Nanos::from_secs(1));
        assert!((share - 0.1).abs() < 0.02, "share = {share}");
    }

    #[test]
    fn multiplexed_task_priority_is_max_of_binding() {
        let mut table = ContainerTable::new();
        let hi = table.create(None, Attributes::time_shared(20)).unwrap();
        let lo = table.create(None, Attributes::time_shared(5)).unwrap();
        let other = table.create(None, Attributes::time_shared(10)).unwrap();
        let mut s = MultiLevelScheduler::new();
        // Task 1 serves both hi and lo (an event-driven server).
        s.add_task(TaskId(1), &[lo, hi], Nanos::ZERO);
        s.add_task(TaskId(2), &[other], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(1));
    }

    #[test]
    fn rebinding_changes_eligibility() {
        let mut table = ContainerTable::new();
        let a = table.create(None, Attributes::time_shared(10)).unwrap();
        let b = table.create(None, Attributes::time_shared(20)).unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(1), &[a], Nanos::ZERO);
        s.add_task(TaskId(2), &[a], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        // Rebind task 2 to the high-priority container: it must win.
        s.set_binding(TaskId(2), &[b], Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(2));
        // And back again: now tie at same level, lower usage/id wins.
        s.set_binding(TaskId(2), &[a], Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(1));
    }

    #[test]
    fn nested_shares_compose() {
        // Guest A (50%) subdivides into 80/20; guest B (50%).
        let mut table = ContainerTable::new();
        let ga = table.create(None, Attributes::fixed_share(0.5)).unwrap();
        let gb = table.create(None, Attributes::fixed_share(0.5)).unwrap();
        let a1 = table
            .create(Some(ga), Attributes::fixed_share(0.8))
            .unwrap();
        let a2 = table
            .create(Some(ga), Attributes::fixed_share(0.2))
            .unwrap();
        let ca1 = table.create(Some(a1), Attributes::time_shared(10)).unwrap();
        let ca2 = table.create(Some(a2), Attributes::time_shared(10)).unwrap();
        let cb = table.create(Some(gb), Attributes::time_shared(10)).unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(1), &[ca1], Nanos::ZERO);
        s.add_task(TaskId(2), &[ca2], Nanos::ZERO);
        s.add_task(TaskId(3), &[cb], Nanos::ZERO);
        for t in 1..=3 {
            s.set_runnable(TaskId(t), true, Nanos::ZERO);
        }
        let got = run_shares(
            &mut table,
            &mut s,
            &[(TaskId(1), ca1), (TaskId(2), ca2), (TaskId(3), cb)],
            Nanos::from_secs(4),
        );
        let total: Nanos = got.values().copied().sum();
        let s1 = got[&TaskId(1)].ratio(total);
        let s2 = got[&TaskId(2)].ratio(total);
        let s3 = got[&TaskId(3)].ratio(total);
        assert!((s1 - 0.4).abs() < 0.03, "s1 = {s1}");
        assert!((s2 - 0.1).abs() < 0.03, "s2 = {s2}");
        assert!((s3 - 0.5).abs() < 0.03, "s3 = {s3}");
    }

    #[test]
    fn next_release_time_reports_bucket_refill() {
        let mut table = ContainerTable::new();
        let limited = table
            .create(
                None,
                Attributes::fixed_share(0.5).with_cpu_limit(0.5, Nanos::from_millis(10)),
            )
            .unwrap();
        let cl = table
            .create(Some(limited), Attributes::time_shared(10))
            .unwrap();
        let mut s = MultiLevelScheduler::new();
        s.add_task(TaskId(1), &[cl], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        // Exhaust the bucket.
        let mut now = Nanos::ZERO;
        while let Some(p) = s.pick(&table, now) {
            let dt = p.slice;
            table.charge_cpu(cl, dt).unwrap();
            s.charge(p.task, cl, dt, &table, now + dt);
            now += dt;
            if now > Nanos::from_millis(50) {
                break;
            }
        }
        if s.pick(&table, now).is_none() {
            let rel = s.next_release_time(&table, now).expect("throttled");
            assert!(rel > now);
        }
    }
}
