//! Earliest-deadline-first scheduling over per-container latency targets.
//!
//! Containers declare a relative deadline through
//! [`rescon::Attributes::with_deadline`] — "work charged to this subtree
//! should finish within *d* of becoming runnable". The policy turns that
//! declarative latency target into dispatch order: every time a task wakes
//! (or exhausts a quantum) it releases a fresh *job* whose absolute
//! deadline is `release + d`, and the runnable task with the earliest
//! absolute deadline runs next. Tasks whose binding carries no deadline
//! anywhere on its ancestor chain schedule against a generous default, so
//! best-effort work stays live but always yields to declared targets
//! under contention.
//!
//! Re-releasing at each quantum boundary (rather than keeping the wake
//! deadline forever) is what makes this a *latency-target* policy instead
//! of classic hard-real-time EDF: a CPU hog cannot ride one ancient
//! deadline to starve everyone — after each slice it re-enters the
//! competition at `now + d` — while a blocked server thread that wakes for
//! a request gets the front of the queue precisely when its target is
//! tight. The same declared target feeds the `rctrace` SLO monitor, so
//! the policy and its verification read one attribute.

use std::collections::HashMap;

use rescon::{ContainerId, ContainerTable};
use simcore::trace::{self, TraceEventKind};
use simcore::Nanos;

use crate::api::{CoreScheduler, Pick, TaskId};

/// Relative deadline assumed for work without a declared target: long
/// enough that any declared target beats it, short enough that
/// best-effort work keeps rotating.
const DEFAULT_DEADLINE: Nanos = Nanos::from_millis(100);

#[derive(Debug)]
struct EdfTask {
    binding: Vec<ContainerId>,
    runnable: bool,
    /// Current job release time: last wake-up or quantum exhaustion.
    release: Nanos,
    /// Cached relative deadline resolved from the binding (refreshed on
    /// every binding change; attribute edits bite at the next rebind or
    /// wake, like net weights bite at the next packet).
    rel_deadline: Nanos,
}

/// An earliest-deadline-first scheduler over container latency targets.
///
/// # Examples
///
/// ```
/// use rescon::{Attributes, ContainerTable};
/// use sched::{CoreScheduler, EdfScheduler, TaskId};
/// use simcore::Nanos;
///
/// let mut table = ContainerTable::new();
/// let paid = table
///     .create(None, Attributes::time_shared(10).with_deadline(Nanos::from_millis(5)))
///     .unwrap();
/// let best_effort = table.create(None, Attributes::time_shared(10)).unwrap();
/// let mut s = EdfScheduler::new();
/// s.add_task(TaskId(1), &[best_effort], Nanos::ZERO);
/// s.add_task(TaskId(2), &[paid], Nanos::ZERO);
/// s.set_runnable(TaskId(1), true, Nanos::ZERO);
/// s.set_runnable(TaskId(2), true, Nanos::ZERO);
/// // Same wake time: the declared 5 ms target beats the 100 ms default.
/// assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(2));
/// ```
pub struct EdfScheduler {
    tasks: HashMap<TaskId, EdfTask>,
    quantum: Nanos,
}

impl Default for EdfScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl EdfScheduler {
    /// Creates an EDF scheduler with a 1 ms quantum.
    pub fn new() -> Self {
        Self::with_quantum(Nanos::from_millis(1))
    }

    /// Creates an EDF scheduler with an explicit quantum.
    pub fn with_quantum(quantum: Nanos) -> Self {
        EdfScheduler {
            tasks: HashMap::new(),
            quantum,
        }
    }

    /// Resolves the relative deadline of a binding: the tightest declared
    /// target over each bound container's ancestor chain (a tenant's
    /// target covers its per-connection children), or the best-effort
    /// default when nothing on any chain declares one.
    pub fn deadline_of(table: &ContainerTable, binding: &[ContainerId]) -> Nanos {
        let mut best: Option<Nanos> = None;
        for &c in binding {
            let mut cur = Some(c);
            while let Some(id) = cur {
                match table.attrs(id) {
                    Ok(a) => {
                        if let Some(d) = a.deadline {
                            best = Some(best.map_or(d, |b| b.min(d)));
                            break;
                        }
                        cur = table.parent(id).ok().flatten();
                    }
                    Err(_) => break,
                }
            }
        }
        best.unwrap_or(DEFAULT_DEADLINE)
    }
}

impl CoreScheduler for EdfScheduler {
    fn add_task(&mut self, task: TaskId, binding: &[ContainerId], now: Nanos) {
        self.tasks.insert(
            task,
            EdfTask {
                binding: binding.to_vec(),
                runnable: false,
                release: now,
                // Zero is the "unresolved" sentinel (a zero relative
                // deadline is rejected by attribute validation); the real
                // value is resolved at the first pick, which has the
                // container table in hand.
                rel_deadline: Nanos::ZERO,
            },
        );
    }

    fn remove_task(&mut self, task: TaskId) {
        self.tasks.remove(&task);
    }

    fn set_binding(&mut self, task: TaskId, binding: &[ContainerId], _now: Nanos) {
        if let Some(t) = self.tasks.get_mut(&task) {
            t.binding = binding.to_vec();
            // Invalidate the cache; re-resolved lazily at the next pick
            // (which has the table in hand).
            t.rel_deadline = Nanos::ZERO;
        }
    }

    fn set_runnable(&mut self, task: TaskId, runnable: bool, now: Nanos) {
        if let Some(t) = self.tasks.get_mut(&task) {
            if runnable && !t.runnable {
                // A wake-up releases a new job: the latency clock starts
                // now, never from banked past idleness.
                t.release = now;
            }
            if t.runnable != runnable {
                trace::emit_at(now, || TraceEventKind::ThreadState {
                    task: task.0,
                    runnable,
                });
            }
            t.runnable = runnable;
        }
    }

    fn is_runnable(&self, task: TaskId) -> bool {
        self.tasks.get(&task).map(|t| t.runnable).unwrap_or(false)
    }

    fn pick(&mut self, table: &ContainerTable, now: Nanos) -> Option<Pick> {
        // Refresh invalidated deadline caches first (cheap: only tasks
        // whose binding changed since the last pick).
        let stale: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.rel_deadline.is_zero())
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            let d = {
                let t = &self.tasks[&id];
                Self::deadline_of(table, &t.binding)
            };
            self.tasks
                .get_mut(&id)
                .expect("stale task exists")
                .rel_deadline = d;
        }
        let mut best: Option<(Nanos, Nanos, TaskId)> = None;
        for (&id, t) in &self.tasks {
            if !t.runnable {
                continue;
            }
            // Absolute deadline of the task's current job; release as a
            // tie-break favors the longest-waiting job, then task id for
            // determinism.
            let key = (t.release + t.rel_deadline, t.release, id);
            match best {
                None => best = Some(key),
                Some(b) if key < b => best = Some(key),
                _ => {}
            }
        }
        let (_, _, task) = best?;
        trace::emit_at(now, || TraceEventKind::SchedPick {
            task: task.0,
            slice: self.quantum,
        });
        Some(Pick {
            task,
            slice: self.quantum,
        })
    }

    fn charge(
        &mut self,
        task: TaskId,
        _container: ContainerId,
        _dt: Nanos,
        _table: &ContainerTable,
        now: Nanos,
    ) {
        if let Some(t) = self.tasks.get_mut(&task) {
            // Quantum consumed: release the next job. This is the
            // anti-starvation rule — continuously-runnable work re-enters
            // the deadline competition instead of keeping its original
            // (ever-earlier) deadline forever.
            t.release = now;
        }
    }

    fn next_release_time(&mut self, _table: &ContainerTable, _now: Nanos) -> Option<Nanos> {
        None
    }

    fn name(&self) -> &'static str {
        "edf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescon::Attributes;

    fn table_with_deadlines() -> (ContainerTable, ContainerId, ContainerId) {
        let mut table = ContainerTable::new();
        let tight = table
            .create(
                None,
                Attributes::time_shared(10).with_deadline(Nanos::from_millis(5)),
            )
            .unwrap();
        let loose = table.create(None, Attributes::time_shared(10)).unwrap();
        (table, tight, loose)
    }

    #[test]
    fn declared_target_beats_default() {
        let (table, tight, loose) = table_with_deadlines();
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), &[loose], Nanos::ZERO);
        s.add_task(TaskId(2), &[tight], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(2));
    }

    #[test]
    fn deadline_inherited_from_ancestors() {
        let mut table = ContainerTable::new();
        let tenant = table
            .create(
                None,
                Attributes::fixed_share(0.5).with_deadline(Nanos::from_millis(3)),
            )
            .unwrap();
        let conn = table
            .create(Some(tenant), Attributes::time_shared(10))
            .unwrap();
        assert_eq!(
            EdfScheduler::deadline_of(&table, &[conn]),
            Nanos::from_millis(3)
        );
        assert_eq!(EdfScheduler::deadline_of(&table, &[]), DEFAULT_DEADLINE);
    }

    #[test]
    fn tightest_binding_entry_wins() {
        let (table, tight, loose) = table_with_deadlines();
        assert_eq!(
            EdfScheduler::deadline_of(&table, &[loose, tight]),
            Nanos::from_millis(5)
        );
    }

    #[test]
    fn waking_tight_task_preempts_running_hog() {
        let (table, tight, loose) = table_with_deadlines();
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), &[loose], Nanos::ZERO);
        s.add_task(TaskId(2), &[tight], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        let mut now = Nanos::ZERO;
        // The hog runs alone for 50 quanta.
        for _ in 0..50 {
            let p = s.pick(&table, now).unwrap();
            assert_eq!(p.task, TaskId(1));
            now += p.slice;
            s.charge(p.task, loose, p.slice, &table, now);
        }
        // The tight task wakes late; its 5 ms target beats the hog's
        // freshly re-released 100 ms default immediately.
        s.set_runnable(TaskId(2), true, now);
        assert_eq!(s.pick(&table, now).unwrap().task, TaskId(2));
    }

    #[test]
    fn equal_deadlines_share_the_cpu() {
        let table = ContainerTable::new();
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), &[], Nanos::ZERO);
        s.add_task(TaskId(2), &[], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        let mut now = Nanos::ZERO;
        let mut cpu = [Nanos::ZERO; 3];
        for _ in 0..1000 {
            let p = s.pick(&table, now).unwrap();
            now += p.slice;
            s.charge(p.task, table.root(), p.slice, &table, now);
            cpu[p.task.0 as usize] += p.slice;
        }
        let r = cpu[1].ratio(cpu[1] + cpu[2]);
        assert!((r - 0.5).abs() < 0.01, "r = {r}");
    }

    #[test]
    fn hog_with_tight_deadline_cannot_starve() {
        // Even a continuously-runnable task with a tight declared target
        // re-releases each quantum, so a best-effort task still runs once
        // the hog's fresh deadline passes the waiter's.
        let (table, tight, loose) = table_with_deadlines();
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), &[tight], Nanos::ZERO);
        s.add_task(TaskId(2), &[loose], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        let mut now = Nanos::ZERO;
        let mut loose_ran = false;
        for _ in 0..500 {
            let p = s.pick(&table, now).unwrap();
            now += p.slice;
            s.charge(p.task, table.root(), p.slice, &table, now);
            if p.task == TaskId(2) {
                loose_ran = true;
            }
        }
        assert!(loose_ran, "best-effort task starved by deadline hog");
    }

    #[test]
    fn rebind_refreshes_deadline() {
        let (table, tight, loose) = table_with_deadlines();
        let mut s = EdfScheduler::new();
        s.add_task(TaskId(1), &[loose], Nanos::ZERO);
        s.add_task(TaskId(2), &[loose], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.set_runnable(TaskId(2), true, Nanos::ZERO);
        s.set_binding(TaskId(2), &[tight], Nanos::ZERO);
        assert_eq!(s.pick(&table, Nanos::ZERO).unwrap().task, TaskId(2));
    }

    #[test]
    fn empty_pick_none_and_remove_forgets() {
        let table = ContainerTable::new();
        let mut s = EdfScheduler::new();
        assert!(s.pick(&table, Nanos::ZERO).is_none());
        s.add_task(TaskId(1), &[], Nanos::ZERO);
        s.set_runnable(TaskId(1), true, Nanos::ZERO);
        s.remove_task(TaskId(1));
        assert!(s.pick(&table, Nanos::ZERO).is_none());
        assert!(!s.is_runnable(TaskId(1)));
    }
}
