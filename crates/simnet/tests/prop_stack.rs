//! Property tests for the network stack: arbitrary packet storms must
//! never break invariants, and demultiplexing must agree with a naive
//! oracle.

use proptest::prelude::*;
use simcore::Nanos;
use simnet::{CidrFilter, Demux, FlowKey, IpAddr, NetStack, Packet, PacketKind, SockId};

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        Just(PacketKind::Syn),
        Just(PacketKind::Ack),
        (1u32..2000).prop_map(|b| PacketKind::Data { bytes: b }),
        Just(PacketKind::Fin),
        Just(PacketKind::Rst),
    ]
}

fn arb_flow() -> impl Strategy<Value = FlowKey> {
    (
        0u32..8,
        1000u16..1006,
        prop::sample::select(vec![80u16, 81]),
    )
        .prop_map(|(h, p, port)| FlowKey::new(IpAddr(0x0a000000 + h), p, port))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any packet sequence leaves the stack internally consistent: no
    /// panics, socket counts bounded by what was created, `established`
    /// and `closed` monotone and consistent.
    #[test]
    fn arbitrary_packet_storm_is_safe(
        pkts in prop::collection::vec((arb_flow(), arb_kind()), 1..300)
    ) {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let _l80 = s.listen(80, CidrFilter::any(), None, 8, 8, false);
        let mut now = Nanos::ZERO;
        for (flow, kind) in pkts {
            now += Nanos::from_micros(10);
            let _ = s.handle_packet(Packet::new(flow, kind), now);
        }
        prop_assert!(s.closed <= s.established);
        // 1 listener + at most one conn per live flow.
        prop_assert!(s.socket_count() <= 1 + s.established as usize);
    }

    /// Longest-prefix-match demux agrees with a brute-force oracle over
    /// random filter sets.
    #[test]
    fn classify_matches_oracle(
        masks in prop::collection::vec((0u32..256, 0u8..=32), 1..6),
        probe in 0u32..256,
    ) {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let mut filters: Vec<(CidrFilter, SockId)> = Vec::new();
        for (host, len) in masks {
            let f = CidrFilter::new(IpAddr(0x0a000000 + host), len);
            let id = s.listen(80, f, None, 4, 4, false);
            filters.push((f, id));
        }
        let addr = IpAddr(0x0a000000 + probe);
        let pkt = Packet::new(FlowKey::new(addr, 1, 80), PacketKind::Syn);
        let got = s.classify(&pkt);
        // Oracle: the first-inserted listener among those with the longest
        // matching mask.
        let oracle = filters
            .iter()
            .filter(|(f, _)| f.matches(addr))
            .max_by(|(a, _), (b, _)| {
                a.specificity()
                    .cmp(&b.specificity())
            })
            .map(|&(f, _)| f.specificity());
        match (got, oracle) {
            (Demux::Listen(id), Some(best_len)) => {
                // The chosen socket's filter must match with the best
                // specificity.
                let chosen = filters.iter().find(|(_, s)| *s == id).unwrap().0;
                prop_assert!(chosen.matches(addr));
                prop_assert_eq!(chosen.specificity(), best_len);
            }
            (Demux::NoMatch, None) => {}
            other => prop_assert!(false, "mismatch: {other:?}"),
        }
    }

    /// A well-formed handshake + request + close sequence always yields
    /// exactly one established and one closed connection, regardless of
    /// interleaved garbage traffic from other flows.
    #[test]
    fn clean_connection_survives_noise(
        noise in prop::collection::vec((arb_flow(), arb_kind()), 0..100)
    ) {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let l = s.listen(80, CidrFilter::any(), None, 64, 64, false);
        // The clean flow uses an address outside the noise range.
        let f = FlowKey::new(IpAddr::new(99, 9, 9, 9), 1234, 80);
        let mut now = Nanos::ZERO;
        let mut noise_iter = noise.into_iter();
        let mut feed_noise = |s: &mut NetStack, now: Nanos| {
            if let Some((flow, kind)) = noise_iter.next() {
                let _ = s.handle_packet(Packet::new(flow, kind), now);
            }
        };
        s.handle_packet(Packet::new(f, PacketKind::Syn), now);
        feed_noise(&mut s, now);
        now += Nanos::from_micros(50);
        s.handle_packet(Packet::new(f, PacketKind::Ack), now);
        feed_noise(&mut s, now);
        let conn = s.accept(l);
        prop_assert!(conn.is_some());
        let conn = conn.unwrap();
        s.handle_packet(Packet::new(f, PacketKind::Data { bytes: 100 }), now);
        feed_noise(&mut s, now);
        let (bytes, eof) = s.read(conn);
        prop_assert_eq!(bytes, 100);
        prop_assert!(!eof);
        let fin = s.close(conn);
        prop_assert!(fin.is_some());
    }

    /// SYN-queue occupancy never exceeds the configured backlog.
    #[test]
    fn syn_queue_bounded(
        hosts in prop::collection::vec(0u32..64, 1..200),
        backlog in 1usize..16,
    ) {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let l = s.listen(80, CidrFilter::any(), None, backlog, 4, false);
        for (i, h) in hosts.iter().enumerate() {
            let f = FlowKey::new(IpAddr(0x0a000000 + h), 2000 + i as u16, 80);
            s.handle_packet(Packet::new(f, PacketKind::Syn), Nanos::from_micros(i as u64));
            prop_assert!(s.syn_queue_len(l) <= backlog);
        }
    }
}
