//! Property tests for the CIDR filter namespace (§4.8) as early
//! demultiplexing uses it: overlapping filters resolve by longest
//! prefix, port sharing never misroutes, and every packet lands on
//! exactly one container (or the default listener's).

use proptest::prelude::*;
use rescon::{Attributes, ContainerId, ContainerTable};
use simcore::Nanos;
use simnet::{CidrFilter, Demux, FlowKey, IpAddr, NetStack, Packet, PacketKind, SockId};

/// Random filters drawn from a handful of overlapping prefix families so
/// collisions (same prefix, nested prefixes, adjacent blocks) are common
/// rather than astronomically rare.
fn arb_filter() -> impl Strategy<Value = CidrFilter> {
    (0u32..4, 0u32..4, 0u8..=32).prop_map(|(a, b, len)| {
        CidrFilter::new(
            IpAddr::new(10 + a as u8, (b * 64) as u8, (a * 16 + b) as u8, 1),
            len,
        )
    })
}

/// Like [`arb_filter`] but never the match-everything mask, so these
/// are always more specific than a default listener.
fn arb_specific_filter() -> impl Strategy<Value = CidrFilter> {
    (0u32..4, 0u32..4, 1u8..=32).prop_map(|(a, b, len)| {
        CidrFilter::new(
            IpAddr::new(10 + a as u8, (b * 64) as u8, (a * 16 + b) as u8, 1),
            len,
        )
    })
}

fn arb_probe() -> impl Strategy<Value = IpAddr> {
    (0u32..4, 0u32..4, 0u32..256)
        .prop_map(|(a, b, d)| IpAddr::new(10 + a as u8, (b * 64) as u8, 0, d as u8))
}

fn syn(addr: IpAddr, port: u16) -> Packet {
    Packet::new(FlowKey::new(addr, 1234, port), PacketKind::Syn)
}

/// The listener the stack *should* pick among `filters` (in insertion
/// order): the first-inserted one with the longest matching prefix.
fn oracle_winner(filters: &[(CidrFilter, SockId)], addr: IpAddr) -> Option<SockId> {
    let mut best: Option<(u8, SockId)> = None;
    for &(f, id) in filters {
        if !f.matches(addr) {
            continue;
        }
        match best {
            Some((bs, _)) if f.specificity() <= bs => {}
            _ => best = Some((f.specificity(), id)),
        }
    }
    best.map(|(_, id)| id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Among arbitrarily overlapping filters on one port, the winner is
    /// always the first-inserted listener with the longest matching
    /// prefix — not merely *a* listener of the right specificity.
    #[test]
    fn overlapping_filters_resolve_to_longest_prefix(
        filters in prop::collection::vec(arb_filter(), 1..8),
        probe in arb_probe(),
    ) {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let installed: Vec<(CidrFilter, SockId)> = filters
            .iter()
            .map(|&f| (f, s.listen(80, f, None, 4, 4, false)))
            .collect();
        let got = s.classify(&syn(probe, 80));
        match (got, oracle_winner(&installed, probe)) {
            (Demux::Listen(id), Some(want)) => prop_assert_eq!(id, want),
            (Demux::NoMatch, None) => {}
            other => prop_assert!(false, "stack and oracle disagree: {other:?}"),
        }
    }

    /// Filters installed on several ports never misroute: a packet only
    /// ever classifies to a listener on its own destination port, and
    /// that listener's filter really matches the source.
    #[test]
    fn port_sharing_never_misroutes(
        per_port in prop::collection::vec((prop::sample::select(vec![80u16, 81, 8080]), arb_filter()), 1..10),
        probe in arb_probe(),
        dst in prop::sample::select(vec![80u16, 81, 8080, 9999]),
    ) {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let mut by_sock: Vec<(SockId, u16, CidrFilter)> = Vec::new();
        for &(port, f) in &per_port {
            let id = s.listen(port, f, None, 4, 4, false);
            by_sock.push((id, port, f));
        }
        match s.classify(&syn(probe, dst)) {
            Demux::Listen(id) => {
                let (_, port, f) = *by_sock.iter().find(|(s, _, _)| *s == id).unwrap();
                prop_assert_eq!(port, dst, "listener on port {} got a packet for port {}", port, dst);
                prop_assert!(f.matches(probe), "filter {:?} does not match {}", f, probe);
            }
            Demux::NoMatch => {
                // Fine only if genuinely nothing on that port matches.
                prop_assert!(
                    by_sock.iter().all(|(_, p, f)| *p != dst || !f.matches(probe)),
                    "NoMatch although a filter on port {} matches {}", dst, probe
                );
            }
            Demux::Conn(_) => prop_assert!(false, "no connections exist"),
        }
    }

    /// With a default (match-all) listener installed, every packet
    /// classifies to exactly one container: a specific filter's when one
    /// matches, the default's otherwise — never neither, never an
    /// unrelated one.
    #[test]
    fn every_packet_lands_on_one_container_or_default(
        filters in prop::collection::vec(arb_specific_filter(), 0..6),
        probe in arb_probe(),
    ) {
        let mut table = ContainerTable::new();
        let mut s = NetStack::new(Nanos::from_secs(5));
        let default_c = table.create(None, Attributes::time_shared(10)).unwrap();
        let specific: Vec<(CidrFilter, ContainerId)> = filters
            .iter()
            .map(|&f| {
                let c = table.create(None, Attributes::time_shared(10)).unwrap();
                s.listen(80, f, Some(c), 4, 4, false);
                (f, c)
            })
            .collect();
        s.listen(80, CidrFilter::any(), Some(default_c), 4, 4, false);

        let demux = s.classify(&syn(probe, 80));
        let Demux::Listen(id) = demux else {
            prop_assert!(false, "no listener selected despite a default: {demux:?}");
            unreachable!();
        };
        let got = s.container_of(id).expect("every listener has a container");
        let any_specific = specific.iter().any(|(f, _)| f.matches(probe));
        if any_specific {
            prop_assert!(
                specific.iter().any(|&(f, c)| c == got && f.matches(probe)),
                "winner's container is not one whose filter matches"
            );
            prop_assert!(got != default_c, "default won although a specific filter matches");
        } else {
            prop_assert_eq!(got, default_c);
        }
    }
}
