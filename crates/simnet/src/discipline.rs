//! The three protocol-processing disciplines the paper compares.

/// Where, when, and on whose account received-packet protocol processing
/// runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetDiscipline {
    /// Classic BSD behaviour (§3.2): all protocol processing runs eagerly
    /// at software-interrupt level — strictly above any user code — and is
    /// charged to no resource principal ("or to the unlucky process
    /// running at the time").
    Interrupt,
    /// Lazy Receiver Processing (§3.2): packets are classified early and
    /// queued per receiving *process*; protocol processing happens at the
    /// process's scheduling priority and is charged to the process.
    Lrp,
    /// The paper's extension (§4.7): packets are classified early to the
    /// owning *resource container*; protocol processing happens in
    /// container-priority order and is charged to the container.
    Container,
}

impl NetDiscipline {
    /// Returns `true` if this discipline defers protocol processing to a
    /// schedulable context (LRP-style), rather than doing it at interrupt
    /// level.
    pub fn is_lazy(self) -> bool {
        !matches!(self, NetDiscipline::Interrupt)
    }

    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            NetDiscipline::Interrupt => "interrupt",
            NetDiscipline::Lrp => "lrp",
            NetDiscipline::Container => "container",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laziness() {
        assert!(!NetDiscipline::Interrupt.is_lazy());
        assert!(NetDiscipline::Lrp.is_lazy());
        assert!(NetDiscipline::Container.is_lazy());
    }

    #[test]
    fn names_unique() {
        let names = [
            NetDiscipline::Interrupt.name(),
            NetDiscipline::Lrp.name(),
            NetDiscipline::Container.name(),
        ];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
