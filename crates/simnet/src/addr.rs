//! Addresses and the paper's filter namespace (§4.8).
//!
//! "We define a new sockaddr namespace that includes a 'filter' specifying
//! a set of foreign addresses ... Filters are specified as tuples
//! consisting of a template address and a CIDR network mask."

/// An IPv4-style 32-bit address.
///
/// # Examples
///
/// ```
/// use simnet::IpAddr;
///
/// let a = IpAddr::new(10, 0, 3, 7);
/// assert_eq!(a.octets(), (10, 0, 3, 7));
/// assert_eq!(format!("{a}"), "10.0.3.7");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets.
    pub const fn octets(self) -> (u8, u8, u8, u8) {
        (
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        )
    }
}

impl std::fmt::Display for IpAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (a, b, c, d) = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// A `<template-address, CIDR-mask>` filter over foreign addresses (§4.8).
///
/// A filter with mask length `m` matches addresses whose top `m` bits equal
/// the template's. Longer masks are more specific and win demultiplexing
/// ties; `mask_len == 0` matches everything (the default listener).
///
/// # Examples
///
/// ```
/// use simnet::{CidrFilter, IpAddr};
///
/// let attackers = CidrFilter::new(IpAddr::new(192, 168, 0, 0), 16);
/// assert!(attackers.matches(IpAddr::new(192, 168, 44, 1)));
/// assert!(!attackers.matches(IpAddr::new(10, 0, 0, 1)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CidrFilter {
    /// Template address whose top `mask_len` bits are significant.
    pub template: IpAddr,
    /// Number of significant leading bits, `0..=32`.
    pub mask_len: u8,
}

impl CidrFilter {
    /// Creates a filter; mask lengths above 32 are clamped to 32.
    pub fn new(template: IpAddr, mask_len: u8) -> Self {
        CidrFilter {
            template,
            mask_len: mask_len.min(32),
        }
    }

    /// The match-everything filter.
    pub fn any() -> Self {
        CidrFilter::new(IpAddr(0), 0)
    }

    /// Returns the bit mask implied by the mask length.
    pub fn mask(self) -> u32 {
        if self.mask_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.mask_len as u32)
        }
    }

    /// Returns `true` if `addr` falls inside the filter.
    pub fn matches(self, addr: IpAddr) -> bool {
        (addr.0 & self.mask()) == (self.template.0 & self.mask())
    }

    /// Specificity for longest-prefix-match ordering.
    pub fn specificity(self) -> u8 {
        self.mask_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octets_roundtrip() {
        let a = IpAddr::new(1, 2, 3, 4);
        assert_eq!(a.octets(), (1, 2, 3, 4));
        assert_eq!(a.to_string(), "1.2.3.4");
    }

    #[test]
    fn any_matches_everything() {
        let f = CidrFilter::any();
        assert!(f.matches(IpAddr(0)));
        assert!(f.matches(IpAddr(u32::MAX)));
        assert_eq!(f.specificity(), 0);
    }

    #[test]
    fn host_filter_matches_exactly_one() {
        let h = IpAddr::new(10, 1, 2, 3);
        let f = CidrFilter::new(h, 32);
        assert!(f.matches(h));
        assert!(!f.matches(IpAddr::new(10, 1, 2, 4)));
    }

    #[test]
    fn prefix_match_boundaries() {
        let f = CidrFilter::new(IpAddr::new(172, 16, 0, 0), 12);
        assert!(f.matches(IpAddr::new(172, 16, 0, 1)));
        assert!(f.matches(IpAddr::new(172, 31, 255, 255)));
        assert!(!f.matches(IpAddr::new(172, 32, 0, 0)));
        assert!(!f.matches(IpAddr::new(172, 15, 255, 255)));
    }

    #[test]
    fn mask_len_clamped() {
        let f = CidrFilter::new(IpAddr(0), 64);
        assert_eq!(f.mask_len, 32);
        assert_eq!(f.mask(), u32::MAX);
    }

    #[test]
    fn mask_values() {
        assert_eq!(CidrFilter::new(IpAddr(0), 0).mask(), 0);
        assert_eq!(CidrFilter::new(IpAddr(0), 8).mask(), 0xFF00_0000);
        assert_eq!(CidrFilter::new(IpAddr(0), 24).mask(), 0xFFFF_FF00);
        assert_eq!(CidrFilter::new(IpAddr(0), 32).mask(), u32::MAX);
    }

    /// Oracle check: filter matching agrees with a bit-by-bit comparison.
    #[test]
    fn matches_agrees_with_naive_oracle() {
        let cases = [
            (IpAddr::new(10, 0, 0, 0), 8u8, IpAddr::new(10, 200, 1, 2)),
            (IpAddr::new(10, 0, 0, 0), 8, IpAddr::new(11, 0, 0, 0)),
            (IpAddr::new(192, 168, 4, 0), 30, IpAddr::new(192, 168, 4, 3)),
            (IpAddr::new(192, 168, 4, 0), 30, IpAddr::new(192, 168, 4, 4)),
        ];
        for (tpl, len, probe) in cases {
            let f = CidrFilter::new(tpl, len);
            let naive = (0..len as u32).all(|i| {
                let bit = 31 - i;
                ((tpl.0 >> bit) & 1) == ((probe.0 >> bit) & 1)
            });
            assert_eq!(f.matches(probe), naive, "{tpl}/{len} vs {probe}");
        }
    }
}
