//! Per-principal pending-packet queues for lazy protocol processing
//! (paper §4.7).
//!
//! Under LRP-style disciplines, the interrupt handler only *classifies* a
//! packet and appends it to the queue of its resource principal (a process
//! under LRP, a container under resource containers). A kernel thread later
//! drains the queues **in priority order of the principals** and performs
//! the actual protocol processing on the principal's account. Queues are
//! bounded: when a principal's queue is full the packet is dropped at
//! classification time, for early discard of excess traffic under overload
//! ("excess traffic is discarded early").

use std::collections::{BTreeMap, VecDeque};

use crate::packet::Packet;

/// Bounded per-principal FIFO queues of unprocessed packets.
///
/// `P` is the principal key (process id or container id). Iteration order
/// is deterministic (`BTreeMap`).
///
/// # Examples
///
/// ```
/// use simnet::{FlowKey, IpAddr, Packet, PacketKind, PendingQueues};
///
/// let mut q: PendingQueues<u32> = PendingQueues::new(2);
/// let f = FlowKey::new(IpAddr::new(1, 1, 1, 1), 9, 80);
/// let p = Packet::new(f, PacketKind::Syn);
/// assert!(q.push(7, p));
/// assert!(q.push(7, p));
/// assert!(!q.push(7, p)); // over capacity: early drop
/// assert_eq!(q.pending_principals(), vec![7]);
/// ```
#[derive(Clone, Debug)]
pub struct PendingQueues<P: Ord + Copy> {
    queues: BTreeMap<P, VecDeque<Packet>>,
    capacity: usize,
    dropped: u64,
    drops_by_principal: BTreeMap<P, u64>,
    queued: u64,
}

impl<P: Ord + Copy> PendingQueues<P> {
    /// Creates queues with the given per-principal capacity.
    pub fn new(capacity: usize) -> Self {
        PendingQueues {
            queues: BTreeMap::new(),
            capacity: capacity.max(1),
            dropped: 0,
            drops_by_principal: BTreeMap::new(),
            queued: 0,
        }
    }

    /// Appends a packet to `principal`'s queue. Returns `false` (and
    /// counts an early drop against `principal`) if the queue is full.
    pub fn push(&mut self, principal: P, packet: Packet) -> bool {
        let q = self.queues.entry(principal).or_default();
        if q.len() >= self.capacity {
            self.dropped += 1;
            *self.drops_by_principal.entry(principal).or_insert(0) += 1;
            return false;
        }
        q.push_back(packet);
        self.queued += 1;
        true
    }

    /// Removes and returns the oldest packet of the highest-ranked
    /// principal, where rank is supplied by `priority` (higher value =
    /// served first). Ties go to the smaller principal key.
    pub fn pop_highest(&mut self, mut priority: impl FnMut(P) -> u32) -> Option<(P, Packet)> {
        let mut best: Option<(u32, P)> = None;
        for (&p, q) in &self.queues {
            if q.is_empty() {
                continue;
            }
            let rank = priority(p);
            let better = match best {
                None => true,
                Some((br, _)) => rank > br,
            };
            if better {
                best = Some((rank, p));
            }
        }
        let (_, p) = best?;
        let pkt = self
            .queues
            .get_mut(&p)
            .and_then(|q| q.pop_front())
            .expect("picked principal has a packet");
        Some((p, pkt))
    }

    /// Returns the principal [`Self::pop_highest`] would serve next,
    /// without removing anything.
    pub fn peek_highest(&self, mut priority: impl FnMut(P) -> u32) -> Option<P> {
        let mut best: Option<(u32, P)> = None;
        for (&p, q) in &self.queues {
            if q.is_empty() {
                continue;
            }
            let rank = priority(p);
            let better = match best {
                None => true,
                Some((br, _)) => rank > br,
            };
            if better {
                best = Some((rank, p));
            }
        }
        best.map(|(_, p)| p)
    }

    /// Returns the principals that currently have pending packets, in key
    /// order.
    pub fn pending_principals(&self) -> Vec<P> {
        self.queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&p, _)| p)
            .collect()
    }

    /// Returns the number of pending packets for `principal`.
    pub fn len_of(&self, principal: P) -> usize {
        self.queues.get(&principal).map(|q| q.len()).unwrap_or(0)
    }

    /// Returns the total number of pending packets.
    pub fn total_len(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// Returns `true` if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    /// Drops a principal's queue entirely (principal destroyed). Returns
    /// the number of packets discarded.
    pub fn remove_principal(&mut self, principal: P) -> usize {
        self.queues.remove(&principal).map(|q| q.len()).unwrap_or(0)
    }

    /// Total packets dropped at classification time (queue full).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets dropped at classification time because `principal`'s own
    /// queue was full — the charge record that makes the attacker-pays
    /// invariant assertable: each early drop is billed to the principal
    /// the packet classified to, never to whoever shares the interface.
    pub fn dropped_of(&self, principal: P) -> u64 {
        self.drops_by_principal
            .get(&principal)
            .copied()
            .unwrap_or(0)
    }

    /// Per-principal early-drop counts, in key order.
    pub fn drops_by_principal(&self) -> impl Iterator<Item = (P, u64)> + '_ {
        self.drops_by_principal.iter().map(|(&p, &n)| (p, n))
    }

    /// Total packets ever queued successfully.
    pub fn queued(&self) -> u64 {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::IpAddr;
    use crate::packet::{FlowKey, PacketKind};

    fn pkt(n: u8) -> Packet {
        Packet::new(
            FlowKey::new(IpAddr::new(1, 1, 1, n), 1000, 80),
            PacketKind::Syn,
        )
    }

    #[test]
    fn fifo_within_principal() {
        let mut q: PendingQueues<u32> = PendingQueues::new(10);
        q.push(1, pkt(1));
        q.push(1, pkt(2));
        let (_, a) = q.pop_highest(|_| 1).unwrap();
        let (_, b) = q.pop_highest(|_| 1).unwrap();
        assert_eq!(a, pkt(1));
        assert_eq!(b, pkt(2));
    }

    #[test]
    fn priority_order_between_principals() {
        let mut q: PendingQueues<u32> = PendingQueues::new(10);
        q.push(1, pkt(1));
        q.push(2, pkt(2));
        q.push(3, pkt(3));
        // Principal 2 has the highest priority.
        let prio = |p: u32| match p {
            2 => 30,
            3 => 20,
            _ => 10,
        };
        assert_eq!(q.pop_highest(prio).unwrap().0, 2);
        assert_eq!(q.pop_highest(prio).unwrap().0, 3);
        assert_eq!(q.pop_highest(prio).unwrap().0, 1);
        assert!(q.pop_highest(prio).is_none());
    }

    #[test]
    fn tie_goes_to_smaller_key() {
        let mut q: PendingQueues<u32> = PendingQueues::new(10);
        q.push(9, pkt(9));
        q.push(4, pkt(4));
        assert_eq!(q.pop_highest(|_| 5).unwrap().0, 4);
    }

    #[test]
    fn capacity_enforced_per_principal() {
        let mut q: PendingQueues<u32> = PendingQueues::new(2);
        assert!(q.push(1, pkt(1)));
        assert!(q.push(1, pkt(2)));
        assert!(!q.push(1, pkt(3)));
        // Another principal still has room.
        assert!(q.push(2, pkt(4)));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.queued(), 3);
        assert_eq!(q.len_of(1), 2);
        assert_eq!(q.total_len(), 3);
    }

    #[test]
    fn drops_are_counted_per_principal() {
        let mut q: PendingQueues<u32> = PendingQueues::new(1);
        // Principal 1 overflows twice, principal 2 once, principal 3 never.
        assert!(q.push(1, pkt(1)));
        assert!(!q.push(1, pkt(2)));
        assert!(!q.push(1, pkt(3)));
        assert!(q.push(2, pkt(4)));
        assert!(!q.push(2, pkt(5)));
        assert!(q.push(3, pkt(6)));
        assert_eq!(q.dropped(), 3);
        assert_eq!(q.dropped_of(1), 2);
        assert_eq!(q.dropped_of(2), 1);
        assert_eq!(q.dropped_of(3), 0);
        assert_eq!(q.dropped_of(99), 0);
        let per: Vec<(u32, u64)> = q.drops_by_principal().collect();
        assert_eq!(per, vec![(1, 2), (2, 1)]);
        // The global counter is exactly the per-principal sum.
        assert_eq!(q.dropped(), per.iter().map(|(_, n)| n).sum::<u64>());
    }

    #[test]
    fn remove_principal_discards() {
        let mut q: PendingQueues<u32> = PendingQueues::new(10);
        q.push(1, pkt(1));
        q.push(1, pkt(2));
        assert_eq!(q.remove_principal(1), 2);
        assert!(q.is_empty());
        assert_eq!(q.remove_principal(1), 0);
    }

    #[test]
    fn pending_principals_sorted() {
        let mut q: PendingQueues<u32> = PendingQueues::new(10);
        q.push(5, pkt(5));
        q.push(2, pkt(2));
        q.push(8, pkt(8));
        assert_eq!(q.pending_principals(), vec![2, 5, 8]);
    }
}
