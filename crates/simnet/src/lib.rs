//! Simulated TCP/IP subsystem for the resource-container kernel.
//!
//! This crate models exactly the slice of a network stack that the paper's
//! evaluation exercises:
//!
//! - [`addr`]: IPv4-style addresses and the paper's new `sockaddr`
//!   namespace — `<template-address, CIDR-mask>` filters that let several
//!   listening sockets share a port while segregating clients (§4.8).
//! - [`packet`]: SYN / SYN-ACK / ACK / DATA / FIN packets on flows.
//! - [`stack`]: the socket table — listening sockets with SYN and accept
//!   queues (with overflow counting and drop notification, §5.7),
//!   established connections with a simplified TCP state machine, and
//!   longest-prefix-match demultiplexing.
//! - [`queues`]: per-principal pending-packet queues for LRP-style lazy
//!   protocol processing (§4.7): packets are classified early, then
//!   processed in priority order of their resource principal and charged
//!   to it.
//! - [`discipline`]: the three processing disciplines compared in the
//!   paper — eager interrupt-level processing (classic BSD), LRP with
//!   per-process queues, and resource-container queues.
//! - [`txsched`]: the transmit side — a finite-bandwidth link model with
//!   FIFO and hierarchical weighted-fair queueing disciplines driven by
//!   the containers' network QoS attributes (§4.1).
//!
//! The crate is *passive*: it performs state transitions and reports
//! [`stack::NetEvent`]s; all CPU-cost charging and scheduling decisions
//! happen in the `simos` kernel that drives it.

pub mod addr;
pub mod discipline;
pub mod packet;
pub mod queues;
pub mod stack;
pub mod txsched;

pub use addr::{CidrFilter, IpAddr};
pub use discipline::NetDiscipline;
pub use packet::{rss_cpu, FlowKey, Packet, PacketKind};
pub use queues::PendingQueues;
pub use stack::{ConnState, Demux, NetEvent, NetStack, SockId, Socket, SocketKind};
pub use txsched::{Dispatch, FifoLink, LinkParams, LinkSched, QdiscKind, TxSnapshot, WfqLink};
