//! Transmit link scheduling: a finite-bandwidth NIC model with pluggable
//! queueing disciplines.
//!
//! The paper's container attributes include network QoS values (§4.1,
//! §4.6); this module is where they bite on the *transmit* side. Outbound
//! packets are enqueued per owning container and dispatched onto a
//! finite-bandwidth wire by a queueing discipline:
//!
//! - [`FifoLink`]: a single queue in arrival order — the "unmodified
//!   kernel" baseline, where one blasting principal starves everyone.
//! - [`WfqLink`]: hierarchical weighted-fair queueing. Every container is
//!   a class in a tree mirroring the container hierarchy; at each node the
//!   link's bandwidth is divided among *active* children in proportion to
//!   their `NetQos.weight`, recursively — the same parent/child
//!   interpretation the multi-level CPU scheduler gives fixed shares.
//!   Virtual time follows the repo-wide pass/vtime pattern
//!   (`sched::multilevel`, `simdisk::ShareIoSched`): each class keeps a
//!   *pass* advanced by `wire_time / weight` per packet served; the
//!   lowest pass wins (smallest class id breaks ties); a class waking
//!   from idle rejoins at `max(pass, node vtime)` so sleepers cannot hoard
//!   credit. Optional per-class rate caps are token buckets over wire
//!   time, applied to the whole subtree below the capped class.
//!
//! The scheduler is *passive* and knows nothing about sockets or
//! containers beyond opaque class ids: the kernel resolves the owning
//! container, computes wire time from [`LinkParams`], enqueues, and asks
//! for the next dispatch whenever the wire goes idle.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use simcore::Nanos;

use crate::packet::Packet;

/// A class's position in the scheduling hierarchy: `(class id, weight,
/// rate cap in bits/sec)`, root first, owning class last.
pub type TxPath = [(u64, u32, Option<u64>)];

/// Token-bucket burst allowance for rate-capped classes, in wire bytes:
/// two full-size frames, so a capped class can always make progress
/// without ever sustaining more than its configured rate.
const BURST_WIRE_BYTES: u64 = 2 * 1500;

/// Which queueing discipline the link runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QdiscKind {
    /// Single arrival-order queue, no isolation (baseline).
    Fifo,
    /// Hierarchical weighted-fair queueing over the container tree.
    Wfq,
}

/// Static parameters of the simulated transmit link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkParams {
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// Queueing discipline.
    pub qdisc: QdiscKind,
}

impl LinkParams {
    /// Creates link parameters; a zero bandwidth is rejected.
    pub fn new(bandwidth_bps: u64, qdisc: QdiscKind) -> Self {
        assert!(bandwidth_bps > 0, "link bandwidth must be nonzero");
        LinkParams {
            bandwidth_bps,
            qdisc,
        }
    }

    /// A 100 Mbit/s WFQ link — a convenient default for experiments.
    pub fn mbit100() -> Self {
        LinkParams::new(100_000_000, QdiscKind::Wfq)
    }

    /// Time `wire_bytes` occupy the wire at this line rate, rounded up.
    pub fn wire_time(&self, wire_bytes: u64) -> Nanos {
        let bits = (wire_bytes as u128) * 8 * 1_000_000_000;
        let ns = bits.div_ceil(self.bandwidth_bps as u128);
        Nanos::from_nanos(ns as u64)
    }

    /// Builds the discipline this parameter set asks for.
    pub fn build_sched(&self) -> Box<dyn LinkSched> {
        match self.qdisc {
            QdiscKind::Fifo => Box::new(FifoLink::new()),
            QdiscKind::Wfq => Box::new(WfqLink::new()),
        }
    }
}

/// A packet waiting on (or selected from) the link queue.
#[derive(Clone, Debug)]
struct QueuedPkt {
    pkt: Packet,
    owner: u64,
    wire: Nanos,
    /// The full class chain the packet was enqueued under, kept so a
    /// mid-run discipline swap can replay the packet into the new
    /// discipline with its hierarchy intact.
    path: Vec<(u64, u32, Option<u64>)>,
    /// Per-discipline arrival sequence number; recovers global arrival
    /// order when draining a discipline that scatters packets across
    /// per-class queues.
    seq: u64,
}

/// A queued packet exported from a [`LinkSched`] by [`LinkSched::drain`]:
/// the policy-neutral state a mid-run qdisc swap carries across — what
/// the kernel enqueued (class chain, packet, wire time) and nothing the
/// discipline invented (passes, virtual times, token buckets).
#[derive(Clone, Debug)]
pub struct TxSnapshot {
    /// The owning class chain, root first (see [`TxPath`]).
    pub path: Vec<(u64, u32, Option<u64>)>,
    /// The queued packet.
    pub pkt: Packet,
    /// Time the packet will occupy the wire.
    pub wire: Nanos,
}

/// Outcome of asking the discipline for the next packet.
#[derive(Clone, Debug)]
pub enum Dispatch {
    /// Put this packet on the wire now.
    Start {
        /// The packet to transmit.
        pkt: Packet,
        /// Class (container) charged for the wire time.
        owner: u64,
        /// Time the packet occupies the wire.
        wire: Nanos,
    },
    /// Packets are queued but every eligible class is rate-capped;
    /// nothing can start before this time.
    Throttled(Nanos),
    /// The queue is empty.
    Idle,
}

/// A transmit queueing discipline.
///
/// All methods take `now` in virtual time; implementations must be
/// deterministic functions of the call sequence.
pub trait LinkSched {
    /// Short stable name for reports ("fifo" / "wfq").
    fn name(&self) -> &'static str;
    /// Queues a packet owned by the last class of `path`, which lists the
    /// owning class's chain from the hierarchy root (weights and rate
    /// caps are re-read on every enqueue, so attribute changes take
    /// effect at the next packet).
    fn enqueue(&mut self, path: &TxPath, pkt: Packet, wire: Nanos, now: Nanos);
    /// Picks the next packet to put on the wire.
    fn dispatch(&mut self, now: Nanos) -> Dispatch;
    /// Number of packets currently queued.
    fn queued_pkts(&self) -> usize;
    /// Removes and returns every queued packet in arrival order, as
    /// policy-neutral [`TxSnapshot`]s. Used by mid-run qdisc swaps: the
    /// detaching discipline drains here and the replacement re-enqueues
    /// each snapshot in order. Discipline ledgers (virtual times, passes,
    /// token buckets) do not cross the swap.
    fn drain(&mut self) -> Vec<TxSnapshot>;
}

/// The baseline: one queue, arrival order, rate caps ignored.
#[derive(Default)]
pub struct FifoLink {
    queue: VecDeque<QueuedPkt>,
    next_seq: u64,
}

impl FifoLink {
    /// Creates an empty FIFO link queue.
    pub fn new() -> Self {
        FifoLink::default()
    }
}

impl LinkSched for FifoLink {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn enqueue(&mut self, path: &TxPath, pkt: Packet, wire: Nanos, _now: Nanos) {
        let owner = path.last().map_or(0, |&(id, _, _)| id);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push_back(QueuedPkt {
            pkt,
            owner,
            wire,
            path: path.to_vec(),
            seq,
        });
    }

    fn dispatch(&mut self, _now: Nanos) -> Dispatch {
        match self.queue.pop_front() {
            Some(q) => Dispatch::Start {
                pkt: q.pkt,
                owner: q.owner,
                wire: q.wire,
            },
            None => Dispatch::Idle,
        }
    }

    fn queued_pkts(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<TxSnapshot> {
        self.queue
            .drain(..)
            .map(|q| TxSnapshot {
                path: q.path,
                pkt: q.pkt,
                wire: q.wire,
            })
            .collect()
    }
}

/// One class in the WFQ tree. A class holds its own packet FIFO (packets
/// whose owning container is this class) and competes for its parent's
/// bandwidth against its sibling classes; its own queue competes against
/// its active children as an implicit extra child of the same weight.
struct Class {
    parent: Option<u64>,
    weight: u32,
    rate_bps: Option<u64>,
    /// Pass of this class in its parent's competition.
    pass: f64,
    /// Virtual time of the competition among this class's children.
    vtime: f64,
    /// Pass of the implicit self-queue child in this class's competition.
    self_pass: f64,
    /// Children with queued work anywhere below them.
    active_children: BTreeSet<u64>,
    /// Packets owned directly by this class.
    queue: VecDeque<QueuedPkt>,
    /// Token bucket in bit-nanoseconds; `None` when uncapped.
    tokens: Option<u128>,
    /// Last time the bucket was refilled.
    refilled: Nanos,
}

impl Class {
    fn active(&self) -> bool {
        !self.queue.is_empty() || !self.active_children.is_empty()
    }
}

/// Hierarchical weighted-fair queueing over container classes.
pub struct WfqLink {
    classes: BTreeMap<u64, Class>,
    root: Option<u64>,
    queued: usize,
    next_seq: u64,
}

impl Default for WfqLink {
    fn default() -> Self {
        Self::new()
    }
}

/// Token math is done in bit-nanoseconds so refills stay exact integers:
/// a bucket holding `b` bits is `b * 1e9` bit-ns, and `dt` ns at `r`
/// bits/sec refills `dt * r` bit-ns.
fn burst_bitns() -> u128 {
    (BURST_WIRE_BYTES as u128) * 8 * 1_000_000_000
}

impl WfqLink {
    /// Creates an empty WFQ link scheduler.
    pub fn new() -> Self {
        WfqLink {
            classes: BTreeMap::new(),
            root: None,
            queued: 0,
            next_seq: 0,
        }
    }

    fn ensure_class(&mut self, id: u64, parent: Option<u64>, weight: u32, rate: Option<u64>) {
        let class = self.classes.entry(id).or_insert_with(|| Class {
            parent,
            weight,
            rate_bps: rate,
            pass: 0.0,
            vtime: 0.0,
            self_pass: 0.0,
            active_children: BTreeSet::new(),
            queue: VecDeque::new(),
            tokens: rate.map(|_| burst_bitns()),
            refilled: Nanos::ZERO,
        });
        class.parent = parent;
        class.weight = weight.max(1);
        if class.rate_bps != rate {
            class.rate_bps = rate;
            class.tokens = rate.map(|_| burst_bitns());
        }
    }

    fn refill(&mut self, id: u64, now: Nanos) {
        let class = self.classes.get_mut(&id).expect("live class");
        if let (Some(rate), Some(tokens)) = (class.rate_bps, class.tokens) {
            let dt = (now - class.refilled).as_nanos() as u128;
            class.tokens = Some(burst_bitns().min(tokens + dt * rate as u128));
            class.refilled = now;
        } else {
            class.refilled = now;
        }
    }

    /// Earliest time the class has `need` bit-ns of tokens, or `None`
    /// if it has them now. Call after [`WfqLink::refill`].
    fn ready_at(&self, id: u64, need: u128, now: Nanos) -> Option<Nanos> {
        let class = &self.classes[&id];
        match (class.rate_bps, class.tokens) {
            (Some(rate), Some(tokens)) if tokens < need => {
                let deficit = need - tokens;
                let wait = deficit.div_ceil(rate as u128);
                Some(now + Nanos::from_nanos(wait as u64))
            }
            _ => None,
        }
    }

    /// Marks `id` active in its parent's competition, propagating up.
    fn activate_up(&mut self, id: u64) {
        let mut cur = id;
        while let Some(parent) = self.classes[&cur].parent {
            if self.classes[&parent].active_children.contains(&cur) {
                break;
            }
            let parent_was_active = self.classes[&parent].active();
            // Rejoin rule: a class waking from idle resumes at the
            // current virtual time, never banking credit while asleep.
            let vtime = self.classes[&parent].vtime;
            let child = self.classes.get_mut(&cur).expect("live class");
            child.pass = child.pass.max(vtime);
            self.classes
                .get_mut(&parent)
                .expect("live class")
                .active_children
                .insert(cur);
            if parent_was_active {
                break;
            }
            cur = parent;
        }
    }

    /// Removes `id` from its parent's active set if it went idle,
    /// propagating up.
    fn deactivate_up(&mut self, id: u64) {
        let mut cur = id;
        while !self.classes[&cur].active() {
            match self.classes[&cur].parent {
                Some(parent) => {
                    self.classes
                        .get_mut(&parent)
                        .expect("live class")
                        .active_children
                        .remove(&cur);
                    cur = parent;
                }
                None => break,
            }
        }
    }

    /// Recursive pick: from `id`, follow lowest-pass candidates to a
    /// packet. Returns the chosen path (nodes visited, leaf last) or the
    /// earliest time the subtree becomes eligible.
    fn pick(&self, id: u64, now: Nanos) -> Result<Vec<u64>, Option<Nanos>> {
        let class = &self.classes[&id];
        // Candidates: active children, plus the self-queue as an implicit
        // child keyed by this class's own id (BTreeSet order keeps ties
        // deterministic; the self-queue wins pass ties against children
        // with larger ids and loses to smaller, which is stable and
        // fair-enough for an edge case strict mode mostly forbids).
        let mut candidates: Vec<(f64, u64, bool)> = Vec::new();
        if !class.queue.is_empty() {
            candidates.push((class.self_pass, id, true));
        }
        for &child in &class.active_children {
            candidates.push((self.classes[&child].pass, child, false));
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut earliest: Option<Nanos> = None;
        for (_, cand, is_self) in candidates {
            if is_self {
                let head = class.queue.front().expect("nonempty");
                let need = (head.pkt.wire_bytes() as u128) * 8 * 1_000_000_000;
                match self.subtree_ready(id, need, now) {
                    None => return Ok(vec![id]),
                    Some(t) => earliest = min_time(earliest, Some(t)),
                }
            } else {
                match self.pick(cand, now) {
                    Ok(mut path) => {
                        path.insert(0, id);
                        return Ok(path);
                    }
                    Err(t) => earliest = min_time(earliest, t),
                }
            }
        }
        Err(earliest)
    }

    /// Checks token buckets from `leaf` up to the root for `need`
    /// bit-ns; returns the earliest ready time if any bucket is short.
    fn subtree_ready(&self, leaf: u64, need: u128, now: Nanos) -> Option<Nanos> {
        let mut earliest: Option<Nanos> = None;
        let mut cur = Some(leaf);
        while let Some(c) = cur {
            earliest = min_time(earliest, self.ready_at(c, need, now));
            cur = self.classes[&c].parent;
        }
        earliest
    }
}

fn min_time(a: Option<Nanos>, b: Option<Nanos>) -> Option<Nanos> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl LinkSched for WfqLink {
    fn name(&self) -> &'static str {
        "wfq"
    }

    fn enqueue(&mut self, path: &TxPath, pkt: Packet, wire: Nanos, now: Nanos) {
        assert!(!path.is_empty(), "empty tx path");
        // Materialize / refresh the chain of classes.
        let mut parent = None;
        for &(id, weight, rate) in path {
            self.ensure_class(id, parent, weight, rate);
            self.refill(id, now);
            parent = Some(id);
        }
        if self.root.is_none() {
            self.root = Some(path[0].0);
        }
        let leaf = path.last().expect("nonempty").0;
        let seq = self.next_seq;
        self.next_seq += 1;
        let leaf_class = self.classes.get_mut(&leaf).expect("live class");
        let was_empty = leaf_class.queue.is_empty();
        leaf_class.queue.push_back(QueuedPkt {
            pkt,
            owner: leaf,
            wire,
            path: path.to_vec(),
            seq,
        });
        if was_empty {
            let vtime = self.classes[&leaf].vtime;
            let c = self.classes.get_mut(&leaf).expect("live class");
            c.self_pass = c.self_pass.max(vtime);
        }
        self.activate_up(leaf);
        self.queued += 1;
    }

    fn dispatch(&mut self, now: Nanos) -> Dispatch {
        let root = match self.root {
            Some(r) => r,
            None => return Dispatch::Idle,
        };
        if !self.classes[&root].active() {
            return Dispatch::Idle;
        }
        // Refill every capped class so eligibility reflects `now`.
        let capped: Vec<u64> = self
            .classes
            .iter()
            .filter(|(_, c)| c.rate_bps.is_some())
            .map(|(&id, _)| id)
            .collect();
        for id in capped {
            self.refill(id, now);
        }
        match self.pick(root, now) {
            Ok(path) => {
                let leaf = *path.last().expect("nonempty pick");
                let q = self
                    .classes
                    .get_mut(&leaf)
                    .expect("live class")
                    .queue
                    .pop_front()
                    .expect("picked class has a packet");
                self.queued -= 1;
                let wire_ns = q.wire.as_nanos() as f64;
                let need = (q.pkt.wire_bytes() as u128) * 8 * 1_000_000_000;
                // Advance virtual time along the chosen path: at each
                // node, the selected candidate's pass becomes the node's
                // vtime, then advances by wire / weight.
                for pair in path.windows(2) {
                    let (node, child) = (pair[0], pair[1]);
                    let child_pass = self.classes[&child].pass;
                    let weight = self.classes[&child].weight as f64;
                    self.classes.get_mut(&node).expect("live class").vtime = child_pass;
                    self.classes.get_mut(&child).expect("live class").pass =
                        child_pass + wire_ns / weight;
                }
                // Self-queue service at the leaf.
                {
                    let class = self.classes.get_mut(&leaf).expect("live class");
                    let pass = class.self_pass;
                    class.vtime = pass;
                    let weight = class.weight as f64;
                    class.self_pass = pass + wire_ns / weight;
                }
                // Spend tokens on every capped node of the chain.
                let mut cur = Some(leaf);
                while let Some(c) = cur {
                    let class = self.classes.get_mut(&c).expect("live class");
                    if let Some(tokens) = class.tokens {
                        class.tokens = Some(tokens.saturating_sub(need));
                    }
                    cur = class.parent;
                }
                self.deactivate_up(leaf);
                Dispatch::Start {
                    pkt: q.pkt,
                    owner: q.owner,
                    wire: q.wire,
                }
            }
            Err(Some(t)) => Dispatch::Throttled(t.max(now + Nanos::from_nanos(1))),
            // Active but nothing pickable and no ready time: impossible
            // for uncapped trees; be safe and retry shortly.
            Err(None) => Dispatch::Throttled(now + Nanos::from_nanos(1)),
        }
    }

    fn queued_pkts(&self) -> usize {
        self.queued
    }

    fn drain(&mut self) -> Vec<TxSnapshot> {
        let mut pkts: Vec<QueuedPkt> = self
            .classes
            .values_mut()
            .flat_map(|c| c.queue.drain(..))
            .collect();
        pkts.sort_by_key(|q| q.seq);
        // Everything else — classes, passes, virtual times, token
        // buckets — dies with this instance: the replacement discipline
        // rebuilds its tree from the replayed paths with fresh ledgers.
        self.classes.clear();
        self.root = None;
        self.queued = 0;
        pkts.into_iter()
            .map(|q| TxSnapshot {
                path: q.path,
                pkt: q.pkt,
                wire: q.wire,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::IpAddr;
    use crate::packet::{FlowKey, PacketKind};

    fn pkt(bytes: u32) -> Packet {
        Packet::new(
            FlowKey::new(IpAddr::new(10, 0, 0, 1), 4000, 80),
            PacketKind::Data { bytes },
        )
    }

    /// Drains the link: repeatedly dispatch, accumulating wire time per
    /// owner, simulating a saturated wire (next dispatch at completion).
    fn drain(sched: &mut dyn LinkSched, mut now: Nanos) -> BTreeMap<u64, Nanos> {
        let mut served = BTreeMap::new();
        loop {
            match sched.dispatch(now) {
                Dispatch::Start { owner, wire, .. } => {
                    *served.entry(owner).or_insert(Nanos::ZERO) += wire;
                    now += wire;
                }
                Dispatch::Throttled(t) => {
                    assert!(t > now, "throttle time must advance");
                    now = t;
                }
                Dispatch::Idle => return served,
            }
        }
    }

    #[test]
    fn wire_time_rounds_up() {
        let p = LinkParams::new(100_000_000, QdiscKind::Wfq);
        // 1500 bytes at 100 Mbit/s = 120 µs exactly.
        assert_eq!(p.wire_time(1500), Nanos::from_micros(120));
        // 1 byte = 80 ns.
        assert_eq!(p.wire_time(1), Nanos::from_nanos(80));
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let mut f = FifoLink::new();
        for owner in [7u64, 3, 7, 5] {
            f.enqueue(
                &[(1, 1, None), (owner, 1, None)],
                pkt(100),
                Nanos::from_micros(10),
                Nanos::ZERO,
            );
        }
        assert_eq!(f.queued_pkts(), 4);
        let mut order = Vec::new();
        while let Dispatch::Start { owner, .. } = f.dispatch(Nanos::ZERO) {
            order.push(owner);
        }
        assert_eq!(order, [7, 3, 7, 5]);
    }

    #[test]
    fn wfq_splits_by_weight_under_backlog() {
        let mut w = WfqLink::new();
        let wire = Nanos::from_micros(120);
        for _ in 0..300 {
            w.enqueue(&[(1, 1, None), (10, 3, None)], pkt(1460), wire, Nanos::ZERO);
            w.enqueue(&[(1, 1, None), (20, 1, None)], pkt(1460), wire, Nanos::ZERO);
        }
        // Serve only the first 200 packets so both classes stay
        // backlogged for everything we count.
        let mut served: BTreeMap<u64, u32> = BTreeMap::new();
        let mut now = Nanos::ZERO;
        for _ in 0..200 {
            match w.dispatch(now) {
                Dispatch::Start { owner, wire, .. } => {
                    *served.entry(owner).or_insert(0) += 1;
                    now += wire;
                }
                other => panic!("unexpected dispatch: {other:?}"),
            }
        }
        let heavy = served[&10] as f64;
        let light = served[&20] as f64;
        let frac = heavy / (heavy + light);
        assert!((frac - 0.75).abs() < 0.02, "3:1 weights served {frac}");
    }

    #[test]
    fn wfq_work_conserving_when_sibling_idle() {
        let mut w = WfqLink::new();
        let wire = Nanos::from_micros(10);
        for _ in 0..50 {
            w.enqueue(&[(1, 1, None), (20, 1, None)], pkt(100), wire, Nanos::ZERO);
        }
        let served = drain(&mut w, Nanos::ZERO);
        assert_eq!(served[&20], Nanos::from_micros(500));
    }

    #[test]
    fn wfq_sleeper_rejoins_without_banked_credit() {
        let mut w = WfqLink::new();
        let wire = Nanos::from_micros(10);
        // Class 10 runs alone for a long while.
        for _ in 0..100 {
            w.enqueue(&[(1, 1, None), (10, 1, None)], pkt(100), wire, Nanos::ZERO);
        }
        let mut now = Nanos::ZERO;
        for _ in 0..100 {
            if let Dispatch::Start { wire, .. } = w.dispatch(now) {
                now += wire;
            }
        }
        // Class 20 wakes: it must not get 100 packets of catch-up; under
        // equal weights the two alternate from here on.
        for _ in 0..20 {
            w.enqueue(&[(1, 1, None), (10, 1, None)], pkt(100), wire, now);
            w.enqueue(&[(1, 1, None), (20, 1, None)], pkt(100), wire, now);
        }
        let mut first_ten = Vec::new();
        for _ in 0..10 {
            if let Dispatch::Start { owner, wire, .. } = w.dispatch(now) {
                first_ten.push(owner);
                now += wire;
            }
        }
        let tens = first_ten.iter().filter(|&&o| o == 10).count();
        assert!(
            (4..=6).contains(&tens),
            "no alternation after wake: {first_ten:?}"
        );
    }

    #[test]
    fn wfq_hierarchy_splits_parent_share_among_children() {
        // Tree: root → A(weight 3) → {a1(1), a2(1)}, root → B(weight 1).
        // Backlogged everywhere: A's subtree gets 75%, split evenly
        // between a1 and a2; B gets 25%.
        let mut w = WfqLink::new();
        let wire = Nanos::from_micros(120);
        for _ in 0..400 {
            w.enqueue(
                &[(1, 1, None), (10, 3, None), (11, 1, None)],
                pkt(1460),
                wire,
                Nanos::ZERO,
            );
            w.enqueue(
                &[(1, 1, None), (10, 3, None), (12, 1, None)],
                pkt(1460),
                wire,
                Nanos::ZERO,
            );
            w.enqueue(&[(1, 1, None), (20, 1, None)], pkt(1460), wire, Nanos::ZERO);
        }
        let mut served: BTreeMap<u64, u32> = BTreeMap::new();
        let mut now = Nanos::ZERO;
        for _ in 0..400 {
            match w.dispatch(now) {
                Dispatch::Start { owner, wire, .. } => {
                    *served.entry(owner).or_insert(0) += 1;
                    now += wire;
                }
                other => panic!("unexpected dispatch: {other:?}"),
            }
        }
        let total: u32 = served.values().sum();
        let a = (served[&11] + served[&12]) as f64 / total as f64;
        let b = served[&20] as f64 / total as f64;
        assert!((a - 0.75).abs() < 0.02, "A subtree got {a}");
        assert!((b - 0.25).abs() < 0.02, "B got {b}");
        let a1 = served[&11] as f64 / (served[&11] + served[&12]) as f64;
        assert!((a1 - 0.5).abs() < 0.02, "a1 within A got {a1}");
    }

    #[test]
    fn wfq_rate_cap_throttles_and_recovers() {
        // Class 10 capped at 10 Mbit/s on an otherwise idle link: after
        // the burst allowance, packets are paced at the cap.
        let mut w = WfqLink::new();
        let wire = Nanos::from_micros(1); // wire is fast; the cap binds
        let cap = Some(10_000_000u64);
        for _ in 0..10 {
            w.enqueue(&[(1, 1, None), (10, 1, cap)], pkt(1460), wire, Nanos::ZERO);
        }
        let mut now = Nanos::ZERO;
        let mut sent = 0;
        let mut throttles = 0;
        while sent < 10 {
            match w.dispatch(now) {
                Dispatch::Start { wire, .. } => {
                    sent += 1;
                    now += wire;
                }
                Dispatch::Throttled(t) => {
                    throttles += 1;
                    assert!(t > now);
                    now = t;
                }
                Dispatch::Idle => panic!("queue went idle early"),
            }
        }
        assert!(throttles > 0, "cap never throttled");
        // 10 × 1500 wire bytes = 120000 bits; minus the 24000-bit burst,
        // 96000 bits must be paced at 10 Mbit/s ≈ 9.6 ms.
        assert!(
            now >= Nanos::from_micros(9600),
            "cap not enforced: finished at {now:?}"
        );
        assert!(matches!(w.dispatch(now), Dispatch::Idle));
    }

    #[test]
    fn wfq_uncapped_sibling_unaffected_by_capped_class() {
        let mut w = WfqLink::new();
        let wire = Nanos::from_micros(10);
        let cap = Some(1_000_000u64);
        for _ in 0..20 {
            w.enqueue(&[(1, 1, None), (10, 1, cap)], pkt(1460), wire, Nanos::ZERO);
            w.enqueue(&[(1, 1, None), (20, 1, None)], pkt(1460), wire, Nanos::ZERO);
        }
        // The uncapped class must be able to drain its 20 packets without
        // waiting on the capped sibling's pacing gaps.
        let mut now = Nanos::ZERO;
        let mut uncapped = 0;
        for _ in 0..200 {
            match w.dispatch(now) {
                Dispatch::Start { owner, wire, .. } => {
                    if owner == 20 {
                        uncapped += 1;
                    }
                    now += wire;
                }
                Dispatch::Throttled(t) => now = t,
                Dispatch::Idle => break,
            }
            if uncapped == 20 {
                break;
            }
        }
        assert_eq!(uncapped, 20);
        assert!(
            now < Nanos::from_millis(2),
            "uncapped class waited on the capped one: {now:?}"
        );
    }

    #[test]
    fn drain_recovers_arrival_order_and_replays_into_fresh_discipline() {
        let wire = Nanos::from_micros(10);
        let mut w = WfqLink::new();
        // Interleave three classes with distinct packet sizes so the
        // replayed order is checkable.
        for i in 0..12u32 {
            let owner = 10 + (i as u64 % 3);
            w.enqueue(
                &[(1, 1, None), (owner, 1, None)],
                pkt(100 + i),
                wire,
                Nanos::ZERO,
            );
        }
        let snaps = w.drain();
        assert_eq!(snaps.len(), 12);
        assert_eq!(w.queued_pkts(), 0);
        assert!(matches!(w.dispatch(Nanos::ZERO), Dispatch::Idle));
        // Arrival order recovered despite per-class scatter.
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.path.last().unwrap().0, 10 + (i as u64 % 3));
        }
        // Replay into a fresh FIFO: identical arrival order comes out.
        let mut f = FifoLink::new();
        for s in &snaps {
            f.enqueue(&s.path, s.pkt, s.wire, Nanos::ZERO);
        }
        let mut order = Vec::new();
        while let Dispatch::Start { owner, .. } = f.dispatch(Nanos::ZERO) {
            order.push(owner);
        }
        assert_eq!(
            order,
            snaps
                .iter()
                .map(|s| s.path.last().unwrap().0)
                .collect::<Vec<_>>()
        );
        // Replay into a fresh WFQ: still serves everything.
        let mut w2 = WfqLink::new();
        for s in snaps {
            w2.enqueue(&s.path, s.pkt, s.wire, Nanos::ZERO);
        }
        assert_eq!(w2.queued_pkts(), 12);
        let served = drain(&mut w2, Nanos::ZERO);
        assert_eq!(served.len(), 3);
    }

    #[test]
    fn dispatch_is_deterministic_across_identical_runs() {
        let build = || {
            let mut w = WfqLink::new();
            for i in 0..100u64 {
                let owner = 10 + (i % 3);
                w.enqueue(
                    &[(1, 1, None), (owner, (owner - 9) as u32, None)],
                    pkt(100 + (i as u32 % 7) * 100),
                    Nanos::from_micros(10 + i % 5),
                    Nanos::from_micros(i),
                );
            }
            w
        };
        let mut a = build();
        let mut b = build();
        let mut now = Nanos::from_micros(100);
        loop {
            let (da, db) = (a.dispatch(now), b.dispatch(now));
            match (da, db) {
                (
                    Dispatch::Start {
                        owner: oa,
                        wire: wa,
                        ..
                    },
                    Dispatch::Start {
                        owner: ob,
                        wire: wb,
                        ..
                    },
                ) => {
                    assert_eq!((oa, wa), (ob, wb));
                    now += wa;
                }
                (Dispatch::Idle, Dispatch::Idle) => break,
                (x, y) => panic!("diverged: {x:?} vs {y:?}"),
            }
        }
    }
}
