//! Packets and flows.
//!
//! The simulated server owns a single local address, so a flow is
//! identified by the foreign `(address, port)` pair plus the local port.

use crate::addr::IpAddr;

/// Identifies a TCP flow at the server: foreign endpoint + local port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    /// Foreign (client) address.
    pub src: IpAddr,
    /// Foreign (client) port.
    pub src_port: u16,
    /// Local (server) port.
    pub dst_port: u16,
}

impl FlowKey {
    /// Creates a flow key.
    pub fn new(src: IpAddr, src_port: u16, dst_port: u16) -> Self {
        FlowKey {
            src,
            src_port,
            dst_port,
        }
    }
}

/// Deterministic receive-side-scaling hash: maps a flow to the CPU that
/// takes its receive interrupt, spreading flows evenly while keeping
/// every segment of one flow on the same CPU (as NIC RSS does). With
/// `ncpus == 1` every flow maps to CPU 0, so uniprocessor runs are
/// unaffected by the existence of the hash.
pub fn rss_cpu(flow: &FlowKey, ncpus: u32) -> u32 {
    if ncpus <= 1 {
        return 0;
    }
    // FNV-1a over the flow tuple: stable across platforms and runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in flow
        .src
        .0
        .to_be_bytes()
        .into_iter()
        .chain(flow.src_port.to_be_bytes())
        .chain(flow.dst_port.to_be_bytes())
    {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % ncpus as u64) as u32
}

/// The kinds of TCP segment the simulation distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// Connection request.
    Syn,
    /// Server's handshake reply.
    SynAck,
    /// Handshake-completing (or plain) acknowledgement.
    Ack,
    /// Payload-carrying segment.
    Data {
        /// Payload bytes.
        bytes: u32,
    },
    /// Connection teardown.
    Fin,
    /// Reset (refused connection or aborted flow).
    Rst,
}

impl PacketKind {
    /// Payload bytes carried by this segment.
    pub fn payload_bytes(self) -> u32 {
        match self {
            PacketKind::Data { bytes } => bytes,
            _ => 0,
        }
    }
}

/// A TCP segment travelling in either direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// The flow the segment belongs to.
    pub flow: FlowKey,
    /// Segment type and payload.
    pub kind: PacketKind,
    /// Request span riding the segment (`0` = none). Outbound response
    /// data carries the request's span so the transmit path can
    /// attribute queueing and wire time; pure protocol segments (SYN,
    /// handshake replies, FIN, RST) carry none.
    pub span: u64,
}

impl Packet {
    /// Creates a packet with no request span.
    pub fn new(flow: FlowKey, kind: PacketKind) -> Self {
        Packet {
            flow,
            kind,
            span: 0,
        }
    }

    /// Stamps the packet with a request span id.
    pub fn with_span(mut self, span: u64) -> Self {
        self.span = span;
        self
    }

    /// Approximate bytes on the wire: 40-byte TCP/IP header plus payload.
    pub fn wire_bytes(self) -> u32 {
        40 + self.kind.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_bytes_only_for_data() {
        assert_eq!(PacketKind::Syn.payload_bytes(), 0);
        assert_eq!(PacketKind::Data { bytes: 1024 }.payload_bytes(), 1024);
        assert_eq!(PacketKind::Fin.payload_bytes(), 0);
    }

    #[test]
    fn wire_bytes_include_header() {
        let f = FlowKey::new(IpAddr::new(1, 1, 1, 1), 4000, 80);
        assert_eq!(Packet::new(f, PacketKind::Ack).wire_bytes(), 40);
        assert_eq!(
            Packet::new(f, PacketKind::Data { bytes: 1024 }).wire_bytes(),
            1064
        );
    }

    #[test]
    fn rss_is_deterministic_in_range_and_trivial_on_one_cpu() {
        let flows: Vec<FlowKey> = (0..32)
            .map(|i| FlowKey::new(IpAddr::new(10, 0, i, 1), 4000 + i as u16, 80))
            .collect();
        for f in &flows {
            assert_eq!(rss_cpu(f, 1), 0);
            let c = rss_cpu(f, 4);
            assert!(c < 4);
            assert_eq!(c, rss_cpu(f, 4));
        }
        // The hash actually spreads: 32 distinct flows over 4 CPUs must
        // hit more than one CPU.
        let distinct: std::collections::HashSet<u32> =
            flows.iter().map(|f| rss_cpu(f, 4)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn flow_keys_hashable_and_ordered() {
        let a = FlowKey::new(IpAddr::new(1, 0, 0, 1), 1, 80);
        let b = FlowKey::new(IpAddr::new(1, 0, 0, 2), 1, 80);
        assert!(a < b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&a));
        assert!(!set.contains(&b));
    }
}
