//! Packets and flows.
//!
//! The simulated server owns a single local address, so a flow is
//! identified by the foreign `(address, port)` pair plus the local port.

use crate::addr::IpAddr;

/// Identifies a TCP flow at the server: foreign endpoint + local port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    /// Foreign (client) address.
    pub src: IpAddr,
    /// Foreign (client) port.
    pub src_port: u16,
    /// Local (server) port.
    pub dst_port: u16,
}

impl FlowKey {
    /// Creates a flow key.
    pub fn new(src: IpAddr, src_port: u16, dst_port: u16) -> Self {
        FlowKey {
            src,
            src_port,
            dst_port,
        }
    }
}

/// The kinds of TCP segment the simulation distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// Connection request.
    Syn,
    /// Server's handshake reply.
    SynAck,
    /// Handshake-completing (or plain) acknowledgement.
    Ack,
    /// Payload-carrying segment.
    Data {
        /// Payload bytes.
        bytes: u32,
    },
    /// Connection teardown.
    Fin,
    /// Reset (refused connection or aborted flow).
    Rst,
}

impl PacketKind {
    /// Payload bytes carried by this segment.
    pub fn payload_bytes(self) -> u32 {
        match self {
            PacketKind::Data { bytes } => bytes,
            _ => 0,
        }
    }
}

/// A TCP segment travelling in either direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// The flow the segment belongs to.
    pub flow: FlowKey,
    /// Segment type and payload.
    pub kind: PacketKind,
}

impl Packet {
    /// Creates a packet.
    pub fn new(flow: FlowKey, kind: PacketKind) -> Self {
        Packet { flow, kind }
    }

    /// Approximate bytes on the wire: 40-byte TCP/IP header plus payload.
    pub fn wire_bytes(self) -> u32 {
        40 + self.kind.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_bytes_only_for_data() {
        assert_eq!(PacketKind::Syn.payload_bytes(), 0);
        assert_eq!(PacketKind::Data { bytes: 1024 }.payload_bytes(), 1024);
        assert_eq!(PacketKind::Fin.payload_bytes(), 0);
    }

    #[test]
    fn wire_bytes_include_header() {
        let f = FlowKey::new(IpAddr::new(1, 1, 1, 1), 4000, 80);
        assert_eq!(Packet::new(f, PacketKind::Ack).wire_bytes(), 40);
        assert_eq!(
            Packet::new(f, PacketKind::Data { bytes: 1024 }).wire_bytes(),
            1064
        );
    }

    #[test]
    fn flow_keys_hashable_and_ordered() {
        let a = FlowKey::new(IpAddr::new(1, 0, 0, 1), 1, 80);
        let b = FlowKey::new(IpAddr::new(1, 0, 0, 2), 1, 80);
        assert!(a < b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&a));
        assert!(!set.contains(&b));
    }
}
