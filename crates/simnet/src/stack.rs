//! The socket table: listeners, connections, and demultiplexing.
//!
//! This is a deliberately small TCP: a three-way handshake into bounded SYN
//! and accept queues, payload delivery, and FIN teardown. No sequence
//! numbers or retransmission — the paper's experiments run on a lossless
//! LAN, and the only loss that matters (SYN-queue overflow under flood,
//! §5.7) is modelled explicitly, including the paper's kernel modification
//! that *notifies the application* when a SYN is dropped.

use std::collections::{HashMap, VecDeque};

use rescon::ContainerId;
use simcore::span::{self, Outcome, Phase};
use simcore::trace::{self, TraceEventKind, NO_CONTAINER};
use simcore::{Arena, Idx, Nanos};

use crate::addr::{CidrFilter, IpAddr};
use crate::packet::{FlowKey, Packet, PacketKind};

/// Maximum segment payload used when chunking application writes.
pub const MSS: u32 = 1460;

/// Identifier of a socket; generation-checked.
pub type SockId = Idx<Socket>;

/// A listening socket with bounded SYN and accept queues.
#[derive(Debug)]
pub struct ListenState {
    /// Local port.
    pub port: u16,
    /// Foreign-address filter from the paper's new sockaddr namespace.
    pub filter: CidrFilter,
    /// Half-open connections awaiting the final ACK:
    /// `(flow, expiry, span)`.
    syn_queue: VecDeque<(FlowKey, Nanos, u64)>,
    /// Maximum half-open entries.
    pub syn_backlog: usize,
    /// Fully established connections awaiting `accept()`.
    accept_queue: VecDeque<SockId>,
    /// Maximum established-but-unaccepted connections.
    pub accept_backlog: usize,
    /// SYNs dropped because the SYN queue was full.
    pub syn_drops: u64,
    /// Established connections dropped because the accept queue was full.
    pub accept_drops: u64,
    /// Whether the application asked to be notified of SYN drops (§5.7).
    pub notify_syn_drops: bool,
}

/// Established-connection state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Data may flow in both directions.
    Established,
    /// The peer sent FIN; reads will see EOF after draining.
    PeerClosed,
}

/// A connection socket.
#[derive(Debug)]
pub struct ConnSocket {
    /// Flow identifying the connection.
    pub flow: FlowKey,
    /// Connection state.
    pub state: ConnState,
    /// Bytes received and not yet read by the application.
    pub recv_bytes: u64,
    /// Listener the connection came from.
    pub listener: SockId,
    /// Request span currently riding the connection (`0` = none).
    pub span: u64,
}

/// The two kinds of socket.
#[derive(Debug)]
pub enum SocketKind {
    /// A listening socket.
    Listen(ListenState),
    /// An established connection.
    Conn(ConnSocket),
}

/// A socket plus its resource-container binding (§4.6 "Binding a socket
/// ... to a container").
#[derive(Debug)]
pub struct Socket {
    /// The container charged for kernel processing on this socket.
    pub container: Option<ContainerId>,
    /// Listener or connection state.
    pub kind: SocketKind,
}

/// Result of early demultiplexing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Demux {
    /// The packet belongs to an established connection.
    Conn(SockId),
    /// The packet belongs to a listening socket (SYN / handshake ACK).
    Listen(SockId),
    /// No matching socket.
    NoMatch,
}

/// Events produced by protocol processing, interpreted by the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetEvent {
    /// A packet must be transmitted.
    PacketOut(Packet),
    /// A new connection is ready to `accept()` on the listener.
    AcceptReady {
        /// The listening socket.
        listener: SockId,
        /// The newly established connection.
        conn: SockId,
    },
    /// Data (or EOF) became available on a connection.
    Readable {
        /// The readable connection.
        conn: SockId,
    },
    /// A SYN was dropped due to queue overflow and the application asked
    /// to hear about it (§5.7).
    SynDropped {
        /// The listener whose queue overflowed.
        listener: SockId,
        /// The source address of the dropped SYN.
        src: IpAddr,
    },
    /// A connection was torn down by a peer RST; `container` is whatever
    /// the socket was bound to, so the kernel can release the binding.
    ConnReset {
        /// The reset (already freed) connection socket.
        conn: SockId,
        /// Its container binding at teardown.
        container: Option<ContainerId>,
    },
}

/// The simulated socket table.
///
/// # Examples
///
/// ```
/// use simcore::Nanos;
/// use simnet::{CidrFilter, FlowKey, IpAddr, NetStack, Packet, PacketKind};
///
/// let mut stack = NetStack::new(Nanos::from_secs(5));
/// let l = stack.listen(80, CidrFilter::any(), None, 128, 128, false);
/// let flow = FlowKey::new(IpAddr::new(10, 0, 0, 1), 3000, 80);
///
/// // SYN -> SYN-ACK.
/// let ev = stack.handle_packet(Packet::new(flow, PacketKind::Syn), Nanos::ZERO);
/// assert!(matches!(ev[0], simnet::NetEvent::PacketOut(p)
///     if p.kind == PacketKind::SynAck));
///
/// // ACK establishes; the listener becomes acceptable.
/// let ev = stack.handle_packet(Packet::new(flow, PacketKind::Ack), Nanos::ZERO);
/// assert!(matches!(ev[0], simnet::NetEvent::AcceptReady { listener, .. }
///     if listener == l));
/// ```
pub struct NetStack {
    sockets: Arena<Socket>,
    listeners_by_port: HashMap<u16, Vec<SockId>>,
    conn_by_flow: HashMap<FlowKey, SockId>,
    syn_timeout: Nanos,
    /// Total established connections over the stack's lifetime.
    pub established: u64,
    /// Total connections fully closed.
    pub closed: u64,
}

impl NetStack {
    /// Creates an empty stack; half-open entries expire after
    /// `syn_timeout`.
    pub fn new(syn_timeout: Nanos) -> Self {
        NetStack {
            sockets: Arena::new(),
            listeners_by_port: HashMap::new(),
            conn_by_flow: HashMap::new(),
            syn_timeout,
            established: 0,
            closed: 0,
        }
    }

    /// Opens a listening socket on `port` with the given foreign-address
    /// `filter` (paper §4.8) and queue bounds.
    pub fn listen(
        &mut self,
        port: u16,
        filter: CidrFilter,
        container: Option<ContainerId>,
        syn_backlog: usize,
        accept_backlog: usize,
        notify_syn_drops: bool,
    ) -> SockId {
        let id = self.sockets.insert(Socket {
            container,
            kind: SocketKind::Listen(ListenState {
                port,
                filter,
                syn_queue: VecDeque::new(),
                syn_backlog: syn_backlog.max(1),
                accept_queue: VecDeque::new(),
                accept_backlog: accept_backlog.max(1),
                syn_drops: 0,
                accept_drops: 0,
                notify_syn_drops,
            }),
        });
        self.listeners_by_port.entry(port).or_default().push(id);
        id
    }

    /// Returns a socket view.
    pub fn socket(&self, id: SockId) -> Option<&Socket> {
        self.sockets.get(id)
    }

    /// Sets (or clears) the container bound to a socket.
    pub fn set_container(&mut self, id: SockId, container: Option<ContainerId>) -> bool {
        match self.sockets.get_mut(id) {
            Some(s) => {
                s.container = container;
                true
            }
            None => false,
        }
    }

    /// Returns the container bound to a socket.
    pub fn container_of(&self, id: SockId) -> Option<ContainerId> {
        self.sockets.get(id).and_then(|s| s.container)
    }

    /// Returns the request span riding a connection (`0` when none or
    /// not a connection).
    pub fn span_of(&self, id: SockId) -> u64 {
        match self.sockets.get(id) {
            Some(Socket {
                kind: SocketKind::Conn(cs),
                ..
            }) => cs.span,
            _ => 0,
        }
    }

    /// Sets the request span riding a connection (keep-alive requests
    /// mint a fresh span per request on the same connection).
    pub fn set_span(&mut self, id: SockId, span: u64) {
        if let Some(Socket {
            kind: SocketKind::Conn(cs),
            ..
        }) = self.sockets.get_mut(id)
        {
            cs.span = span;
        }
    }

    /// Early demultiplexing: finds the socket a packet belongs to.
    ///
    /// Established flows win; otherwise the listening socket on the packet's
    /// destination port whose filter matches the source with the longest
    /// prefix (§4.8).
    pub fn classify(&self, pkt: &Packet) -> Demux {
        if let Some(&id) = self.conn_by_flow.get(&pkt.flow) {
            return Demux::Conn(id);
        }
        let mut best: Option<(u8, SockId)> = None;
        if let Some(listeners) = self.listeners_by_port.get(&pkt.flow.dst_port) {
            for &l in listeners {
                let Some(sock) = self.sockets.get(l) else {
                    continue;
                };
                let SocketKind::Listen(ls) = &sock.kind else {
                    continue;
                };
                if !ls.filter.matches(pkt.flow.src) {
                    continue;
                }
                let spec = ls.filter.specificity();
                let better = match best {
                    None => true,
                    Some((bs, _)) => spec > bs,
                };
                if better {
                    best = Some((spec, l));
                }
            }
        }
        match best {
            Some((_, l)) => Demux::Listen(l),
            None => Demux::NoMatch,
        }
    }

    fn evict_expired_syns(ls: &mut ListenState, now: Nanos) {
        while let Some(&(_, expiry, sp)) = ls.syn_queue.front() {
            if expiry <= now {
                ls.syn_queue.pop_front();
                span::finish(sp, expiry, Outcome::Dropped);
            } else {
                break;
            }
        }
    }

    /// Performs protocol processing for one received packet.
    pub fn handle_packet(&mut self, pkt: Packet, now: Nanos) -> Vec<NetEvent> {
        let mut out = Vec::new();
        let demux = self.classify(&pkt);
        self.handle_classified(demux, pkt, now, &mut out);
        out
    }

    /// Performs protocol processing for a packet the caller has already
    /// classified, appending results to `out`. The interrupt path uses
    /// this to avoid re-hashing the flow (it classified for demux
    /// bookkeeping moments earlier) and to reuse one event buffer across
    /// packets instead of allocating per packet.
    pub fn handle_classified(
        &mut self,
        demux: Demux,
        pkt: Packet,
        now: Nanos,
        out: &mut Vec<NetEvent>,
    ) {
        match demux {
            Demux::Conn(id) => self.handle_conn_packet(id, pkt, out),
            Demux::Listen(id) => self.handle_listen_packet(id, pkt, now, out),
            Demux::NoMatch => match pkt.kind {
                // A stray non-RST packet draws a reset.
                PacketKind::Rst => {}
                _ => out.push(NetEvent::PacketOut(Packet::new(pkt.flow, PacketKind::Rst))),
            },
        }
    }

    fn handle_listen_packet(
        &mut self,
        id: SockId,
        pkt: Packet,
        now: Nanos,
        out: &mut Vec<NetEvent>,
    ) {
        let listener_container = self.sockets.get(id).and_then(|s| s.container);
        let Some(sock) = self.sockets.get_mut(id) else {
            return;
        };
        let SocketKind::Listen(ls) = &mut sock.kind else {
            return;
        };
        match pkt.kind {
            PacketKind::Syn => {
                Self::evict_expired_syns(ls, now);
                if ls.syn_queue.iter().any(|&(f, _, _)| f == pkt.flow) {
                    // Duplicate SYN: re-send the SYN-ACK. The freshly
                    // minted span (if any) is redundant with the queued
                    // entry's.
                    span::finish(pkt.span, now, Outcome::Dropped);
                    out.push(NetEvent::PacketOut(Packet::new(
                        pkt.flow,
                        PacketKind::SynAck,
                    )));
                    return;
                }
                if ls.syn_queue.len() >= ls.syn_backlog {
                    // BSD syncache behaviour: evict the *oldest* half-open
                    // entry to make room rather than refusing the new SYN.
                    // Legitimate handshakes complete within an RTT and are
                    // rarely the oldest; a flood's bogus entries are. The
                    // evicted entry counts as the dropped SYN, and its
                    // source is what the notification (§5.7) reports.
                    let evicted = ls.syn_queue.pop_front();
                    ls.syn_drops += 1;
                    trace::emit_at(now, || TraceEventKind::PacketDrop {
                        reason: "syn-evict",
                        container: listener_container
                            .map(|c| c.as_u64())
                            .unwrap_or(NO_CONTAINER),
                    });
                    if let Some((flow, _, sp)) = evicted {
                        span::finish(sp, now, Outcome::Dropped);
                        if ls.notify_syn_drops {
                            out.push(NetEvent::SynDropped {
                                listener: id,
                                src: flow.src,
                            });
                        }
                    }
                }
                ls.syn_queue
                    .push_back((pkt.flow, now + self.syn_timeout, pkt.span));
                out.push(NetEvent::PacketOut(Packet::new(
                    pkt.flow,
                    PacketKind::SynAck,
                )));
            }
            PacketKind::Ack => {
                Self::evict_expired_syns(ls, now);
                let pos = ls.syn_queue.iter().position(|&(f, _, _)| f == pkt.flow);
                let Some(pos) = pos else {
                    return; // Stray or expired handshake.
                };
                let sp = ls.syn_queue.remove(pos).map(|(_, _, sp)| sp).unwrap_or(0);
                if ls.accept_queue.len() >= ls.accept_backlog {
                    ls.accept_drops += 1;
                    trace::emit_at(now, || TraceEventKind::PacketDrop {
                        reason: "accept-overflow",
                        container: listener_container
                            .map(|c| c.as_u64())
                            .unwrap_or(NO_CONTAINER),
                    });
                    span::finish(sp, now, Outcome::Dropped);
                    out.push(NetEvent::PacketOut(Packet::new(pkt.flow, PacketKind::Rst)));
                    return;
                }
                // The handshake is complete: the request now waits for the
                // application to accept it.
                span::transition(sp, Phase::AcceptWait, now);
                let conn = self.sockets.insert(Socket {
                    container: listener_container,
                    kind: SocketKind::Conn(ConnSocket {
                        flow: pkt.flow,
                        state: ConnState::Established,
                        recv_bytes: 0,
                        listener: id,
                        span: sp,
                    }),
                });
                // Re-borrow the listener (the arena insert above may have
                // moved storage).
                let Some(sock) = self.sockets.get_mut(id) else {
                    return;
                };
                let SocketKind::Listen(ls) = &mut sock.kind else {
                    return;
                };
                ls.accept_queue.push_back(conn);
                self.conn_by_flow.insert(pkt.flow, conn);
                self.established += 1;
                out.push(NetEvent::AcceptReady { listener: id, conn });
            }
            // Payload or teardown segments for a flow the stack no longer
            // knows draw a reset, as in real TCP.
            PacketKind::Data { .. } | PacketKind::Fin => {
                out.push(NetEvent::PacketOut(Packet::new(pkt.flow, PacketKind::Rst)));
            }
            // An RST for a half-open connection frees its SYN-queue slot
            // immediately (RFC 793 SYN-RECEIVED handling).
            PacketKind::Rst => {
                ls.syn_queue.retain(|&(f, _, sp)| {
                    if f == pkt.flow {
                        span::finish(sp, now, Outcome::Dropped);
                        false
                    } else {
                        true
                    }
                });
            }
            PacketKind::SynAck => {}
        }
    }

    fn handle_conn_packet(&mut self, id: SockId, pkt: Packet, out: &mut Vec<NetEvent>) {
        let Some(sock) = self.sockets.get_mut(id) else {
            return;
        };
        let SocketKind::Conn(cs) = &mut sock.kind else {
            return;
        };
        match pkt.kind {
            PacketKind::Data { bytes } => {
                cs.recv_bytes += bytes as u64;
                out.push(NetEvent::Readable { conn: id });
            }
            PacketKind::Fin => {
                cs.state = ConnState::PeerClosed;
                out.push(NetEvent::PacketOut(Packet::new(pkt.flow, PacketKind::Ack)));
                out.push(NetEvent::Readable { conn: id });
            }
            PacketKind::Rst => {
                let flow = cs.flow;
                self.conn_by_flow.remove(&flow);
                self.remove_from_accept_queue(id);
                let container = self.sockets.get(id).and_then(|s| s.container);
                self.sockets.remove(id);
                self.closed += 1;
                out.push(NetEvent::ConnReset {
                    conn: id,
                    container,
                });
            }
            PacketKind::Ack => {}
            PacketKind::Syn | PacketKind::SynAck => {}
        }
    }

    fn remove_from_accept_queue(&mut self, conn: SockId) {
        let listener = match self.sockets.get(conn) {
            Some(Socket {
                kind: SocketKind::Conn(cs),
                ..
            }) => cs.listener,
            _ => return,
        };
        if let Some(Socket {
            kind: SocketKind::Listen(ls),
            ..
        }) = self.sockets.get_mut(listener)
        {
            ls.accept_queue.retain(|&c| c != conn);
        }
    }

    /// Accepts the next established connection on a listener, if any.
    pub fn accept(&mut self, listener: SockId) -> Option<SockId> {
        loop {
            let next = match self.sockets.get_mut(listener) {
                Some(Socket {
                    kind: SocketKind::Listen(ls),
                    ..
                }) => ls.accept_queue.pop_front()?,
                _ => return None,
            };
            // The connection may have been reset while queued.
            if self.sockets.contains(next) {
                return Some(next);
            }
        }
    }

    /// Returns how many connections are waiting in a listener's accept
    /// queue.
    pub fn accept_queue_len(&self, listener: SockId) -> usize {
        match self.sockets.get(listener) {
            Some(Socket {
                kind: SocketKind::Listen(ls),
                ..
            }) => ls.accept_queue.len(),
            _ => 0,
        }
    }

    /// Reads (consumes) all buffered bytes; returns `(bytes, eof)`.
    pub fn read(&mut self, conn: SockId) -> (u64, bool) {
        match self.sockets.get_mut(conn) {
            Some(Socket {
                kind: SocketKind::Conn(cs),
                ..
            }) => {
                let n = cs.recv_bytes;
                cs.recv_bytes = 0;
                (n, cs.state == ConnState::PeerClosed)
            }
            _ => (0, true),
        }
    }

    /// Returns `true` if a connection has unread data or a pending EOF.
    pub fn readable(&self, conn: SockId) -> bool {
        match self.sockets.get(conn) {
            Some(Socket {
                kind: SocketKind::Conn(cs),
                ..
            }) => cs.recv_bytes > 0 || cs.state == ConnState::PeerClosed,
            _ => false,
        }
    }

    /// Queues `bytes` of payload for transmission; returns the segments to
    /// send (MSS-sized).
    pub fn send(&mut self, conn: SockId, bytes: u64) -> Vec<Packet> {
        let (flow, sp) = match self.sockets.get(conn) {
            Some(Socket {
                kind: SocketKind::Conn(cs),
                ..
            }) => (cs.flow, cs.span),
            _ => return Vec::new(),
        };
        let mut out = Vec::new();
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(MSS as u64) as u32;
            out.push(Packet::new(flow, PacketKind::Data { bytes: chunk }).with_span(sp));
            remaining -= chunk as u64;
        }
        out
    }

    /// Closes a connection from the application side; returns the FIN to
    /// transmit. The socket is freed.
    pub fn close(&mut self, conn: SockId) -> Option<Packet> {
        let flow = match self.sockets.get(conn) {
            Some(Socket {
                kind: SocketKind::Conn(cs),
                ..
            }) => cs.flow,
            _ => return None,
        };
        self.remove_from_accept_queue(conn);
        self.conn_by_flow.remove(&flow);
        self.sockets.remove(conn);
        self.closed += 1;
        Some(Packet::new(flow, PacketKind::Fin))
    }

    /// Closes a listening socket; queued connections are reset.
    pub fn close_listen(&mut self, listener: SockId) -> Vec<Packet> {
        let (port, queued) = match self.sockets.get_mut(listener) {
            Some(Socket {
                kind: SocketKind::Listen(ls),
                ..
            }) => (ls.port, std::mem::take(&mut ls.accept_queue)),
            _ => return Vec::new(),
        };
        let mut out = Vec::new();
        for conn in queued {
            if let Some(Socket {
                kind: SocketKind::Conn(cs),
                ..
            }) = self.sockets.get(conn)
            {
                let flow = cs.flow;
                out.push(Packet::new(flow, PacketKind::Rst));
                self.conn_by_flow.remove(&flow);
                self.sockets.remove(conn);
            }
        }
        if let Some(v) = self.listeners_by_port.get_mut(&port) {
            v.retain(|&l| l != listener);
        }
        self.sockets.remove(listener);
        out
    }

    /// Returns listener drop counters `(syn_drops, accept_drops)`.
    pub fn listener_drops(&self, listener: SockId) -> (u64, u64) {
        match self.sockets.get(listener) {
            Some(Socket {
                kind: SocketKind::Listen(ls),
                ..
            }) => (ls.syn_drops, ls.accept_drops),
            _ => (0, 0),
        }
    }

    /// Returns the number of live sockets.
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Returns `(bound container, half-open entries)` for every listening
    /// socket, in slot order; used by the metrics sampler to report
    /// per-container SYN-queue occupancy.
    pub fn listener_syn_occupancy(&self) -> Vec<(Option<ContainerId>, usize)> {
        self.sockets
            .iter()
            .filter_map(|(_, s)| match &s.kind {
                SocketKind::Listen(ls) => Some((s.container, ls.syn_queue.len())),
                SocketKind::Conn(_) => None,
            })
            .collect()
    }

    /// Returns the number of half-open entries on a listener.
    pub fn syn_queue_len(&self, listener: SockId) -> usize {
        match self.sockets.get(listener) {
            Some(Socket {
                kind: SocketKind::Listen(ls),
                ..
            }) => ls.syn_queue.len(),
            _ => 0,
        }
    }

    /// Evicts expired half-open entries from a listener's SYN queue.
    /// Eviction is otherwise lazy (it runs when the listener processes a
    /// handshake packet), so admission control — which refuses packets
    /// *before* they reach the protocol code — must trigger it
    /// explicitly or stale flood entries would pin the queue at its
    /// budget forever.
    pub fn expire_syns(&mut self, listener: SockId, now: Nanos) {
        if let Some(Socket {
            kind: SocketKind::Listen(ls),
            ..
        }) = self.sockets.get_mut(listener)
        {
            Self::evict_expired_syns(ls, now);
        }
    }

    /// Whether a listener asked to be notified of dropped SYNs (§5.7).
    /// `false` for non-listeners.
    pub fn notify_syn_drops(&self, listener: SockId) -> bool {
        match self.sockets.get(listener) {
            Some(Socket {
                kind: SocketKind::Listen(ls),
                ..
            }) => ls.notify_syn_drops,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(n: u8, port: u16) -> FlowKey {
        FlowKey::new(IpAddr::new(10, 0, 0, n), 3000 + n as u16, port)
    }

    fn stack_with_listener() -> (NetStack, SockId) {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let l = s.listen(80, CidrFilter::any(), None, 4, 4, false);
        (s, l)
    }

    fn establish(s: &mut NetStack, f: FlowKey, now: Nanos) -> SockId {
        s.handle_packet(Packet::new(f, PacketKind::Syn), now);
        let ev = s.handle_packet(Packet::new(f, PacketKind::Ack), now);
        match ev[0] {
            NetEvent::AcceptReady { conn, .. } => conn,
            _ => panic!("expected AcceptReady, got {ev:?}"),
        }
    }

    #[test]
    fn three_way_handshake() {
        let (mut s, l) = stack_with_listener();
        let f = flow(1, 80);
        let ev = s.handle_packet(Packet::new(f, PacketKind::Syn), Nanos::ZERO);
        assert_eq!(
            ev,
            vec![NetEvent::PacketOut(Packet::new(f, PacketKind::SynAck))]
        );
        assert_eq!(s.syn_queue_len(l), 1);
        let conn = establish(&mut s, f, Nanos::ZERO);
        assert_eq!(s.syn_queue_len(l), 0);
        assert_eq!(s.accept(l), Some(conn));
        assert_eq!(s.accept(l), None);
        assert_eq!(s.established, 1);
    }

    #[test]
    fn duplicate_syn_resends_synack_without_new_entry() {
        let (mut s, l) = stack_with_listener();
        let f = flow(1, 80);
        s.handle_packet(Packet::new(f, PacketKind::Syn), Nanos::ZERO);
        let ev = s.handle_packet(Packet::new(f, PacketKind::Syn), Nanos::ZERO);
        assert_eq!(
            ev,
            vec![NetEvent::PacketOut(Packet::new(f, PacketKind::SynAck))]
        );
        assert_eq!(s.syn_queue_len(l), 1);
    }

    #[test]
    fn syn_queue_overflow_evicts_oldest_and_counts() {
        let (mut s, l) = stack_with_listener(); // backlog 4
        for i in 0..6 {
            s.handle_packet(Packet::new(flow(i, 80), PacketKind::Syn), Nanos::ZERO);
        }
        assert_eq!(s.syn_queue_len(l), 4);
        assert_eq!(s.listener_drops(l).0, 2);
        // The two oldest entries (0 and 1) were evicted: their handshakes
        // can no longer complete, while the newest can.
        let ev = s.handle_packet(Packet::new(flow(0, 80), PacketKind::Ack), Nanos::ZERO);
        assert!(ev.is_empty());
        let ev = s.handle_packet(Packet::new(flow(5, 80), PacketKind::Ack), Nanos::ZERO);
        assert!(matches!(ev[0], NetEvent::AcceptReady { .. }));
    }

    #[test]
    fn syn_drop_notification_reports_evicted_source() {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let l = s.listen(80, CidrFilter::any(), None, 1, 4, true);
        s.handle_packet(Packet::new(flow(1, 80), PacketKind::Syn), Nanos::ZERO);
        let ev = s.handle_packet(Packet::new(flow(2, 80), PacketKind::Syn), Nanos::ZERO);
        // The *evicted* (oldest) entry is the dropped one; the new SYN is
        // answered.
        assert_eq!(ev.len(), 2);
        assert_eq!(
            ev[0],
            NetEvent::SynDropped {
                listener: l,
                src: IpAddr::new(10, 0, 0, 1)
            }
        );
        assert!(matches!(ev[1], NetEvent::PacketOut(p) if p.kind == PacketKind::SynAck));
    }

    #[test]
    fn expired_syns_are_evicted() {
        let (mut s, l) = stack_with_listener();
        for i in 0..4 {
            s.handle_packet(Packet::new(flow(i, 80), PacketKind::Syn), Nanos::ZERO);
        }
        assert_eq!(s.syn_queue_len(l), 4);
        // 6 s later the old entries have expired: a new SYN fits.
        let ev = s.handle_packet(
            Packet::new(flow(9, 80), PacketKind::Syn),
            Nanos::from_secs(6),
        );
        assert!(matches!(ev[0], NetEvent::PacketOut(_)));
        assert_eq!(s.syn_queue_len(l), 1);
        // The expired handshake can no longer complete.
        let ev = s.handle_packet(
            Packet::new(flow(0, 80), PacketKind::Ack),
            Nanos::from_secs(6),
        );
        assert!(ev.is_empty());
    }

    #[test]
    fn accept_queue_overflow_resets() {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let l = s.listen(80, CidrFilter::any(), None, 16, 2, false);
        for i in 0..3 {
            let f = flow(i, 80);
            s.handle_packet(Packet::new(f, PacketKind::Syn), Nanos::ZERO);
            let ev = s.handle_packet(Packet::new(f, PacketKind::Ack), Nanos::ZERO);
            if i < 2 {
                assert!(matches!(ev[0], NetEvent::AcceptReady { .. }));
            } else {
                assert_eq!(
                    ev,
                    vec![NetEvent::PacketOut(Packet::new(f, PacketKind::Rst))]
                );
            }
        }
        assert_eq!(s.listener_drops(l).1, 1);
    }

    #[test]
    fn data_and_read() {
        let (mut s, _l) = stack_with_listener();
        let f = flow(1, 80);
        let conn = establish(&mut s, f, Nanos::ZERO);
        let ev = s.handle_packet(Packet::new(f, PacketKind::Data { bytes: 100 }), Nanos::ZERO);
        assert_eq!(ev, vec![NetEvent::Readable { conn }]);
        assert!(s.readable(conn));
        assert_eq!(s.read(conn), (100, false));
        assert!(!s.readable(conn));
        assert_eq!(s.read(conn), (0, false));
    }

    #[test]
    fn fin_yields_eof() {
        let (mut s, _l) = stack_with_listener();
        let f = flow(1, 80);
        let conn = establish(&mut s, f, Nanos::ZERO);
        let ev = s.handle_packet(Packet::new(f, PacketKind::Fin), Nanos::ZERO);
        assert_eq!(ev.len(), 2);
        assert_eq!(s.read(conn), (0, true));
    }

    #[test]
    fn send_segments_by_mss() {
        let (mut s, _l) = stack_with_listener();
        let conn = establish(&mut s, flow(1, 80), Nanos::ZERO);
        let pkts = s.send(conn, 3000);
        assert_eq!(pkts.len(), 3);
        let total: u32 = pkts.iter().map(|p| p.kind.payload_bytes()).sum();
        assert_eq!(total, 3000);
        assert!(pkts.iter().all(|p| p.kind.payload_bytes() <= MSS));
        assert!(s.send(conn, 0).is_empty());
    }

    #[test]
    fn close_frees_and_emits_fin() {
        let (mut s, _l) = stack_with_listener();
        let f = flow(1, 80);
        let conn = establish(&mut s, f, Nanos::ZERO);
        let fin = s.close(conn).unwrap();
        assert_eq!(fin.kind, PacketKind::Fin);
        assert_eq!(s.closed, 1);
        // Later packets to the dead flow draw a reset.
        let ev = s.handle_packet(Packet::new(f, PacketKind::Data { bytes: 1 }), Nanos::ZERO);
        assert_eq!(
            ev,
            vec![NetEvent::PacketOut(Packet::new(f, PacketKind::Rst))]
        );
    }

    #[test]
    fn rst_tears_down_even_in_accept_queue() {
        let (mut s, l) = stack_with_listener();
        let f = flow(1, 80);
        let _conn = establish(&mut s, f, Nanos::ZERO);
        s.handle_packet(Packet::new(f, PacketKind::Rst), Nanos::ZERO);
        assert_eq!(s.accept(l), None);
        assert_eq!(s.closed, 1);
    }

    #[test]
    fn filter_demux_longest_prefix_wins() {
        let mut s = NetStack::new(Nanos::from_secs(5));
        let l_any = s.listen(80, CidrFilter::any(), None, 4, 4, false);
        let l_net = s.listen(
            80,
            CidrFilter::new(IpAddr::new(10, 0, 0, 0), 8),
            None,
            4,
            4,
            false,
        );
        let l_host = s.listen(
            80,
            CidrFilter::new(IpAddr::new(10, 0, 0, 7), 32),
            None,
            4,
            4,
            false,
        );
        let probe = |s: &NetStack, a: IpAddr| {
            s.classify(&Packet::new(FlowKey::new(a, 1, 80), PacketKind::Syn))
        };
        assert_eq!(probe(&s, IpAddr::new(10, 0, 0, 7)), Demux::Listen(l_host));
        assert_eq!(probe(&s, IpAddr::new(10, 1, 2, 3)), Demux::Listen(l_net));
        assert_eq!(probe(&s, IpAddr::new(99, 0, 0, 1)), Demux::Listen(l_any));
    }

    #[test]
    fn classify_no_listener_is_nomatch() {
        let s = NetStack::new(Nanos::from_secs(5));
        let d = s.classify(&Packet::new(flow(1, 81), PacketKind::Syn));
        assert_eq!(d, Demux::NoMatch);
    }

    #[test]
    fn established_flow_beats_listener() {
        let (mut s, _l) = stack_with_listener();
        let f = flow(1, 80);
        let conn = establish(&mut s, f, Nanos::ZERO);
        assert_eq!(
            s.classify(&Packet::new(f, PacketKind::Data { bytes: 1 })),
            Demux::Conn(conn)
        );
    }

    #[test]
    fn close_listen_resets_queued_connections() {
        let (mut s, l) = stack_with_listener();
        let f = flow(1, 80);
        let _conn = establish(&mut s, f, Nanos::ZERO);
        let rsts = s.close_listen(l);
        assert_eq!(rsts.len(), 1);
        assert_eq!(rsts[0].kind, PacketKind::Rst);
        assert_eq!(s.socket_count(), 0);
    }

    #[test]
    fn container_binding_roundtrip() {
        let (mut s, l) = stack_with_listener();
        let mut ct = rescon::ContainerTable::new();
        let c = ct.create(None, rescon::Attributes::time_shared(5)).unwrap();
        assert!(s.set_container(l, Some(c)));
        assert_eq!(s.container_of(l), Some(c));
        // Connections inherit the listener's container at establishment.
        let conn = establish(&mut s, flow(1, 80), Nanos::ZERO);
        assert_eq!(s.container_of(conn), Some(c));
    }
}
