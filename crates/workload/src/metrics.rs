//! Client-side measurement: latency and throughput per client class.

use simcore::{Nanos, Summary};

/// Metrics for one class of clients.
#[derive(Clone, Debug, Default)]
pub struct ClassMetrics {
    /// Response-time samples in milliseconds.
    pub latency_ms: Summary,
    /// Completed requests.
    pub completed: u64,
    /// Requests abandoned after the client timeout (S-Client behaviour).
    pub abandoned: u64,
    /// Completions inside the measurement window.
    pub completed_in_window: u64,
}

/// Metrics across all client classes, with a warmup-aware measurement
/// window.
#[derive(Clone, Debug)]
pub struct ClientMetrics {
    classes: Vec<ClassMetrics>,
    window_start: Nanos,
    window_end: Nanos,
}

impl ClientMetrics {
    /// Creates metrics for `n_classes` classes; only completions within
    /// `[window_start, window_end]` count toward windowed throughput, and
    /// only their latencies are recorded.
    pub fn new(n_classes: usize, window_start: Nanos, window_end: Nanos) -> Self {
        ClientMetrics {
            classes: vec![ClassMetrics::default(); n_classes.max(1)],
            window_start,
            window_end,
        }
    }

    /// Records a completed request.
    pub fn record(&mut self, class: usize, latency: Nanos, now: Nanos) {
        let idx = class.min(self.classes.len() - 1);
        let c = &mut self.classes[idx];
        c.completed += 1;
        if now >= self.window_start && now <= self.window_end {
            c.completed_in_window += 1;
            c.latency_ms.record(latency.as_millis_f64());
        }
    }

    /// Records an abandoned request.
    pub fn record_abandoned(&mut self, class: usize) {
        let idx = class.min(self.classes.len() - 1);
        self.classes[idx].abandoned += 1;
    }

    /// Returns the metrics of a class (clamped to the last class if out of
    /// range, mirroring `record`).
    pub fn class(&self, class: usize) -> &ClassMetrics {
        &self.classes[class.min(self.classes.len() - 1)]
    }

    /// Returns a mutable view (used by tests).
    pub fn class_mut(&mut self, class: usize) -> &mut ClassMetrics {
        &mut self.classes[class]
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Windowed throughput of a class in requests/second; zero for classes
    /// that never existed.
    pub fn throughput(&self, class: usize) -> f64 {
        let span = self.window_end.saturating_sub(self.window_start);
        if span.is_zero() || class >= self.classes.len() {
            return 0.0;
        }
        self.classes[class].completed_in_window as f64 / span.as_secs_f64()
    }

    /// Windowed throughput across all classes.
    pub fn total_throughput(&self) -> f64 {
        (0..self.classes.len()).map(|c| self.throughput(c)).sum()
    }

    /// Mean windowed latency of a class in milliseconds (zero for classes
    /// that never existed).
    pub fn mean_latency_ms(&self, class: usize) -> f64 {
        if class >= self.classes.len() {
            return 0.0;
        }
        self.classes[class].latency_ms.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_filters_samples() {
        let mut m = ClientMetrics::new(1, Nanos::from_secs(1), Nanos::from_secs(2));
        m.record(0, Nanos::from_millis(5), Nanos::from_millis(500)); // warmup
        m.record(0, Nanos::from_millis(7), Nanos::from_millis(1500)); // in window
        m.record(0, Nanos::from_millis(9), Nanos::from_millis(2500)); // after
        assert_eq!(m.class(0).completed, 3);
        assert_eq!(m.class(0).completed_in_window, 1);
        assert_eq!(m.mean_latency_ms(0), 7.0);
        assert!((m.throughput(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_class_clamps() {
        let mut m = ClientMetrics::new(2, Nanos::ZERO, Nanos::from_secs(1));
        m.record(99, Nanos::from_millis(1), Nanos::from_millis(10));
        assert_eq!(m.class(1).completed, 1);
    }

    #[test]
    fn total_throughput_sums_classes() {
        let mut m = ClientMetrics::new(2, Nanos::ZERO, Nanos::from_secs(2));
        for _ in 0..4 {
            m.record(0, Nanos::from_millis(1), Nanos::from_secs(1));
        }
        for _ in 0..2 {
            m.record(1, Nanos::from_millis(1), Nanos::from_secs(1));
        }
        assert!((m.total_throughput() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn abandoned_counted() {
        let mut m = ClientMetrics::new(1, Nanos::ZERO, Nanos::from_secs(1));
        m.record_abandoned(0);
        assert_eq!(m.class(0).abandoned, 1);
    }
}
