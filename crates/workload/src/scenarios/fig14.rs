//! Figure 14: immunity against SYN-flooding.
//!
//! "A set of 'malicious' clients sent bogus SYN packets to the server's
//! HTTP port, at a high rate. We then measured the server's throughput for
//! requests from well-behaved clients. ... the throughput of the
//! unmodified system falls drastically as the SYN-flood rate increases,
//! and is effectively zero at about 10,000 SYNs/sec. ... With these
//! modifications, even at 70,000 SYNs/sec., the useful throughput remains
//! at about 73% of maximum."

use httpsim::stats::shared_stats;
use httpsim::{ClassSpec, EventDrivenServer, ServerConfig};
use rescon::Attributes;
use simcore::Nanos;
use simnet::{CidrFilter, IpAddr, Packet};
use simos::{Kernel, KernelConfig, World, WorldAction};

use crate::clients::{ClientSpec, HttpClients};
use crate::synflood::SynFlood;

/// Base address of the attacker block (192.168/16).
pub const ATTACK_BASE: IpAddr = IpAddr::new(192, 168, 0, 0);

/// Timer tag reserved for the flooder (clients use `i * 4 + {0,1}`, so a
/// high tag is safely out of their space).
const FLOOD_TAG: u64 = 1 << 40;

/// The combined world: well-behaved clients plus the attacker.
struct FloodWorld {
    clients: HttpClients,
    flood: SynFlood,
    attack_filter: CidrFilter,
}

impl World for FloodWorld {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        if self.attack_filter.matches(pkt.flow.src) {
            self.flood.on_packet(pkt, now, actions);
        } else {
            self.clients.on_packet(pkt, now, actions);
        }
    }

    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        if tag >= FLOOD_TAG {
            let mut local = Vec::new();
            self.flood.on_timer(tag - FLOOD_TAG, now, &mut local);
            for a in &mut local {
                if let WorldAction::SetTimer { tag, .. } = a {
                    *tag += FLOOD_TAG;
                }
            }
            actions.extend(local);
        } else {
            self.clients.on_timer(tag, now, actions);
        }
    }
}

/// Parameters of one Figure 14 point.
#[derive(Clone, Debug)]
pub struct Fig14Params {
    /// `true` = the paper's defended system (resource containers,
    /// SYN-drop notification, filter + priority-zero isolation);
    /// `false` = the unmodified system.
    pub defended: bool,
    /// Aggregate SYN-flood rate in SYNs/second.
    pub syn_rate: f64,
    /// Number of well-behaved closed-loop clients.
    pub clients: usize,
    /// Simulated run length.
    pub secs: u64,
}

impl Default for Fig14Params {
    fn default() -> Self {
        Fig14Params {
            defended: false,
            syn_rate: 0.0,
            clients: 24,
            secs: 10,
        }
    }
}

/// Result of one Figure 14 point.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct Fig14Result {
    /// Useful (well-behaved) throughput in requests/second.
    pub throughput: f64,
    /// SYNs the flooder sent.
    pub syns_sent: u64,
    /// Packets dropped at early demultiplexing (defended system).
    pub early_drops: u64,
    /// Flood prefixes the server isolated.
    pub isolations: u64,
    /// Requests well-behaved clients abandoned (timed out).
    pub abandoned: u64,
    /// Fraction of CPU charged to containers over the whole run.
    pub charged_frac: f64,
    /// Fraction of CPU at interrupt level.
    pub interrupt_frac: f64,
    /// Idle CPU fraction.
    pub idle_frac: f64,
    /// CPU charged to priority-zero (isolated) containers.
    pub isolated_cpu_frac: f64,
}

/// Runs one Figure 14 point.
pub fn run_fig14(params: Fig14Params) -> Fig14Result {
    let secs = params.secs.max(4);
    let end = Nanos::from_secs(secs);
    // Measure steady state: the flood's first seconds poison the default
    // listener's SYN queue with half-open entries that only expire after
    // the SYN timeout (5 s), even once the source is isolated.
    let warmup = Nanos::from_secs(7).min(end / 2);

    let kernel = if params.defended {
        KernelConfig::resource_containers()
    } else {
        KernelConfig::unmodified()
    };

    let stats = shared_stats();
    let mut k = Kernel::new(kernel);
    let cfg = ServerConfig {
        defense: params.defended,
        defense_mask: 16,
        defense_threshold: 16,
        classes: vec![ClassSpec {
            name: "default".to_string(),
            filter: CidrFilter::any(),
            priority: 10,
            // §5.7: "We modified the kernel to notify the application when
            // it drops a SYN."
            notify_syn_drops: params.defended,
        }],
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(cfg, stats.clone())),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );

    // Well-behaved clients: S-Client behaviour (abandon + retry after 1 s)
    // so offered load is sustained through SYN drops.
    let specs: Vec<ClientSpec> = (0..params.clients)
        .map(|i| {
            ClientSpec::staticloop(good_addr(i), 0)
                .with_timeout(Nanos::from_secs(1))
                .starting_at(Nanos::from_micros(10 + 7 * i as u64))
        })
        .collect();
    let clients = HttpClients::new(specs, warmup, end);
    clients.arm(&mut k);
    let flood = SynFlood::new(ATTACK_BASE, 1024, params.syn_rate, 80);
    if params.syn_rate > 0.0 {
        k.arm_world_timer(FLOOD_TAG, flood.start_at);
    }

    let mut world = FloodWorld {
        clients,
        flood,
        attack_filter: CidrFilter::new(ATTACK_BASE, 16),
    };
    k.run(&mut world, end);

    let isolations = stats.borrow().isolations;
    let s = k.stats();
    let total = s.total();
    let isolated_cpu: simcore::Nanos = k
        .containers
        .iter()
        .filter(|(_, c)| c.attrs().name.as_deref() == Some("isolated"))
        .map(|(id, _)| k.containers.subtree_cpu(id).unwrap_or(Nanos::ZERO))
        .sum();
    Fig14Result {
        throughput: world.clients.metrics.throughput(0),
        syns_sent: world.flood.sent,
        early_drops: s.early_drops,
        isolations,
        abandoned: world.clients.metrics.class(0).abandoned,
        charged_frac: s.charged_cpu.ratio(total),
        interrupt_frac: s.interrupt_cpu.ratio(total),
        idle_frac: s.idle_cpu.ratio(total),
        isolated_cpu_frac: isolated_cpu.ratio(total),
    }
}

/// Address of well-behaved client `i`.
pub fn good_addr(i: usize) -> IpAddr {
    IpAddr::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_flood_baselines_agree() {
        let plain = run_fig14(Fig14Params {
            defended: false,
            syn_rate: 0.0,
            clients: 16,
            secs: 5,
        });
        let defended = run_fig14(Fig14Params {
            defended: true,
            syn_rate: 0.0,
            clients: 16,
            secs: 5,
        });
        assert!(plain.throughput > 2500.0, "plain {}", plain.throughput);
        // §5.4: containers cost (almost) nothing.
        let delta = (plain.throughput - defended.throughput).abs() / plain.throughput;
        assert!(delta < 0.08, "delta = {delta}");
    }

    #[test]
    fn unmodified_collapses_but_defended_survives() {
        let rate = 12_000.0;
        let plain = run_fig14(Fig14Params {
            defended: false,
            syn_rate: rate,
            clients: 16,
            secs: 8,
        });
        let defended = run_fig14(Fig14Params {
            defended: true,
            syn_rate: rate,
            clients: 16,
            secs: 8,
        });
        // The unmodified system is effectively dead at ~10k SYN/s...
        assert!(
            plain.throughput < 300.0,
            "unmodified throughput {} at {rate} SYN/s",
            plain.throughput
        );
        // ...while the defended system holds most of its capacity.
        assert!(
            defended.throughput > 2000.0,
            "defended throughput {}",
            defended.throughput
        );
        assert!(defended.isolations >= 1);
        assert!(defended.syns_sent > 50_000);
    }
}
