//! Graceful degradation under a SYN flood *plus* injected faults.
//!
//! The paper's Figure 14 shows the defended system surviving a flood by
//! isolating attack prefixes after SYN-drop notifications. This scenario
//! hardens that story: the kernel runs with per-listener admission
//! control (bounded SYN queues, early drops charged to the classifying
//! container — attacker pays) while a seeded [`FaultPlan`] perturbs the
//! run with packet loss/corruption/delay and misbehaving clients. The
//! claim under test is *graceful degradation*: with admission control
//! and S-Client backoff, the victims' throughput stays within a few
//! percent of the fault-free baseline, their tail latency stays bounded,
//! and virtually all early-drop charges land on the attacker's isolated
//! container rather than on well-behaved principals.

use httpsim::stats::shared_stats;
use httpsim::{ClassSpec, EventDrivenServer, ServerConfig};
use rescon::Attributes;
use simcore::fault::FaultPlan;
use simcore::Nanos;
use simnet::{CidrFilter, Packet};
use simos::{Kernel, KernelConfig, World, WorldAction};

use crate::clients::{ClientSpec, HttpClients};
use crate::scenarios::fig14::{good_addr, ATTACK_BASE};
use crate::synflood::SynFlood;

/// Timer tag reserved for the flooder (out of the clients' `i*4` space).
const FLOOD_TAG: u64 = 1 << 40;

/// Parameters of one `synflood_fault` run.
#[derive(Clone, Debug)]
pub struct SynfloodFaultParams {
    /// Number of simulated CPUs.
    pub ncpus: u32,
    /// Well-behaved closed-loop clients.
    pub clients: usize,
    /// Aggregate SYN-flood rate in SYNs/second (0 = no flood).
    pub syn_rate: f64,
    /// Seed of the fault plan.
    pub fault_seed: u64,
    /// Inject faults at all (false = fault-free baseline).
    pub faults: bool,
    /// Per-listener SYN-queue admission budget (0 = off).
    pub syn_budget: usize,
    /// Simulated run length.
    pub secs: u64,
}

impl Default for SynfloodFaultParams {
    fn default() -> Self {
        SynfloodFaultParams {
            ncpus: 4,
            clients: 12,
            syn_rate: 8_000.0,
            fault_seed: 7,
            faults: true,
            syn_budget: 64,
            secs: 12,
        }
    }
}

impl SynfloodFaultParams {
    /// The fault-free, flood-free baseline for the same machine and
    /// client population.
    pub fn baseline(&self) -> Self {
        SynfloodFaultParams {
            syn_rate: 0.0,
            faults: false,
            ..self.clone()
        }
    }

    /// The fault plan this run injects (empty when `faults` is off).
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.fault_seed)
            .with_packet_faults(0.0003, 0.0002, 0.005, Nanos::from_micros(200))
            .with_disk_faults(0.0005, 0.001, Nanos::from_millis(2))
            .with_client_faults(0.0005, 0.0005, 0.002, Nanos::from_micros(200))
            // A burst inside the measurement window: one second where
            // every probability is scaled tenfold, a brown-out the
            // system must ride through.
            .with_window(Nanos::from_secs(8), Nanos::from_secs(9), 10.0)
    }
}

/// Result of one `synflood_fault` run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct SynfloodFaultResult {
    /// Victim (well-behaved) windowed throughput in requests/second.
    pub throughput: f64,
    /// Victim p99 response latency in milliseconds.
    pub p99_ms: f64,
    /// Victim mean response latency in milliseconds.
    pub mean_ms: f64,
    /// Requests the victims abandoned (timeouts, resets).
    pub abandoned: u64,
    /// SYNs the flooder sent.
    pub syns_sent: u64,
    /// Packets dropped at early demultiplexing.
    pub early_drops: u64,
    /// Early-drop charges across all containers.
    pub drop_charges_total: u64,
    /// Early-drop charges that landed on isolated (attacker) containers.
    pub drop_charges_attacker: u64,
    /// Attacker share of early-drop charges (1.0 when there were none).
    pub attacker_drop_share: f64,
    /// Flood prefixes the server isolated.
    pub isolations: u64,
    /// Network faults the kernel injected (drop + corrupt + delay).
    pub net_faults: u64,
    /// Disk faults the kernel injected (error + spike).
    pub disk_faults: u64,
    /// Client faults the workload injected (abandon + malformed + slow).
    pub client_faults: u64,
    /// Requests the server aborted on injected disk errors.
    pub io_errors: u64,
}

/// Well-behaved clients plus the attacker, routed by source prefix.
struct FaultFloodWorld {
    clients: HttpClients,
    flood: SynFlood,
    attack_filter: CidrFilter,
}

impl World for FaultFloodWorld {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        if self.attack_filter.matches(pkt.flow.src) {
            self.flood.on_packet(pkt, now, actions);
        } else {
            self.clients.on_packet(pkt, now, actions);
        }
    }

    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        if tag >= FLOOD_TAG {
            let mut local = Vec::new();
            self.flood.on_timer(tag - FLOOD_TAG, now, &mut local);
            for a in &mut local {
                if let WorldAction::SetTimer { tag, .. } = a {
                    *tag += FLOOD_TAG;
                }
            }
            actions.extend(local);
        } else {
            self.clients.on_timer(tag, now, actions);
        }
    }
}

/// Runs one `synflood_fault` point on the defended RC kernel.
pub fn run_synflood_fault(params: SynfloodFaultParams) -> SynfloodFaultResult {
    let secs = params.secs.max(4);
    let end = Nanos::from_secs(secs);
    // Like Figure 14: the flood's opening seconds poison the default
    // listener's (admission-bounded) SYN queue with half-open entries
    // that only expire after the 5 s SYN timeout, so steady state
    // starts after that.
    let warmup = Nanos::from_secs(7).min(end / 2);

    let mut kcfg = KernelConfig::resource_containers()
        .with_ncpus(params.ncpus.max(1))
        .with_admission(params.syn_budget, 0);
    if params.faults {
        kcfg = kcfg.with_fault(params.plan());
    }

    let stats = shared_stats();
    let mut k = Kernel::new(kcfg);
    let cfg = ServerConfig {
        defense: true,
        defense_mask: 16,
        defense_threshold: 16,
        classes: vec![ClassSpec {
            name: "default".to_string(),
            filter: CidrFilter::any(),
            priority: 10,
            notify_syn_drops: true,
        }],
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(cfg, stats.clone())),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );

    // Lightly-loaded victims: think time keeps the server below
    // saturation so latency reflects service, not queueing; a short
    // timeout plus exponential backoff is the S-Client side of graceful
    // degradation (abandon fast, retry politely).
    let specs: Vec<ClientSpec> = (0..params.clients)
        .map(|i| {
            let mut s = ClientSpec::staticloop(good_addr(i), 0)
                .with_timeout(Nanos::from_millis(25))
                .with_backoff(Nanos::from_millis(5))
                .starting_at(Nanos::from_micros(10 + 7 * i as u64));
            s.think = Nanos::from_millis(5);
            s
        })
        .collect();
    let mut clients = HttpClients::new(specs, warmup, end);
    if params.faults {
        clients = clients.with_faults(&params.plan());
    }
    clients.arm(&mut k);

    let flood = SynFlood::new(ATTACK_BASE, 1024, params.syn_rate, 80);
    if params.syn_rate > 0.0 {
        k.arm_world_timer(FLOOD_TAG, flood.start_at);
    }

    let mut world = FaultFloodWorld {
        clients,
        flood,
        attack_filter: CidrFilter::new(ATTACK_BASE, 16),
    };
    k.run(&mut world, end);

    let (isolations, io_errors) = {
        let s = stats.borrow();
        (s.isolations, s.io_errors)
    };
    let drop_charges_total: u64 = k.drop_charges().values().sum();
    let drop_charges_attacker: u64 = k
        .containers
        .iter()
        .filter(|(_, c)| c.attrs().name.as_deref() == Some("isolated"))
        .map(|(id, _)| k.drop_charges_of(id))
        .sum();
    let kernel_faults = k.fault_counts();
    let client_counts = world.clients.fault_counts();
    let m = &world.clients.metrics;
    SynfloodFaultResult {
        throughput: m.throughput(0),
        p99_ms: m.class(0).latency_ms.quantile(0.99),
        mean_ms: m.mean_latency_ms(0),
        abandoned: m.class(0).abandoned,
        syns_sent: world.flood.sent,
        early_drops: k.stats().early_drops,
        drop_charges_total,
        drop_charges_attacker,
        attacker_drop_share: if drop_charges_total == 0 {
            1.0
        } else {
            drop_charges_attacker as f64 / drop_charges_total as f64
        },
        isolations,
        net_faults: kernel_faults.pkt_dropped
            + kernel_faults.pkt_corrupted
            + kernel_faults.pkt_delayed,
        disk_faults: kernel_faults.disk_errors + kernel_faults.disk_spikes,
        client_faults: client_counts.client_abandons
            + client_counts.client_malformed
            + client_counts.client_slowed,
        io_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduced() -> SynfloodFaultParams {
        SynfloodFaultParams {
            clients: 8,
            secs: 12,
            ..SynfloodFaultParams::default()
        }
    }

    #[test]
    fn degrades_gracefully_under_flood_and_faults() {
        let base = run_synflood_fault(reduced().baseline());
        let faulted = run_synflood_fault(reduced());
        assert!(base.throughput > 500.0, "baseline {}", base.throughput);
        assert!(
            faulted.throughput >= 0.9 * base.throughput,
            "victim throughput {} vs baseline {}",
            faulted.throughput,
            base.throughput
        );
        assert!(
            faulted.p99_ms <= 2.0 * base.p99_ms.max(0.5),
            "p99 {} ms vs baseline {} ms",
            faulted.p99_ms,
            base.p99_ms
        );
        assert!(faulted.net_faults > 0, "no network faults injected");
        assert!(faulted.client_faults > 0, "no client faults injected");
        assert!(faulted.isolations >= 1, "flood prefix never isolated");
        assert!(
            faulted.attacker_drop_share >= 0.95,
            "attacker absorbed only {:.1}% of drop charges",
            faulted.attacker_drop_share * 100.0
        );
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let a = run_synflood_fault(reduced());
        let b = run_synflood_fault(reduced());
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.abandoned, b.abandoned);
        assert_eq!(a.net_faults, b.net_faults);
        assert_eq!(a.client_faults, b.client_faults);
        assert_eq!(a.drop_charges_total, b.drop_charges_total);
    }

    #[test]
    fn different_fault_seed_changes_injections_only_in_count() {
        let a = run_synflood_fault(reduced());
        let b = run_synflood_fault(SynfloodFaultParams {
            fault_seed: 8,
            ..reduced()
        });
        // Different seeds draw different injection sequences...
        assert!(
            a.net_faults != b.net_faults || a.client_faults != b.client_faults,
            "seeds 7 and 8 injected identical fault sequences"
        );
        // ...but the system still degrades gracefully.
        assert!(b.isolations >= 1);
    }
}
