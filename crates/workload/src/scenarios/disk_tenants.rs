//! Disk-bandwidth isolation between tenants (§7 "other resources").
//!
//! The paper's prototype charges CPU to resource containers; §7 argues the
//! same abstraction covers "other system resources, such as disk
//! bandwidth". This experiment demonstrates it on the simulated disk: two
//! tenants with fixed shares (default 0.7 / 0.3) run disk-bound web
//! servers — a *hog* streaming large files and a *victim* serving small
//! ones, both sweeping document sets too large to cache — and we measure
//! how the disk's busy time divides between them.
//!
//! Under the FIFO scheduler (the "unmodified kernel" ablation) the hog's
//! long transfers queue ahead of the victim and the victim's throughput
//! collapses as the hog's load grows. Under the share-aware scheduler the
//! split tracks the configured shares and the victim's throughput stays
//! flat regardless of the hog.

use httpsim::stats::shared_stats;
use httpsim::{EventDrivenServer, FileBacking, ServerConfig};
use rescon::{Attributes, ContainerId};
use simcore::Nanos;
use simdisk::DiskParams;
use simnet::{IpAddr, Packet};
use simos::{DiskSchedKind, Kernel, KernelConfig, World, WorldAction};

use crate::clients::{ClientSpec, HttpClients};

/// Parameters of the two-tenant disk experiment.
#[derive(Clone, Debug)]
pub struct DiskTenantsParams {
    /// Fixed disk/CPU shares of (hog, victim).
    pub shares: (f64, f64),
    /// Closed-loop clients driving the hog tenant (the swept variable).
    pub hog_clients: usize,
    /// Closed-loop clients driving the victim tenant.
    pub victim_clients: usize,
    /// Hog file size in KiB (large sequential reads).
    pub hog_file_kib: u64,
    /// Victim file size in KiB (small files).
    pub victim_file_kib: u64,
    /// Documents each hog client sweeps (large → never cached).
    pub hog_docs: u32,
    /// Documents each victim client sweeps (sized to defeat the cache,
    /// giving the steady miss rate of a tenant whose working set does not
    /// quite fit).
    pub victim_docs: u32,
    /// Buffer-cache capacity in bytes.
    pub cache_bytes: u64,
    /// I/O scheduler under test.
    pub sched: DiskSchedKind,
    /// Simulated run length.
    pub secs: u64,
}

impl Default for DiskTenantsParams {
    fn default() -> Self {
        DiskTenantsParams {
            shares: (0.7, 0.3),
            hog_clients: 8,
            victim_clients: 8,
            hog_file_kib: 64,
            victim_file_kib: 4,
            hog_docs: 4096,
            victim_docs: 1024,
            cache_bytes: 2 * 1024 * 1024,
            sched: DiskSchedKind::Share,
            secs: 12,
        }
    }
}

/// Result of the two-tenant disk experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct DiskTenantsResult {
    /// Scheduler name ("fifo" or "share").
    pub sched: String,
    /// Configured shares, normalized: [hog, victim].
    pub configured: Vec<f64>,
    /// Measured fraction of charged disk time: [hog, victim].
    pub disk_fractions: Vec<f64>,
    /// Disk utilization over the measurement window (busy / wall).
    pub utilization: f64,
    /// Windowed request throughput per tenant: [hog, victim].
    pub throughputs: Vec<f64>,
    /// Mean response time per tenant in ms: [hog, victim].
    pub latencies_ms: Vec<f64>,
}

/// Per-tenant client sets, routed by tenant address block (tenant `g`
/// clients live in `10.{100+g}.x.x`). Shared with the link-bandwidth
/// tenant experiment ([`super::qos_tenants`]).
pub(crate) struct TenantWorld {
    pub(crate) tenants: Vec<HttpClients>,
}

/// Timer-tag block per tenant.
pub(crate) const TENANT_SHIFT: u32 = 32;

impl World for TenantWorld {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        let (_, b, _, _) = pkt.flow.src.octets();
        let g = (b as usize).saturating_sub(100);
        if let Some(c) = self.tenants.get_mut(g) {
            let mut local = Vec::new();
            c.on_packet(pkt, now, &mut local);
            relabel(&mut local, g);
            actions.extend(local);
        }
    }

    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        let g = (tag >> TENANT_SHIFT) as usize;
        if let Some(c) = self.tenants.get_mut(g) {
            let mut local = Vec::new();
            c.on_timer(tag & ((1 << TENANT_SHIFT) - 1), now, &mut local);
            relabel(&mut local, g);
            actions.extend(local);
        }
    }
}

fn relabel(actions: &mut [WorldAction], g: usize) {
    for a in actions.iter_mut() {
        if let WorldAction::SetTimer { tag, .. } = a {
            *tag |= (g as u64) << TENANT_SHIFT;
        }
    }
}

/// Address of client `i` of tenant `g`.
pub(crate) fn tenant_addr(g: usize, i: usize) -> IpAddr {
    IpAddr::new(10, 100 + g as u8, (i / 250) as u8, (i % 250) as u8 + 1)
}

/// Runs the two-tenant disk experiment and reports the disk-time split.
pub fn run_disk_tenants(params: DiskTenantsParams) -> DiskTenantsResult {
    let secs = params.secs.max(4);
    let end = Nanos::from_secs(secs);
    let warmup = Nanos::from_secs(2).min(end / 4);

    let mut cfg = KernelConfig::resource_containers().with_disk(DiskParams::default());
    cfg.disk.sched = params.sched;
    cfg.disk.buffer_cache_bytes = params.cache_bytes;
    let mut k = Kernel::new(cfg);

    let shares = [params.shares.0, params.shares.1];
    let tenants: Vec<ContainerId> = shares
        .iter()
        .enumerate()
        .map(|(g, &share)| {
            k.containers
                .create(
                    None,
                    Attributes::fixed_share(share).named(&format!("tenant-{g}")),
                )
                .expect("tenant container")
        })
        .collect();

    // One disk-backed server per tenant. Connections share the tenant's
    // (process-default) container, so each tenant is one principal at the
    // disk — the hierarchical case (per-connection containers *under* a
    // fixed-share tenant) is covered by the scheduler's use of effective
    // shares, but a single queue per tenant is what the split measures.
    let file_kib = [params.hog_file_kib, params.victim_file_kib];
    for (g, &tenant) in tenants.iter().enumerate() {
        let cfg = ServerConfig {
            port: 8000 + g as u16,
            conn_parent: Some(tenant),
            container_per_connection: false,
            response_bytes: file_kib[g] * 1024,
            files: FileBacking::Disk {
                file_base: (g as u64) << 32,
            },
            ..ServerConfig::default()
        };
        k.spawn_process(
            Box::new(EventDrivenServer::new(cfg, shared_stats())),
            &format!("tenant-httpd-{g}"),
            Some(tenant),
            Attributes::time_shared(10),
            None,
        );
    }

    // Client sets: each client sweeps its own slice of the tenant's
    // document space so no two clients share documents.
    let mut world = TenantWorld {
        tenants: Vec::new(),
    };
    let n_clients = [params.hog_clients, params.victim_clients];
    let docs = [params.hog_docs, params.victim_docs];
    for g in 0..tenants.len() {
        let specs: Vec<ClientSpec> = (0..n_clients[g])
            .map(|i| {
                let mut s = ClientSpec::staticloop(tenant_addr(g, i), 0)
                    .cycling_docs(docs[g])
                    .starting_at(Nanos::from_micros(10 + 7 * i as u64));
                s.doc = i as u32 * docs[g];
                s.port = 8000 + g as u16;
                s
            })
            .collect();
        let clients = HttpClients::new(specs, warmup, end);
        for i in 0..clients.len() {
            k.arm_world_timer(
                ((g as u64) << TENANT_SHIFT) | (i as u64 * 4),
                Nanos::from_micros(10 + 7 * i as u64),
            );
        }
        world.tenants.push(clients);
    }

    // Warmup, snapshot per-tenant disk time, measure.
    k.run(&mut world, warmup);
    let disk0: Vec<Nanos> = tenants
        .iter()
        .map(|&t| k.containers.subtree_disk(t).unwrap())
        .collect();
    let busy0 = k.disk.total_busy();
    k.run(&mut world, end);
    let deltas: Vec<Nanos> = tenants
        .iter()
        .zip(&disk0)
        .map(|(&t, &d0)| k.containers.subtree_disk(t).unwrap() - d0)
        .collect();
    let total: Nanos = deltas.iter().copied().sum();
    let busy = k.disk.total_busy() - busy0;

    let share_sum: f64 = shares.iter().sum();
    DiskTenantsResult {
        sched: k.disk.sched_name().to_string(),
        configured: shares.iter().map(|s| s / share_sum).collect(),
        disk_fractions: deltas.iter().map(|&d| d.ratio(total)).collect(),
        utilization: busy.ratio(end - warmup),
        throughputs: (0..tenants.len())
            .map(|g| world.tenants[g].metrics.throughput(0))
            .collect(),
        latencies_ms: (0..tenants.len())
            .map(|g| world.tenants[g].metrics.mean_latency_ms(0))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(sched: DiskSchedKind, hog_clients: usize) -> DiskTenantsResult {
        run_disk_tenants(DiskTenantsParams {
            hog_clients,
            secs: 6,
            sched,
            ..DiskTenantsParams::default()
        })
    }

    #[test]
    fn share_sched_splits_disk_by_share() {
        let r = quick(DiskSchedKind::Share, 8);
        assert!(r.utilization > 0.9, "disk not saturated: {r:?}");
        for (c, m) in r.configured.iter().zip(&r.disk_fractions) {
            assert!(
                (c - m).abs() < 0.05,
                "configured {c} vs measured {m}: {r:?}"
            );
        }
    }

    #[test]
    fn victim_flat_under_share_degrades_under_fifo() {
        // FIFO serves requests in arrival order, so the victim's share of
        // the disk tracks its share of *requests*: as the hog's client
        // count grows the victim's throughput collapses. The share
        // scheduler pins the victim to its 30% regardless of hog load.
        let share_lo = quick(DiskSchedKind::Share, 2);
        let share_hi = quick(DiskSchedKind::Share, 16);
        let fifo_lo = quick(DiskSchedKind::Fifo, 2);
        let fifo_hi = quick(DiskSchedKind::Fifo, 16);
        assert!(
            share_hi.throughputs[1] > 0.75 * share_lo.throughputs[1],
            "victim not flat under share: lo {share_lo:?} vs hi {share_hi:?}"
        );
        assert!(
            fifo_hi.throughputs[1] < 0.6 * fifo_lo.throughputs[1],
            "victim did not degrade under fifo: lo {fifo_lo:?} vs hi {fifo_hi:?}"
        );
        assert!(
            share_hi.throughputs[1] > fifo_hi.throughputs[1],
            "share does not beat fifo for the victim at high hog load: \
             share {share_hi:?} vs fifo {fifo_hi:?}"
        );
    }
}
