//! SMP share enforcement: two fixed-share tenants on an `ncpus`-way
//! kernel.
//!
//! The paper's fixed-share guarantee is a statement about the *machine*,
//! not about any one CPU: a container entitled to 70% must receive 70% of
//! total capacity even when run queues are per-CPU. This scenario drives
//! two CPU-bound thread-pool web servers — one per tenant container, with
//! fixed shares that sum to 1 — with enough closed-loop persistent
//! clients to saturate every CPU (keep-alive keeps the per-request
//! protocol work negligible next to the parse cost, so the split is
//! decided by the CPU scheduler rather than by the network pipeline), and
//! measures each tenant's fraction of consumed CPU plus the aggregate
//! throughput. On a multiprocessor the
//! container-aware load balancer is what keeps the split at the
//! configured shares; the same scenario at `ncpus = 1` exercises the
//! classic uniprocessor path and serves as the scaling baseline.

use httpsim::stats::shared_stats;
use httpsim::ThreadPoolServer;
use rescon::{Attributes, ContainerId};
use simcore::Nanos;
use simnet::Packet;
use simos::{Kernel, KernelConfig, World, WorldAction};

use crate::clients::{ClientSpec, HttpClients};
use crate::scenarios::virtual_servers::guest_addr;

/// Parameters of the SMP tenant experiment.
#[derive(Clone, Debug)]
pub struct SmpTenantsParams {
    /// Number of simulated CPUs.
    pub ncpus: u32,
    /// Fixed CPU share per tenant (summing to at most 1).
    pub shares: Vec<f64>,
    /// Closed-loop persistent clients per tenant (enough runnable workers
    /// to cover every CPU).
    pub clients_per_tenant: usize,
    /// Worker threads per tenant's server pool; `0` means one per client
    /// (each keep-alive connection parks on its worker).
    pub pool_size: u32,
    /// CPU burned parsing/handling each request (the knob that makes the
    /// workload CPU-bound).
    pub parse_cost: Nanos,
    /// Simulated run length.
    pub secs: u64,
}

impl Default for SmpTenantsParams {
    fn default() -> Self {
        SmpTenantsParams {
            ncpus: 4,
            shares: vec![0.7, 0.3],
            clients_per_tenant: 24,
            pool_size: 0,
            parse_cost: Nanos::from_micros(200),
            secs: 10,
        }
    }
}

/// Result of the SMP tenant experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct SmpTenantsResult {
    /// Number of simulated CPUs.
    pub ncpus: u32,
    /// Configured shares (normalized).
    pub configured: Vec<f64>,
    /// Measured fraction of total tenant CPU consumed by each tenant over
    /// the measurement window.
    pub measured: Vec<f64>,
    /// Per-tenant static throughput (requests/second).
    pub throughputs: Vec<f64>,
    /// Aggregate throughput across tenants (requests/second).
    pub total_throughput: f64,
    /// Threads migrated by the load balancer (zero at `ncpus = 1`).
    pub migrations: u64,
    /// Per-CPU busy fraction (charged + interrupt + overhead over
    /// elapsed), one entry per CPU.
    pub busy_fraction: Vec<f64>,
    /// Kernel events processed, for the simulator self-benchmark.
    pub sim_events: u64,
}

/// Per-tenant client sets, routed by tenant address block (tenant `t`
/// clients live in `10.{100+t}.x.x`, like the virtual-server guests).
struct TenantWorld {
    tenants: Vec<HttpClients>,
}

/// Tag block per tenant.
const TENANT_SHIFT: u32 = 32;

impl World for TenantWorld {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        let (_, b, _, _) = pkt.flow.src.octets();
        let t = (b as usize).saturating_sub(100);
        if let Some(c) = self.tenants.get_mut(t) {
            let mut local = Vec::new();
            c.on_packet(pkt, now, &mut local);
            relabel(&mut local, t);
            actions.extend(local);
        }
    }

    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        let t = (tag >> TENANT_SHIFT) as usize;
        if let Some(c) = self.tenants.get_mut(t) {
            let mut local = Vec::new();
            c.on_timer(tag & ((1 << TENANT_SHIFT) - 1), now, &mut local);
            relabel(&mut local, t);
            actions.extend(local);
        }
    }
}

fn relabel(actions: &mut [WorldAction], t: usize) {
    for a in actions.iter_mut() {
        if let WorldAction::SetTimer { tag, .. } = a {
            *tag |= (t as u64) << TENANT_SHIFT;
        }
    }
}

/// Runs the SMP tenant experiment on the RC kernel with `ncpus` CPUs.
pub fn run_smp_tenants(params: SmpTenantsParams) -> SmpTenantsResult {
    let n = params.shares.len();
    assert!(n >= 1, "need at least one tenant");
    let ncpus = params.ncpus.max(1);
    let pool = if params.pool_size == 0 {
        params.clients_per_tenant as u32
    } else {
        params.pool_size
    };
    let secs = params.secs.max(4);
    let end = Nanos::from_secs(secs);
    let warmup = Nanos::from_secs(2).min(end / 4);

    let mut k = Kernel::new(KernelConfig::resource_containers().with_ncpus(ncpus));

    // Top-level tenant containers with fixed shares.
    let tenants: Vec<ContainerId> = params
        .shares
        .iter()
        .enumerate()
        .map(|(t, &share)| {
            k.containers
                .create(
                    None,
                    Attributes::fixed_share(share).named(&format!("tenant-{t}")),
                )
                .expect("tenant container")
        })
        .collect();

    // One CPU-bound thread-pool server per tenant, inside its container.
    // All connections charge the tenant (no per-connection containers):
    // the experiment is about dividing the machine between tenants.
    for (t, &tenant) in tenants.iter().enumerate() {
        let stats = shared_stats();
        k.spawn_process(
            Box::new(ThreadPoolServer::new(
                8000 + t as u16,
                pool,
                params.parse_cost,
                1024,
                false,
                stats,
            )),
            &format!("tenant-httpd-{t}"),
            Some(tenant),
            Attributes::time_shared(10),
            None,
        );
    }

    // Closed-loop client sets, one per tenant.
    let mut world = TenantWorld {
        tenants: Vec::new(),
    };
    for t in 0..n {
        let specs: Vec<ClientSpec> = (0..params.clients_per_tenant)
            .map(|i| {
                let mut s = ClientSpec::staticloop(guest_addr(t, i), 0)
                    .with_kind(httpsim::ReqKind::StaticKeepAlive)
                    .starting_at(Nanos::from_micros(10 + 7 * i as u64));
                s.port = 8000 + t as u16;
                s
            })
            .collect();
        let clients = HttpClients::new(specs, warmup, end);
        for i in 0..clients.len() {
            k.arm_world_timer(
                ((t as u64) << TENANT_SHIFT) | (i as u64 * 4),
                Nanos::from_micros(10 + 7 * i as u64),
            );
        }
        world.tenants.push(clients);
    }

    // Warmup, snapshot per-tenant CPU, measure.
    k.run(&mut world, warmup);
    let cpu0: Vec<Nanos> = tenants
        .iter()
        .map(|&t| k.containers.subtree_cpu(t).unwrap())
        .collect();
    k.run(&mut world, end);
    let deltas: Vec<Nanos> = tenants
        .iter()
        .zip(&cpu0)
        .map(|(&t, &c0)| k.containers.subtree_cpu(t).unwrap() - c0)
        .collect();
    let total: Nanos = deltas.iter().copied().sum();

    let share_sum: f64 = params.shares.iter().sum();
    let throughputs: Vec<f64> = (0..n)
        .map(|t| world.tenants[t].metrics.throughput(0))
        .collect();
    SmpTenantsResult {
        ncpus,
        configured: params.shares.iter().map(|s| s / share_sum).collect(),
        measured: deltas.iter().map(|&d| d.ratio(total)).collect(),
        total_throughput: throughputs.iter().sum(),
        throughputs,
        migrations: k.stats().migrations,
        busy_fraction: k
            .per_cpu_stats()
            .iter()
            .map(|c| {
                let busy = c.charged_cpu + c.interrupt_cpu + c.overhead_cpu;
                busy.ratio(c.total())
            })
            .collect(),
        sim_events: k.stats().sim_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduced(ncpus: u32) -> SmpTenantsParams {
        SmpTenantsParams {
            ncpus,
            clients_per_tenant: 16,
            secs: 4,
            ..SmpTenantsParams::default()
        }
    }

    #[test]
    fn four_cpus_hold_global_shares_and_scale() {
        let r1 = run_smp_tenants(reduced(1));
        let r4 = run_smp_tenants(reduced(4));
        for (c, m) in r4.configured.iter().zip(&r4.measured) {
            assert!(
                (c - m).abs() < 0.05,
                "configured {c} vs measured {m} ({:?})",
                r4.measured
            );
        }
        assert!(
            r4.total_throughput > 2.0 * r1.total_throughput,
            "4-CPU {} req/s vs 1-CPU {} req/s",
            r4.total_throughput,
            r1.total_throughput
        );
        assert!(r4.migrations > 0, "balancer never migrated");
        assert_eq!(r1.migrations, 0, "uniprocessor must never migrate");
        assert_eq!(r4.busy_fraction.len(), 4);
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_smp_tenants(reduced(2));
        let b = run_smp_tenants(reduced(2));
        assert_eq!(a.measured, b.measured);
        assert_eq!(a.throughputs, b.throughputs);
        assert_eq!(a.migrations, b.migrations);
    }
}
