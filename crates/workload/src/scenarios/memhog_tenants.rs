//! Kernel-memory isolation between tenants (`simmem` tentpole).
//!
//! §4.4 of the paper counts the kernel memory consumed on behalf of an
//! activity as part of that activity's resource bill. This experiment
//! pits two tenants against each other under a memory-configured kernel:
//!
//! - the **guaranteed** tenant runs a disk-backed web server whose working
//!   set fits comfortably in the buffer cache, so at steady state it serves
//!   almost entirely from memory;
//! - the **hog** tenant runs a process that leaks pinned kernel memory
//!   (`kmem_reserve`) and streams files through the cache, but its tenant
//!   container carries a small `mem_limit`.
//!
//! With memory as a charged, limited resource, the hog's pressure is
//! self-inflicted: reclaim steals the *hog's own* cache pages (traced as
//! `Reclaim` charged to the hog's subtree), and when reclaim cannot cover
//! a pinned allocation the container-targeted OOM killer seizes the hog's
//! reservations and notifies it with `AppEvent::MemKill`. The guaranteed
//! tenant's cache pages are never touched, so its hit rate and tail
//! latency stay within a few percent of a solo run.

use std::cell::RefCell;
use std::rc::Rc;

use httpsim::stats::shared_stats;
use httpsim::{EventDrivenServer, FileBacking, ServerConfig};
use rescon::Attributes;
use sched::TaskId;
use simcore::Nanos;
use simdisk::DiskParams;
use simos::{AppEvent, AppHandler, Kernel, KernelConfig, MemParams, SysCtx};

use super::disk_tenants::{tenant_addr, TenantWorld, TENANT_SHIFT};
use crate::clients::{ClientSpec, HttpClients};

/// Parameters of the two-tenant memory experiment.
#[derive(Clone, Debug)]
pub struct MemhogTenantsParams {
    /// Fixed CPU/disk shares of (guaranteed, hog).
    pub shares: (f64, f64),
    /// `mem_limit` on the hog tenant's subtree, in bytes.
    pub hog_mem_limit: u64,
    /// Closed-loop clients driving the guaranteed tenant.
    pub g_clients: usize,
    /// Documents each guaranteed client sweeps (its private slice).
    pub g_docs: u32,
    /// Guaranteed-tenant file size in KiB (working set = clients × docs ×
    /// size, sized to fit the cache).
    pub g_file_kib: u64,
    /// Bytes of pinned kernel memory the hog leaks per period.
    pub hog_chunk: u64,
    /// Hog leak/read period in microseconds.
    pub hog_period_us: u64,
    /// Distinct files the hog streams through the cache.
    pub hog_files: u32,
    /// Hog file size in KiB.
    pub hog_file_kib: u64,
    /// Buffer-cache capacity in bytes.
    pub cache_bytes: u64,
    /// Simulated run length.
    pub secs: u64,
}

impl Default for MemhogTenantsParams {
    fn default() -> Self {
        MemhogTenantsParams {
            shares: (0.7, 0.3),
            hog_mem_limit: 256 * 1024,
            g_clients: 8,
            g_docs: 16,
            g_file_kib: 4,
            hog_chunk: 16 * 1024,
            hog_period_us: 2_000,
            hog_files: 128,
            hog_file_kib: 8,
            cache_bytes: 2 * 1024 * 1024,
            secs: 10,
        }
    }
}

/// Guaranteed-tenant measurements for one run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TenantSnapshot {
    /// Windowed request throughput in req/s.
    pub throughput: f64,
    /// Mean windowed response time in ms.
    pub mean_latency_ms: f64,
    /// 99th-percentile windowed response time in ms.
    pub p99_ms: f64,
    /// Buffer-cache hit rate of the tenant's file reads.
    pub cache_hit_rate: f64,
}

/// What the hog observed from its side of the memory war.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct HogSnapshot {
    /// Successful `kmem_reserve` calls.
    pub reserve_ok: u64,
    /// Reservations refused with `SysError::NoMem`.
    pub nomem: u64,
    /// `AppEvent::MemKill` notifications received.
    pub kills: u64,
    /// File reads completed.
    pub reads: u64,
}

/// Kernel-side memory counters at the end of a run.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MemCounters {
    /// Live charged kernel memory at end of run, in bytes.
    pub total_bytes: u64,
    /// Cache pages stolen from over-limit subtrees.
    pub reclaims: u64,
    /// Bytes those steals returned.
    pub reclaimed_bytes: u64,
    /// Container-targeted OOM kills.
    pub oom_kills: u64,
    /// Hard allocations refused even after reclaim and OOM.
    pub refusals: u64,
    /// `MemPressure` events (charges landing above the pressure fraction).
    pub pressure_events: u64,
}

/// Result of the memory-isolation experiment: the guaranteed tenant solo
/// vs. next to the hog, plus the hog's and the kernel's view of the fight.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MemhogTenantsResult {
    /// Guaranteed tenant running alone (baseline).
    pub solo: TenantSnapshot,
    /// Guaranteed tenant sharing the kernel with the hog.
    pub shared: TenantSnapshot,
    /// Hog-side counters from the shared run.
    pub hog: HogSnapshot,
    /// Kernel memory counters from the shared run.
    pub mem: MemCounters,
    /// Kernel events processed across both runs, for the simulator
    /// self-benchmark.
    pub sim_events: u64,
}

#[derive(Debug, Default)]
struct MemHogStats {
    reserve_ok: u64,
    nomem: u64,
    kills: u64,
    reads: u64,
}

type SharedHogStats = Rc<RefCell<MemHogStats>>;

/// A tenant that leaks pinned kernel memory and streams files through the
/// buffer cache on a fixed period, shrugging off OOM kills and carrying on.
struct MemHog {
    chunk: u64,
    period: Nanos,
    files: u32,
    file_kib: u64,
    file_base: u64,
    next_file: u32,
    stats: SharedHogStats,
}

impl AppHandler for MemHog {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _thread: TaskId, event: AppEvent) {
        match event {
            AppEvent::Start => {
                let deadline = sys.now() + self.period;
                sys.sleep_until(deadline, 0);
            }
            AppEvent::Timer { .. } => {
                match sys.kmem_reserve(self.chunk) {
                    Ok(()) => self.stats.borrow_mut().reserve_ok += 1,
                    Err(_) => self.stats.borrow_mut().nomem += 1,
                }
                let file = self.file_base + self.next_file as u64;
                self.next_file = (self.next_file + 1) % self.files.max(1);
                sys.read_file(file, self.file_kib * 1024, 1, None);
                let deadline = sys.now() + self.period;
                sys.sleep_until(deadline, 0);
            }
            AppEvent::FileRead { .. } => {
                self.stats.borrow_mut().reads += 1;
            }
            AppEvent::MemKill { .. } => {
                // The kernel seized our reservations and reset our charge;
                // keep leaking — each round trip exercises reclaim → OOM.
                self.stats.borrow_mut().kills += 1;
            }
            _ => {}
        }
    }
}

struct RunOutcome {
    tenant: TenantSnapshot,
    hog: HogSnapshot,
    mem: MemCounters,
    sim_events: u64,
}

fn run_once(params: &MemhogTenantsParams, with_hog: bool) -> RunOutcome {
    let secs = params.secs.max(4);
    let end = Nanos::from_secs(secs);
    let warmup = Nanos::from_secs(2).min(end / 4);

    let mut cfg = KernelConfig::resource_containers()
        .with_disk(DiskParams::default())
        .with_mem(MemParams::new());
    cfg.disk.buffer_cache_bytes = params.cache_bytes;
    let mut k = Kernel::new(cfg);

    let guaranteed = k
        .containers
        .create(
            None,
            Attributes::fixed_share(params.shares.0).named("guaranteed"),
        )
        .expect("guaranteed tenant");

    let g_stats = shared_stats();
    let server_cfg = ServerConfig {
        port: 8000,
        conn_parent: Some(guaranteed),
        container_per_connection: false,
        response_bytes: params.g_file_kib * 1024,
        files: FileBacking::Disk { file_base: 0 },
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(server_cfg, g_stats.clone())),
        "guaranteed-httpd",
        Some(guaranteed),
        Attributes::time_shared(10),
        None,
    );

    let hog_stats: SharedHogStats = Rc::new(RefCell::new(MemHogStats::default()));
    if with_hog {
        let hog = k
            .containers
            .create(
                None,
                Attributes::fixed_share(params.shares.1)
                    .with_mem_limit(params.hog_mem_limit)
                    .named("memhog"),
            )
            .expect("hog tenant");
        k.spawn_process(
            Box::new(MemHog {
                chunk: params.hog_chunk,
                period: Nanos::from_micros(params.hog_period_us.max(1)),
                files: params.hog_files,
                file_kib: params.hog_file_kib,
                file_base: 1 << 32,
                next_file: 0,
                stats: hog_stats.clone(),
            }),
            "memhog",
            Some(hog),
            Attributes::time_shared(10),
            None,
        );
    }

    // Guaranteed-tenant clients: each sweeps a private slice of the
    // document space, sized so the union fits the buffer cache.
    let specs: Vec<ClientSpec> = (0..params.g_clients)
        .map(|i| {
            let mut s = ClientSpec::staticloop(tenant_addr(0, i), 0)
                .cycling_docs(params.g_docs)
                .starting_at(Nanos::from_micros(10 + 7 * i as u64));
            s.doc = i as u32 * params.g_docs;
            s.port = 8000;
            s
        })
        .collect();
    let clients = HttpClients::new(specs, warmup, end);
    for i in 0..clients.len() {
        k.arm_world_timer(i as u64 * 4, Nanos::from_micros(10 + 7 * i as u64));
    }
    let mut world = TenantWorld {
        tenants: vec![clients],
    };
    // The single tenant owns timer-tag block 0 of the shared TenantWorld
    // routing (clients live in 10.100.x.x), so no extra relabeling needed.
    debug_assert_eq!(0u64 << TENANT_SHIFT, 0);

    k.run(&mut world, end);

    let stats = g_stats.borrow();
    let m = &world.tenants[0].metrics;
    let tenant = TenantSnapshot {
        throughput: m.throughput(0),
        mean_latency_ms: m.mean_latency_ms(0),
        p99_ms: m.class(0).latency_ms.quantile(0.99),
        cache_hit_rate: stats.cache_hit_rate(),
    };
    let acct = k.mem_acct().expect("memory-configured kernel");
    let mem = MemCounters {
        total_bytes: acct.total(),
        reclaims: acct.reclaims,
        reclaimed_bytes: acct.reclaimed_bytes,
        oom_kills: acct.oom_kills,
        refusals: acct.refusals,
        pressure_events: acct.pressure_events,
    };
    let h = hog_stats.borrow();
    RunOutcome {
        tenant,
        hog: HogSnapshot {
            reserve_ok: h.reserve_ok,
            nomem: h.nomem,
            kills: h.kills,
            reads: h.reads,
        },
        mem,
        sim_events: k.stats().sim_events,
    }
}

/// Runs the guaranteed tenant solo, then next to the hog, and reports both.
pub fn run_memhog_tenants(params: MemhogTenantsParams) -> MemhogTenantsResult {
    let solo = run_once(&params, false);
    let shared = run_once(&params, true);
    MemhogTenantsResult {
        solo: solo.tenant,
        shared: shared.tenant,
        hog: shared.hog,
        mem: shared.mem,
        sim_events: solo.sim_events + shared.sim_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduced() -> MemhogTenantsResult {
        run_memhog_tenants(MemhogTenantsParams {
            secs: 6,
            ..MemhogTenantsParams::default()
        })
    }

    #[test]
    fn hog_is_reclaimed_and_oom_killed() {
        let r = reduced();
        assert!(r.mem.reclaims > 0, "no cache pages reclaimed: {r:?}");
        assert!(r.mem.oom_kills > 0, "no container-targeted OOM: {r:?}");
        assert_eq!(
            r.mem.oom_kills, r.hog.kills,
            "every OOM kill should land on the hog: {r:?}"
        );
        assert!(r.mem.pressure_events > 0, "no pressure events: {r:?}");
        assert!(
            r.hog.reserve_ok > 0,
            "hog never got a reservation in: {r:?}"
        );
    }

    #[test]
    fn guaranteed_tenant_unaffected_by_hog() {
        let r = reduced();
        assert!(
            r.solo.cache_hit_rate > 0.9,
            "solo baseline not cache-resident: {r:?}"
        );
        assert!(
            r.shared.cache_hit_rate >= 0.95 * r.solo.cache_hit_rate,
            "hit rate degraded beyond 5%: {r:?}"
        );
        assert!(
            r.shared.p99_ms <= 1.05 * r.solo.p99_ms.max(0.01),
            "p99 degraded beyond 5%: {r:?}"
        );
        assert!(
            r.shared.throughput >= 0.95 * r.solo.throughput,
            "throughput degraded beyond 5%: {r:?}"
        );
    }
}
