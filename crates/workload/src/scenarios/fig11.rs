//! Figure 11: prioritized handling of clients.
//!
//! "Our experiment used an increasing number of low-priority clients to
//! saturate a server, while a single high-priority client made requests of
//! the server. ... The y-axis shows the response time seen by the
//! high-priority client as a function of the number of concurrent
//! low-priority clients."
//!
//! Three systems:
//! - **Without containers** (the unmodified kernel; the application tries
//!   to prefer the high-priority client at user level, futilely);
//! - **With containers + `select()`** — kernel processing is prioritized
//!   but the `select()` scan cost grows with the connection count;
//! - **With containers + the scalable event API** — nearly flat response
//!   time; only interrupt-level demultiplexing of low-priority packets
//!   remains uncontrolled.

use httpsim::stats::shared_stats;
use httpsim::{ClassSpec, EventApi, EventDrivenServer, ServerConfig};
use rescon::Attributes;
use simcore::Nanos;
use simnet::{CidrFilter, IpAddr};
use simos::{Kernel, KernelConfig};

use crate::clients::{ClientSpec, HttpClients};

/// Address of the single high-priority client.
pub const HIGH_ADDR: IpAddr = IpAddr::new(10, 9, 9, 9);

/// The three systems of Figure 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig11System {
    /// Unmodified kernel; app-level preference only.
    Unmodified,
    /// Resource containers, `select()`-based server.
    RcSelect,
    /// Resource containers, scalable event API.
    RcEventApi,
}

impl Fig11System {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Fig11System::Unmodified => "without containers",
            Fig11System::RcSelect => "containers + select()",
            Fig11System::RcEventApi => "containers + event API",
        }
    }
}

/// Parameters of one Figure 11 point.
#[derive(Clone, Debug)]
pub struct Fig11Params {
    /// Which system variant.
    pub system: Fig11System,
    /// Number of concurrent low-priority closed-loop clients.
    pub low_clients: usize,
    /// Simulated run length.
    pub secs: u64,
}

/// Result of one Figure 11 point.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct Fig11Result {
    /// Mean response time of the high-priority client, in ms.
    pub t_high_ms: f64,
    /// 95th-percentile high-priority response time, in ms.
    pub t_high_p95_ms: f64,
    /// Low-priority aggregate throughput (sanity: the server is saturated).
    pub low_throughput: f64,
    /// High-priority requests completed in the window.
    pub high_completed: u64,
}

/// Runs one Figure 11 point.
pub fn run_fig11(params: Fig11Params) -> Fig11Result {
    let secs = params.secs.max(2);
    let end = Nanos::from_secs(secs);
    let warmup = Nanos::from_secs(1).min(end / 4);

    let (kernel, api, classes, preferred) = match params.system {
        Fig11System::Unmodified => (
            KernelConfig::unmodified(),
            EventApi::Select,
            vec![ClassSpec::default_class()],
            // The app's futile best effort (§5.5: "The application
            // attempted to give preference to requests from the
            // high-priority client").
            Some(CidrFilter::new(HIGH_ADDR, 32)),
        ),
        Fig11System::RcSelect | Fig11System::RcEventApi => (
            KernelConfig::resource_containers(),
            if params.system == Fig11System::RcSelect {
                EventApi::Select
            } else {
                EventApi::Scalable
            },
            vec![
                ClassSpec {
                    name: "high".to_string(),
                    filter: CidrFilter::new(HIGH_ADDR, 32),
                    priority: 20,
                    notify_syn_drops: false,
                },
                ClassSpec {
                    name: "low".to_string(),
                    filter: CidrFilter::any(),
                    priority: 10,
                    notify_syn_drops: false,
                },
            ],
            Some(CidrFilter::new(HIGH_ADDR, 32)),
        ),
    };

    let stats = shared_stats();
    let mut k = Kernel::new(kernel);
    let cfg = ServerConfig {
        api,
        classes,
        preferred,
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(cfg, stats)),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );

    // Class 0 = high-priority client, class 1 = the low-priority mob.
    let mut specs = vec![ClientSpec::staticloop(HIGH_ADDR, 0)];
    for i in 0..params.low_clients {
        specs.push(
            ClientSpec::staticloop(low_addr(i), 1)
                .starting_at(Nanos::from_micros(100 + 13 * i as u64)),
        );
    }
    let mut clients = HttpClients::new(specs, warmup, end);
    clients.arm(&mut k);
    k.run(&mut clients, end);

    let m = &clients.metrics;
    let t_high_p95_ms = m.class(0).latency_ms.quantile(0.95);
    Fig11Result {
        t_high_ms: m.mean_latency_ms(0),
        t_high_p95_ms,
        low_throughput: m.throughput(1),
        high_completed: m.class(0).completed_in_window,
    }
}

/// Address of low-priority client `i`.
pub fn low_addr(i: usize) -> IpAddr {
    IpAddr::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_priority_isolated_by_containers() {
        let n = 20;
        let unmod = run_fig11(Fig11Params {
            system: Fig11System::Unmodified,
            low_clients: n,
            secs: 3,
        });
        let rc_sel = run_fig11(Fig11Params {
            system: Fig11System::RcSelect,
            low_clients: n,
            secs: 3,
        });
        let rc_ev = run_fig11(Fig11Params {
            system: Fig11System::RcEventApi,
            low_clients: n,
            secs: 3,
        });
        // Qualitative ordering of the paper's three curves.
        assert!(
            unmod.t_high_ms > 2.0 * rc_sel.t_high_ms,
            "unmod {} vs rc+select {}",
            unmod.t_high_ms,
            rc_sel.t_high_ms
        );
        assert!(
            rc_ev.t_high_ms <= rc_sel.t_high_ms * 1.2,
            "rc+event {} vs rc+select {}",
            rc_ev.t_high_ms,
            rc_sel.t_high_ms
        );
        // The server stays saturated by low-priority clients in all cases.
        assert!(unmod.low_throughput > 1000.0);
        assert!(rc_ev.low_throughput > 1000.0);
    }

    #[test]
    fn no_load_means_low_latency_everywhere() {
        for system in [
            Fig11System::Unmodified,
            Fig11System::RcSelect,
            Fig11System::RcEventApi,
        ] {
            let r = run_fig11(Fig11Params {
                system,
                low_clients: 0,
                secs: 2,
            });
            assert!(
                r.t_high_ms < 1.0,
                "{}: unloaded latency {}",
                system.label(),
                r.t_high_ms
            );
        }
    }
}
