//! Figures 12 and 13: controlling the resource usage of CGI processing.
//!
//! "We measured the throughput of our Web server (for cached, 1 KB static
//! documents) while increasing the number of concurrent requests for a
//! dynamic (CGI) resource. Each CGI request process consumed about 2
//! seconds of CPU time."
//!
//! Four systems:
//! - **Unmodified**: CGI processes each get a fair CPU share, *and* the
//!   server's kernel network processing is free (interrupt level), so the
//!   server keeps slightly more CPU than a fair share — yet static
//!   throughput still collapses as CGI processes multiply.
//! - **LRP**: accounting is fixed, so the server gets exactly `1/(n+1)` —
//!   static throughput drops *further*.
//! - **RC (30%)** and **RC (10%)**: the CGI-parent container caps total
//!   CGI CPU; static throughput stays flat (the "resource sandbox").

use httpsim::event_driven::CgiSandbox;
use httpsim::stats::shared_stats;
use httpsim::{EventDrivenServer, ReqKind, ServerConfig};
use rescon::Attributes;
use simcore::Nanos;
use simnet::IpAddr;
use simos::{Kernel, KernelConfig};

use crate::clients::{ClientSpec, HttpClients};

/// The systems compared in Figures 12/13.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fig12System {
    /// Classic kernel, interrupt-level network processing.
    Unmodified,
    /// LRP kernel: accurate per-process accounting.
    Lrp,
    /// Resource containers with the CGI-parent limited to this fraction.
    Rc {
        /// CPU-limit fraction of the CGI sandbox (0.30 and 0.10 in the
        /// paper).
        limit: f64,
    },
}

impl Fig12System {
    /// Label used in reports.
    pub fn label(self) -> String {
        match self {
            Fig12System::Unmodified => "Unmodified System".to_string(),
            Fig12System::Lrp => "LRP System".to_string(),
            Fig12System::Rc { limit } => format!("RC System ({:.0}%)", limit * 100.0),
        }
    }
}

/// Parameters of one Figure 12/13 point.
#[derive(Clone, Debug)]
pub struct Fig12Params {
    /// System variant.
    pub system: Fig12System,
    /// Number of concurrent CGI requests (closed-loop CGI clients).
    pub cgi_clients: usize,
    /// Number of closed-loop static clients (enough to saturate).
    pub static_clients: usize,
    /// CPU burned per CGI request.
    pub cgi_cpu: Nanos,
    /// Simulated run length.
    pub secs: u64,
}

impl Default for Fig12Params {
    fn default() -> Self {
        Fig12Params {
            system: Fig12System::Unmodified,
            cgi_clients: 0,
            static_clients: 24,
            cgi_cpu: Nanos::from_secs(2),
            secs: 30,
        }
    }
}

/// Result of one Figure 12/13 point.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct Fig12Result {
    /// Static-document throughput (Figure 12's y-axis).
    pub static_throughput: f64,
    /// Fraction of total CPU consumed by CGI processing in the window
    /// (Figure 13's y-axis).
    pub cgi_cpu_share: f64,
    /// CGI requests completed in the run.
    pub cgi_completed: u64,
}

/// Runs one Figure 12/13 point.
pub fn run_fig12(params: Fig12Params) -> Fig12Result {
    let secs = params.secs.max(4);
    let end = Nanos::from_secs(secs);
    let warmup = Nanos::from_secs(2).min(end / 4);

    let (kernel, sandbox) = match params.system {
        Fig12System::Unmodified => (KernelConfig::unmodified(), None),
        Fig12System::Lrp => (KernelConfig::lrp(), None),
        Fig12System::Rc { limit } => (
            KernelConfig::resource_containers(),
            Some(CgiSandbox {
                share: limit,
                limit,
                window: Nanos::from_millis(200),
            }),
        ),
    };

    let stats = shared_stats();
    let mut k = Kernel::new(kernel);

    // Accounting container for baseline CGI processes: inert under the
    // decay-usage scheduler, but lets us read total CGI CPU from one
    // subtree in every system.
    let cgi_acct = if sandbox.is_none() {
        Some(
            k.containers
                .create(None, Attributes::fixed_share(0.95).named("cgi-acct"))
                .expect("accounting container"),
        )
    } else {
        None
    };

    let cfg = ServerConfig {
        cgi_cpu: params.cgi_cpu,
        cgi_sandbox: sandbox,
        cgi_container_parent: cgi_acct,
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(cfg, stats.clone())),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );

    // Class 0: static clients; class 1: CGI clients.
    let mut specs: Vec<ClientSpec> = (0..params.static_clients)
        .map(|i| {
            ClientSpec::staticloop(static_addr(i), 0)
                .starting_at(Nanos::from_micros(10 + 7 * i as u64))
        })
        .collect();
    for i in 0..params.cgi_clients {
        specs.push(
            ClientSpec::staticloop(cgi_addr(i), 1)
                .with_kind(ReqKind::Cgi)
                .starting_at(Nanos::from_micros(100 + 11 * i as u64)),
        );
    }
    let mut clients = HttpClients::new(specs, warmup, end);
    clients.arm(&mut k);

    // Warmup, snapshot CGI CPU, measure.
    k.run(&mut clients, warmup);
    let cgi_root = cgi_root_container(&k, cgi_acct);
    let cgi0 = cgi_root
        .map(|c| k.containers.subtree_cpu(c).unwrap_or(Nanos::ZERO))
        .unwrap_or(Nanos::ZERO);
    k.run(&mut clients, end);
    let cgi1 = cgi_root
        .map(|c| k.containers.subtree_cpu(c).unwrap_or(Nanos::ZERO))
        .unwrap_or(Nanos::ZERO);

    let window = end - warmup;
    let cgi_completed = stats.borrow().cgi_completed;
    Fig12Result {
        static_throughput: clients.metrics.throughput(0),
        cgi_cpu_share: (cgi1.saturating_sub(cgi0)).ratio(window),
        cgi_completed,
    }
}

fn cgi_root_container(
    k: &Kernel,
    acct: Option<rescon::ContainerId>,
) -> Option<rescon::ContainerId> {
    if let Some(a) = acct {
        return Some(a);
    }
    k.containers
        .iter()
        .find(|(_, c)| c.attrs().name.as_deref() == Some("cgi-parent"))
        .map(|(id, _)| id)
}

/// Address of static client `i`.
pub fn static_addr(i: usize) -> IpAddr {
    IpAddr::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1)
}

/// Address of CGI client `i`.
pub fn cgi_addr(i: usize) -> IpAddr {
    IpAddr::new(10, 50, 0, i as u8 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down run (0.2 s CGI bursts, short window) asserting the
    /// qualitative shape of Figures 12 and 13 at n = 3.
    #[test]
    fn shape_matches_paper_at_three_cgi_clients() {
        let run = |system| {
            run_fig12(Fig12Params {
                system,
                cgi_clients: 3,
                static_clients: 12,
                cgi_cpu: Nanos::from_millis(200),
                secs: 8,
            })
        };
        let unmod = run(Fig12System::Unmodified);
        let lrp = run(Fig12System::Lrp);
        let rc30 = run(Fig12System::Rc { limit: 0.30 });
        let rc10 = run(Fig12System::Rc { limit: 0.10 });

        // Figure 12: static throughput ordering.
        assert!(
            unmod.static_throughput > lrp.static_throughput,
            "unmod {} vs lrp {}",
            unmod.static_throughput,
            lrp.static_throughput
        );
        assert!(
            rc30.static_throughput > unmod.static_throughput,
            "rc30 {} vs unmod {}",
            rc30.static_throughput,
            unmod.static_throughput
        );
        assert!(
            rc10.static_throughput > rc30.static_throughput,
            "rc10 {} vs rc30 {}",
            rc10.static_throughput,
            rc30.static_throughput
        );

        // Figure 13: CGI CPU shares. LRP gives CGI n/(n+1) = 0.75;
        // unmodified slightly less (server over-served); RC clamps.
        assert!(
            (lrp.cgi_cpu_share - 0.75).abs() < 0.12,
            "lrp share {}",
            lrp.cgi_cpu_share
        );
        assert!(
            unmod.cgi_cpu_share < lrp.cgi_cpu_share,
            "unmod {} vs lrp {}",
            unmod.cgi_cpu_share,
            lrp.cgi_cpu_share
        );
        assert!(
            (rc30.cgi_cpu_share - 0.30).abs() < 0.06,
            "rc30 share {}",
            rc30.cgi_cpu_share
        );
        assert!(
            (rc10.cgi_cpu_share - 0.10).abs() < 0.05,
            "rc10 share {}",
            rc10.cgi_cpu_share
        );
    }

    #[test]
    fn no_cgi_means_full_static_throughput() {
        let r = run_fig12(Fig12Params {
            system: Fig12System::Unmodified,
            cgi_clients: 0,
            static_clients: 12,
            cgi_cpu: Nanos::from_millis(100),
            secs: 5,
        });
        assert!(
            (r.static_throughput - 2954.0).abs() / 2954.0 < 0.12,
            "throughput {}",
            r.static_throughput
        );
        assert!(r.cgi_cpu_share < 0.01);
    }
}
