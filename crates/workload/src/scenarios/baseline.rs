//! §5.3 baseline throughput, and the §5.4 overhead check.
//!
//! Paper: "our server achieved a rate of 2954 requests/sec. using
//! connection-per-request HTTP, and 9487 requests/sec. using
//! persistent-connection HTTP. These rates saturated the CPU,
//! corresponding to per-request CPU costs of 338 µs and 105 µs."
//!
//! §5.4 then verifies that creating a new resource container for each
//! request leaves throughput "effectively unchanged".

use httpsim::stats::shared_stats;
use httpsim::{EventDrivenServer, ReqKind, ServerConfig};
use rescon::Attributes;
use simcore::Nanos;
use simnet::IpAddr;
use simos::{Kernel, KernelConfig};

use crate::clients::{ClientSpec, HttpClients};

/// Parameters of a baseline-throughput run.
#[derive(Clone, Debug)]
pub struct BaselineParams {
    /// Persistent-connection HTTP (vs one connection per request).
    pub persistent: bool,
    /// Number of concurrent closed-loop clients (enough to saturate).
    pub clients: usize,
    /// Kernel variant.
    pub kernel: KernelConfig,
    /// Create a container per request (the §5.4 overhead check; only
    /// meaningful on a containers-enabled kernel).
    pub per_request_containers: bool,
    /// Simulated run length.
    pub secs: u64,
}

impl Default for BaselineParams {
    fn default() -> Self {
        BaselineParams {
            persistent: false,
            clients: 24,
            kernel: KernelConfig::unmodified(),
            per_request_containers: false,
            secs: 10,
        }
    }
}

/// Result of a baseline-throughput run.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct BaselineResult {
    /// Sustained requests per second in the measurement window.
    pub requests_per_sec: f64,
    /// Implied CPU cost per request in microseconds (busy fraction divided
    /// by throughput).
    pub cpu_per_request_us: f64,
    /// Total completed requests.
    pub completed: u64,
    /// Fraction of CPU busy during the run.
    pub busy_fraction: f64,
    /// Kernel events delivered over the whole run — the numerator of the
    /// simulator's events-per-second self-benchmark (`rcbench --bin perf`).
    pub sim_events: u64,
}

/// Runs the baseline-throughput experiment.
pub fn run_baseline(params: BaselineParams) -> BaselineResult {
    let secs = params.secs.max(2);
    let end = Nanos::from_secs(secs);
    let warmup = Nanos::from_secs(1).min(end / 4);

    let stats = shared_stats();
    let mut k = Kernel::new(params.kernel.clone());
    let cfg = ServerConfig {
        container_per_connection: params.per_request_containers,
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(cfg, stats.clone())),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );

    let kind = if params.persistent {
        ReqKind::StaticKeepAlive
    } else {
        ReqKind::Static
    };
    let specs: Vec<ClientSpec> = (0..params.clients)
        .map(|i| {
            ClientSpec::staticloop(client_addr(i), 0)
                .with_kind(kind)
                .starting_at(Nanos::from_micros(10 + 7 * i as u64))
        })
        .collect();
    let mut clients = HttpClients::new(specs, warmup, end);
    clients.arm(&mut k);

    // Warmup, snapshot, measure.
    k.run(&mut clients, warmup);
    let busy0 = k.stats().busy();
    k.run(&mut clients, end);
    let busy1 = k.stats().busy();

    let window = end - warmup;
    let throughput = clients.metrics.throughput(0);
    let busy_fraction = (busy1 - busy0).ratio(window);
    let cpu_per_request_us = if throughput > 0.0 {
        busy_fraction * 1e6 / throughput
    } else {
        0.0
    };
    BaselineResult {
        requests_per_sec: throughput,
        cpu_per_request_us,
        completed: clients.metrics.class(0).completed,
        busy_fraction,
        sim_events: k.stats().sim_events,
    }
}

/// Address of baseline client `i`.
pub fn client_addr(i: usize) -> IpAddr {
    IpAddr::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_request_throughput_matches_paper_within_ten_percent() {
        let r = run_baseline(BaselineParams {
            secs: 4,
            ..BaselineParams::default()
        });
        // Paper: 2954 req/s, 338 us per request.
        assert!(
            (r.requests_per_sec - 2954.0).abs() / 2954.0 < 0.10,
            "throughput = {}",
            r.requests_per_sec
        );
        assert!(
            (r.cpu_per_request_us - 338.0).abs() / 338.0 < 0.12,
            "cpu/request = {}",
            r.cpu_per_request_us
        );
        assert!(r.busy_fraction > 0.95, "busy = {}", r.busy_fraction);
    }

    #[test]
    fn persistent_throughput_matches_paper_within_ten_percent() {
        let r = run_baseline(BaselineParams {
            persistent: true,
            secs: 4,
            ..BaselineParams::default()
        });
        // Paper: 9487 req/s, 105 us per request.
        assert!(
            (r.requests_per_sec - 9487.0).abs() / 9487.0 < 0.10,
            "throughput = {}",
            r.requests_per_sec
        );
        assert!(
            (r.cpu_per_request_us - 105.0).abs() / 105.0 < 0.12,
            "cpu/request = {}",
            r.cpu_per_request_us
        );
    }

    #[test]
    fn container_per_request_overhead_negligible() {
        // §5.4: "The throughput of the system remained effectively
        // unchanged."
        let base = run_baseline(BaselineParams {
            kernel: KernelConfig::resource_containers(),
            per_request_containers: false,
            secs: 3,
            ..BaselineParams::default()
        });
        let with = run_baseline(BaselineParams {
            kernel: KernelConfig::resource_containers(),
            per_request_containers: true,
            secs: 3,
            ..BaselineParams::default()
        });
        let delta = (base.requests_per_sec - with.requests_per_sec).abs() / base.requests_per_sec;
        assert!(delta < 0.05, "overhead = {:.1}%", delta * 100.0);
    }
}
