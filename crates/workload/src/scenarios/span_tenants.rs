//! Two-tenant tail-latency attribution scenario for `rcspan`.
//!
//! A *paid* tenant (fixed share 0.7, transmit weight 3) serves small
//! mostly-cached documents; a *free* tenant (share 0.3, weight 1, a tight
//! kernel-memory limit) serves a large document sweep off the simulated
//! disk through a finite-bandwidth link, reserving per-request kernel
//! buffers that force cache reclaim — so its requests accumulate time in
//! every phase of the span taxonomy: SYN/accept queues, CPU, disk queue
//! and service, reclaim stalls, and the transmit queue and wire.
//!
//! The scenario registers one latency SLO per tenant with the `rctrace`
//! monitor: the paid tenant's objective is generous and met; the free
//! tenant's is deliberately far below what a saturated disk can deliver,
//! so the run *deterministically* flags SLO violations — the injected
//! signal the span smoke tests and the `rcbench --bin span` blame report
//! assert on.

use httpsim::stats::shared_stats;
use httpsim::{ClassSpec, EventDrivenServer, FileBacking, ServerConfig};
use rctrace::SloSpec;
use rescon::{Attributes, ContainerId};
use simcore::Nanos;
use simdisk::DiskParams;
use simos::{Kernel, KernelConfig, MemParams, QdiscKind, SchedPolicyKind};

use crate::clients::{ClientSpec, HttpClients};
use crate::scenarios::disk_tenants::{tenant_addr, TenantWorld, TENANT_SHIFT};

/// Parameters of the two-tenant span scenario.
#[derive(Clone, Debug)]
pub struct SpanTenantsParams {
    /// Closed-loop clients driving (paid, free).
    pub clients: (usize, usize),
    /// Response sizes in KiB (paid, free).
    pub response_kib: (u64, u64),
    /// Documents each tenant sweeps: the paid tenant's set fits the
    /// buffer cache, the free tenant's defeats it.
    pub docs: (u32, u32),
    /// Link bandwidth in Mbit/s.
    pub link_mbps: u64,
    /// Buffer-cache capacity in bytes.
    pub cache_bytes: u64,
    /// Kernel-memory limit of the free tenant's subtree.
    pub free_mem_limit: u64,
    /// Kernel buffers reserved per in-flight request.
    pub request_kmem: u64,
    /// Kernel CPU per KiB of cache reclaimed (the modelled stall).
    pub reclaim_cost_per_kib: Nanos,
    /// Latency SLOs: (paid p99 bound, free p99 bound). The free bound is
    /// the injected violation — set it below the disk's service floor.
    /// The same bounds double as the tenants' declared latency-target
    /// attributes, which the EDF CPU policy schedules against.
    pub slo_ms: (u64, u64),
    /// Simulated run length.
    pub secs: u64,
    /// Serve the paid tenant's documents from memory instead of disk.
    /// The A/B harness sets this so the paid tenant's tail is bounded by
    /// CPU scheduling (what a CPU policy can move) rather than by disk
    /// queueing behind the free tenant's sweep (what it cannot).
    pub paid_cached: bool,
    /// Per-request parse/render CPU of the paid tenant's server; `None`
    /// keeps the server default. The A/B harness raises this to model a
    /// dynamic-content tenant whose latency is CPU-scheduling-bound.
    pub paid_parse_cost: Option<Nanos>,
    /// CPU policy the kernel boots with; `None` keeps the config default.
    pub scheduler: Option<SchedPolicyKind>,
    /// Mid-run CPU policy swaps as (virtual time, policy), sorted by
    /// time. Empty keeps the run on the boot policy throughout.
    pub cpu_swaps: Vec<(Nanos, SchedPolicyKind)>,
}

impl Default for SpanTenantsParams {
    fn default() -> Self {
        SpanTenantsParams {
            clients: (6, 12),
            response_kib: (4, 32),
            docs: (64, 4096),
            link_mbps: 80,
            cache_bytes: 2 * 1024 * 1024,
            free_mem_limit: 512 * 1024,
            request_kmem: 64 * 1024,
            reclaim_cost_per_kib: Nanos::from_micros(2),
            slo_ms: (400, 2),
            secs: 8,
            paid_cached: false,
            paid_parse_cost: None,
            scheduler: None,
            cpu_swaps: Vec::new(),
        }
    }
}

/// Result of the two-tenant span scenario.
#[derive(Clone, Debug, serde::Serialize)]
pub struct SpanTenantsResult {
    /// Windowed request throughput per tenant: [paid, free].
    pub throughputs: Vec<f64>,
    /// Mean response time per tenant in ms: [paid, free].
    pub latencies_ms: Vec<f64>,
    /// p99 response time per tenant in ms: [paid, free].
    pub p99_ms: Vec<f64>,
    /// Cache pages stolen during the run (non-zero: the free tenant paid
    /// reclaim stalls).
    pub reclaims: u64,
    /// Virtual end time of the run, in nanoseconds.
    pub end_ns: u64,
    /// Kernel events delivered over the whole run (feeds the perf
    /// self-benchmark).
    pub sim_events: u64,
}

/// Tenant display names, in tenant order. The SLO registration resolves
/// them through [`rescon::ContainerTable::find_by_name`], exactly as an
/// operator's declarative config would.
pub const TENANT_NAMES: [&str; 2] = ["paid", "free"];

/// Runs the two-tenant span scenario. When an `rctrace` session is
/// active the per-tenant SLOs are registered with its online monitor;
/// span recording itself is the session's choice ([`rctrace::TraceConfig::spans`]).
pub fn run_span_tenants(params: SpanTenantsParams) -> SpanTenantsResult {
    let secs = params.secs.max(4);
    let end = Nanos::from_secs(secs);
    let warmup = Nanos::from_secs(2).min(end / 4);

    let mut cfg = KernelConfig::resource_containers()
        .with_disk(DiskParams::default())
        .with_link(params.link_mbps * 1_000_000, QdiscKind::Wfq)
        .with_mem(MemParams::new().with_reclaim_cost_per_kb(params.reclaim_cost_per_kib));
    cfg.disk.buffer_cache_bytes = params.cache_bytes;
    if let Some(kind) = params.scheduler {
        cfg = cfg.with_scheduler(kind);
    }
    let mut k = Kernel::new(cfg);

    let shares = [0.7, 0.3];
    let weights = [3u32, 1u32];
    let slo_ms = [params.slo_ms.0, params.slo_ms.1];
    let tenants: Vec<ContainerId> = (0..2)
        .map(|g| {
            let mut attrs = Attributes::fixed_share(shares[g])
                .named(TENANT_NAMES[g])
                .with_net_weight(weights[g]);
            // Declare the SLO bound as the tenant's latency target: only
            // the EDF CPU policy reads it, so runs under other policies
            // are unaffected.
            if slo_ms[g] > 0 {
                attrs = attrs.with_deadline(Nanos::from_millis(slo_ms[g]));
            }
            if g == 1 {
                attrs = attrs.with_mem_limit(params.free_mem_limit);
            }
            k.containers.create(None, attrs).expect("tenant container")
        })
        .collect();

    let response_kib = [params.response_kib.0, params.response_kib.1];
    for (g, &tenant) in tenants.iter().enumerate() {
        let mut cfg = ServerConfig {
            port: 8000 + g as u16,
            conn_parent: Some(tenant),
            container_per_connection: false,
            // One named class per tenant: its container (a child of the
            // tenant) is the principal every request's span and latency
            // record is attributed to, and the anchor the SLO monitor
            // resolves by name below.
            classes: vec![ClassSpec {
                name: format!("{}-web", TENANT_NAMES[g]),
                ..ClassSpec::default_class()
            }],
            response_bytes: response_kib[g] * 1024,
            files: if g == 0 && params.paid_cached {
                FileBacking::AlwaysCached
            } else {
                FileBacking::Disk {
                    file_base: (g as u64) << 32,
                }
            },
            request_kmem: params.request_kmem,
            ..ServerConfig::default()
        };
        if g == 0 {
            if let Some(cost) = params.paid_parse_cost {
                cfg.parse_cost = cost;
            }
        }
        k.spawn_process(
            Box::new(EventDrivenServer::new(cfg, shared_stats())),
            &format!("tenant-httpd-{g}"),
            Some(tenant),
            Attributes::time_shared(10),
            None,
        );
    }

    let mut world = TenantWorld {
        tenants: Vec::new(),
    };
    let n_clients = [params.clients.0, params.clients.1];
    let docs = [params.docs.0, params.docs.1];
    for g in 0..tenants.len() {
        let specs: Vec<ClientSpec> = (0..n_clients[g])
            .map(|i| {
                let mut s = ClientSpec::staticloop(tenant_addr(g, i), 0)
                    .cycling_docs(docs[g])
                    .starting_at(Nanos::from_micros(10 + 7 * i as u64));
                s.doc = i as u32 * docs[g];
                s.port = 8000 + g as u16;
                s
            })
            .collect();
        let clients = HttpClients::new(specs, warmup, end);
        for i in 0..clients.len() {
            k.arm_world_timer(
                ((g as u64) << TENANT_SHIFT) | (i as u64 * 4),
                Nanos::from_micros(10 + 7 * i as u64),
            );
        }
        world.tenants.push(clients);
    }

    // Let the servers boot (they create their class containers at first
    // schedule, before the first client timer at 10 us), then register
    // the declarative SLOs — resolved by class *name* against the live
    // hierarchy, exactly as an operator's config file would (the ids are
    // not knowable up front).
    k.run(&mut world, Nanos::from_micros(5));
    if rctrace::active() {
        let resolve = |k: &Kernel| {
            TENANT_NAMES
                .iter()
                .zip(slo_ms)
                .filter_map(|(&name, ms)| {
                    let id = k.containers.find_by_name(&format!("{name}-web"))?;
                    Some(SloSpec {
                        container: id.as_u64(),
                        label: name.to_string(),
                        quantile: 0.99,
                        threshold: Nanos::from_millis(ms),
                    })
                })
                .collect::<Vec<_>>()
        };
        let mut specs = resolve(&k);
        // Policies that strictly prioritize one tenant (EDF runs the
        // tighter-deadline server's boot to completion, and keeps
        // preempting the other whenever it wakes) create the second
        // class container well after 5 us; step forward until both
        // classes resolve. The default policy resolves both at 5 us, so
        // this loop never runs there and the default path is unchanged.
        let mut boot = 5u64;
        while specs.len() < TENANT_NAMES.len() && boot < 500 {
            boot += if boot < 10 { 1 } else { 10 };
            k.run(&mut world, Nanos::from_micros(boot));
            specs = resolve(&k);
        }
        assert_eq!(specs.len(), 2, "tenant web classes not found by name");
        rctrace::register_slos(specs);
    }
    // Segment the run at each requested swap point. With no swaps this
    // is the single `k.run(.., end)` the goldens were recorded against.
    for &(at, kind) in &params.cpu_swaps {
        let at = at.min(end);
        k.run(&mut world, at);
        k.set_cpu_policy(kind);
    }
    k.run(&mut world, end);

    let reclaims = k.mem_acct().map(|a| a.reclaims).unwrap_or(0);
    SpanTenantsResult {
        throughputs: (0..tenants.len())
            .map(|g| world.tenants[g].metrics.throughput(0))
            .collect(),
        latencies_ms: (0..tenants.len())
            .map(|g| world.tenants[g].metrics.mean_latency_ms(0))
            .collect(),
        p99_ms: (0..tenants.len())
            .map(|g| world.tenants[g].metrics.class(0).latency_ms.quantile(0.99))
            .collect(),
        reclaims,
        end_ns: end.as_nanos(),
        sim_events: k.stats().sim_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_tenants_make_progress_and_free_pays_reclaim() {
        let r = run_span_tenants(SpanTenantsParams {
            clients: (4, 8),
            secs: 4,
            ..SpanTenantsParams::default()
        });
        assert!(r.throughputs[0] > 0.0, "paid tenant starved: {r:?}");
        assert!(r.throughputs[1] > 0.0, "free tenant starved: {r:?}");
        assert!(r.reclaims > 0, "free tenant never hit reclaim: {r:?}");
        assert!(
            r.p99_ms[1] > r.p99_ms[0],
            "free tenant tail should dominate: {r:?}"
        );
    }

    #[test]
    fn mid_run_cpu_swap_keeps_both_tenants_running() {
        let r = run_span_tenants(SpanTenantsParams {
            clients: (4, 8),
            secs: 4,
            scheduler: Some(SchedPolicyKind::DecayUsage),
            cpu_swaps: vec![(Nanos::from_secs(2), SchedPolicyKind::Edf)],
            ..SpanTenantsParams::default()
        });
        assert!(r.throughputs[0] > 0.0, "paid tenant starved: {r:?}");
        assert!(r.throughputs[1] > 0.0, "free tenant starved: {r:?}");
    }
}
